#include "epvf/compose.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "crash/lookup_table.h"
#include "epvf/walks.h"
#include "ir/intrinsics.h"
#include "support/bits.h"
#include "support/hash.h"
#include "support/thread_pool.h"

namespace epvf::core {

namespace {

using ddg::kNoNode;
using ddg::NodeId;
using ir::Opcode;

/// Export-slot refs in the walk index carry this flag in the index field so
/// they are distinguishable from unit-local node refs (local ids never reach
/// bit 31). Slot refs survive the exporter's internal renumbering.
inline constexpr std::uint32_t kSlotFlag = 0x80000000u;

const ir::Instruction& InstrOf(const ir::Module& m, ir::StaticInstrId sid) {
  return m.functions[sid.function].blocks[sid.block].instructions[sid.instr];
}

std::uint32_t PackTypeKey(ir::Type t) {
  return (static_cast<std::uint32_t>(t.scalar) << 16) |
         (static_cast<std::uint32_t>(t.bits) << 8) | static_cast<std::uint32_t>(t.ptr_depth);
}

/// Mirror of report.cc's ClassifyNode for a unit-local register node (interns
/// never classify locally — they are constant/global nodes).
std::size_t ClassOfNode(const ir::Module& module, const UnitSlice& s, std::uint32_t local) {
  const ir::Instruction& inst = InstrOf(module, s.dyn[s.nodes[local].dyn].sid);
  if (inst.type.IsPointer()) return static_cast<std::size_t>(RegisterClass::kPointer);
  if (inst.type.IsFloat()) return static_cast<std::size_t>(RegisterClass::kFloat);
  if (inst.type == ir::Type::I1()) return static_cast<std::size_t>(RegisterClass::kPredicate);
  return static_cast<std::size_t>(RegisterClass::kInteger);
}

/// Rewrites a canonical (owner, local) ref into its walk-index key: exported
/// nodes are keyed by (owner, slot | kSlotFlag) so a dirty unit's replay never
/// invalidates the keys other units' uses live under; non-exported nodes keep
/// the local form (all their uses are intra-unit and rewritten wholesale when
/// the unit itself replays). Idempotent on already-flagged keys.
UnitRef WalkKey(const ProgramSlices& p, UnitRef ref) {
  if (ref == kNullRef) return ref;
  const std::uint32_t u = RefUnit(ref);
  if (u == kInternUnit) return ref;
  const std::uint32_t local = RefIndex(ref);
  if ((local & kSlotFlag) != 0) return ref;
  const auto& by_local = p.units[u].slice.export_by_local;
  const auto it = std::lower_bound(
      by_local.begin(), by_local.end(), local,
      [](const std::pair<std::uint32_t, std::uint32_t>& e, std::uint32_t l) {
        return e.first < l;
      });
  if (it != by_local.end() && it->first == local) {
    return MakeRef(u, it->second | kSlotFlag);
  }
  return ref;
}

/// Width/value of a (possibly external or intern) ref, resolving slot
/// indirection through the exporter's table.
std::pair<unsigned, std::uint64_t> WidthValueOf(const ProgramSlices& p, std::uint32_t self,
                                                UnitRef ref) {
  const std::uint32_t u = RefUnit(ref);
  if (u == kInternUnit) {
    const InternEntry& e = p.interns[RefIndex(ref)];
    return {e.width, e.value};
  }
  if (u == self) {
    const SliceNode& n = p.units[u].slice.nodes[RefIndex(ref)];
    return {n.width, n.value};
  }
  const ExportEntry& e = p.units[u].slice.exports[RefIndex(ref)];
  const SliceNode& n = p.units[u].slice.nodes[e.local];
  return {n.width, n.value};
}

/// Shared tail of the cold projection and the per-unit resweep: rebuilds
/// `unit`'s crash masks and every UnitSums field from its marks and the final
/// allowed intervals. Mirrors propagation.cc's mask sweep, ace.cc's bit
/// accounting, report.cc's structure classification, ComputeMemoryBitsSums
/// and PerInstructionMetrics — all restricted to the unit's own nodes/dyns.
void FinishUnitBackward(ProgramSlices& p, std::uint32_t unit,
                        const std::vector<Interval>& allowed) {
  CompiledUnit& cu = p.units[unit];
  const UnitSlice& s = cu.slice;
  UnitBackward& back = cu.back;
  const ir::Module& module = *p.module;

  back.crash_masks.clear();
  UnitSums sums;
  sums.dyn_count = s.dyn.size();
  sums.node_count = s.nodes.size();

  std::vector<std::uint64_t> masks(s.nodes.size(), 0);
  for (std::uint32_t local = 0; local < s.nodes.size(); ++local) {
    const SliceNode& node = s.nodes[local];
    const bool marked = back.Marked(local);
    if (marked) ++sums.ace_nodes;
    if (node.kind == ddg::NodeKind::kRegister) {
      sums.total_bits += node.width;
      const std::size_t cls = ClassOfNode(module, s, local);
      sums.cls_total[cls] += node.width;
      std::uint64_t mask = 0;
      if (!allowed[local].IsFull() && marked) {
        ++sums.constrained_nodes;
        for (unsigned bit = 0; bit < node.width; ++bit) {
          if (!allowed[local].Contains(FlipBit(node.value, bit))) mask |= std::uint64_t{1} << bit;
        }
      }
      if (marked) {
        sums.ace_bits += node.width;
        ++sums.ace_register_nodes;
        sums.cls_ace[cls] += node.width;
        sums.crash_bits += PopCount(mask);
        sums.cls_crash[cls] += PopCount(mask & LowMask(node.width));
      }
      if (mask != 0) {
        masks[local] = mask;
        back.crash_masks.emplace_back(local, mask);
      }
    } else if (node.kind == ddg::NodeKind::kMemory) {
      sums.mem_total += node.width;
      if (marked) {
        sums.mem_ace += node.width;
        if (!allowed[local].IsFull()) {
          for (unsigned bit = 0; bit < node.width; ++bit) {
            sums.mem_crash += !allowed[local].Contains(FlipBit(node.value, bit)) ? 1u : 0u;
          }
        }
      }
    }
  }

  std::map<ir::StaticInstrId, InstrMetrics> by_sid;
  for (std::uint32_t ld = 0; ld < s.dyn.size(); ++ld) {
    const SliceDyn& d = s.dyn[ld];
    InstrMetrics& m = by_sid[d.sid];
    m.sid = d.sid;
    m.exec_count += 1;
    if (d.result_node == kNoLocalNode ||
        s.nodes[d.result_node].kind != ddg::NodeKind::kRegister) {
      continue;
    }
    const unsigned width = s.nodes[d.result_node].width;
    m.total_bits += width;
    if (back.Marked(d.result_node)) {
      m.ace_bits += width;
      m.crash_bits += PopCount(masks[d.result_node] & LowMask(width));
    }
  }
  sums.per_instruction.reserve(by_sid.size());
  for (auto& [sid, metrics] : by_sid) sums.per_instruction.push_back(metrics);

  cu.sums = std::move(sums);
}

}  // namespace

std::uint64_t UnitBackward::MaskOf(std::uint32_t local) const {
  const auto it = std::lower_bound(
      crash_masks.begin(), crash_masks.end(), local,
      [](const std::pair<std::uint32_t, std::uint64_t>& e, std::uint32_t l) {
        return e.first < l;
      });
  return it != crash_masks.end() && it->first == local ? it->second : 0;
}

UnitRef Canon(const ProgramSlices& p, std::uint32_t self, UnitRef ref) {
  if (ref == kNullRef) return ref;
  const std::uint32_t u = RefUnit(ref);
  if (u == kInternUnit || u == self) return ref;
  return MakeRef(u, p.units[u].slice.exports[RefIndex(ref)].local);
}

std::uint64_t FunctionShapeDigest(const ir::Function& fn) {
  support::Hasher h;
  h.Mix(fn.name);
  h.Mix(fn.num_params);
  h.Mix(fn.registers.size());
  for (const ir::RegisterInfo& r : fn.registers) h.Mix(PackTypeKey(r.type));
  h.Mix(fn.blocks.size());
  for (const ir::BasicBlock& block : fn.blocks) {
    h.Mix(block.name);
    std::uint32_t bb_true = ir::kInvalidIndex;
    std::uint32_t bb_false = ir::kInvalidIndex;
    if (!block.instructions.empty()) {
      const ir::Instruction& term = block.instructions.back();
      if (term.op == Opcode::kBr || term.op == Opcode::kCondBr) bb_true = term.bb_true;
      if (term.op == Opcode::kCondBr) bb_false = term.bb_false;
    }
    h.Mix(bb_true);
    h.Mix(bb_false);
  }
  return h.Digest();
}

std::uint64_t GlobalsDigest(const ir::Module& module) {
  support::Hasher h;
  h.Mix(module.globals.size());
  for (const ir::GlobalVar& g : module.globals) {
    h.Mix(g.name);
    h.Mix(PackTypeKey(g.element_type));
    h.Mix(g.count);
    h.Mix(g.init.size());
    for (const std::uint8_t b : g.init) h.Mix(b);
  }
  return h.Digest();
}

std::uint64_t UnitStaticDigest(const ir::Module& module, const UnitInfo& unit) {
  support::Hasher h;
  const ir::Function& fn = module.functions[unit.function];
  for (const std::uint32_t b : unit.blocks) {
    h.Mix(b);
    const auto& insts = fn.blocks[b].instructions;
    h.Mix(insts.size());
    for (const ir::Instruction& inst : insts) {
      h.Mix(static_cast<std::uint64_t>(inst.op));
      h.Mix(inst.DefinesValue() ? inst.result : ir::kInvalidIndex);
      h.Mix(inst.operands.size());
      for (const ir::ValueRef& op : inst.operands) {
        h.Mix(static_cast<std::uint64_t>(op.kind));
        // Constant identity is deliberately excluded: a constant tweak keeps
        // the digest (the walk oracle never reads constant values).
        h.Mix(op.kind == ir::ValueKind::kRegister ? op.index : 0u);
      }
    }
  }
  return h.Digest();
}

std::vector<std::uint32_t> UnitRegisterSet(const ir::Module& module, const UnitInfo& unit) {
  std::set<std::uint32_t> regs;
  const ir::Function& fn = module.functions[unit.function];
  for (const std::uint32_t b : unit.blocks) {
    for (const ir::Instruction& inst : fn.blocks[b].instructions) {
      if (inst.DefinesValue()) regs.insert(inst.result);
      for (const ir::ValueRef& op : inst.operands) {
        if (op.IsRegister()) regs.insert(op.index);
      }
    }
  }
  return {regs.begin(), regs.end()};
}

ProgramSlices BuildProgramSlices(const Analysis& analysis, UnitPartition partition) {
  ProgramSlices p;
  p.module = &analysis.module();
  p.partition = std::move(partition);
  const ir::Module& module = *p.module;
  const ddg::Graph& g = analysis.graph();
  const ddg::AceResult& ace = analysis.ace();
  const crash::CrashBits& cb = analysis.crash_bits();
  const auto num_units = static_cast<std::uint32_t>(p.partition.NumUnits());
  p.units.clear();
  p.units.resize(num_units);
  p.instructions_executed = analysis.golden().instructions_executed;
  p.globals_digest = GlobalsDigest(module);

  p.function_shape.reserve(module.functions.size());
  for (const ir::Function& fn : module.functions) {
    p.function_shape.push_back(FunctionShapeDigest(fn));
  }
  p.unit_static_digest.reserve(num_units);
  p.unit_reg_set.reserve(num_units);
  for (const UnitInfo& info : p.partition.units) {
    p.unit_static_digest.push_back(UnitStaticDigest(module, info));
    p.unit_reg_set.push_back(UnitRegisterSet(module, info));
  }

  const auto n_dyn = static_cast<std::uint32_t>(g.NumDynInstrs());
  const auto n_nodes = static_cast<std::uint32_t>(g.NumNodes());

  // --- pass 1: trace scan — segmentation + boundary summaries ---------------
  // One walk over the global dyn sequence, doing three things at once:
  // assigning every dyn its (unit, local dyn, segment), opening/closing
  // segments as control crosses unit boundaries, and recording the
  // replay-validation data (live-in value sets, final values, write images,
  // output/return events, dropped-pred counts).
  std::vector<std::uint32_t> dyn_unit(n_dyn, 0);
  std::vector<std::uint32_t> dyn_local(n_dyn, 0);
  std::vector<std::uint32_t> dyn_seg(n_dyn, 0);
  std::vector<std::uint32_t> unit_dyn_count(num_units, 0);

  struct RawRegLiveIn {
    std::uint32_t segment, reg;
    std::uint64_t value;
    NodeId node;
  };
  struct RawByteLiveIn {
    std::uint32_t segment;
    std::uint64_t addr;
    std::uint8_t byte;
    NodeId writer;
  };
  std::vector<std::vector<RawRegLiveIn>> raw_reg_li(num_units);
  std::vector<std::vector<RawByteLiveIn>> raw_byte_li(num_units);

  {
    // Global byte shadow: addr -> (current writer memory node, byte value).
    // Maintained exactly like the builder's WriterShadow so the dropped-pred
    // replication below counts the same events.
    std::unordered_map<std::uint64_t, std::pair<NodeId, std::uint8_t>> mem_bytes;
    // Per-open-segment state (only one segment is open at a time).
    std::unordered_map<std::uint32_t, std::uint32_t> first_def;  // reg -> defining gd
    std::unordered_map<std::uint32_t, std::uint64_t> seg_reg_vals;
    std::map<std::uint64_t, std::uint8_t> seg_written;
    std::unordered_set<std::uint32_t> li_reg_seen;
    std::unordered_set<std::uint64_t> li_byte_seen;
    std::uint32_t cur_unit = ir::kInvalidIndex;
    std::uint32_t group_start = 0;
    bool prev_was_phi = false;
    ir::StaticInstrId prev_sid;
    std::size_t acc_cursor = 0;
    std::size_t out_cursor = 0;
    const auto& golden_output = analysis.golden().output;

    const auto close_segment = [&](std::uint32_t next_gd) {
      UnitSlice& s = p.units[cur_unit].slice;
      SegmentInfo& seg = s.segments.back();
      const std::uint32_t seg_index = static_cast<std::uint32_t>(s.segments.size()) - 1;
      const ddg::DynInstr& last = g.GetDyn(next_gd - 1);
      seg.exit_prev_block = last.sid.block;
      seg.exits_via_ret = g.InstructionOf(last).op == Opcode::kRet ? 1 : 0;
      if (next_gd < n_dyn) {
        const ddg::DynInstr& next = g.GetDyn(next_gd);
        seg.exit_function = next.sid.function;
        seg.exit_block = next.sid.block;
      }
      seg.num_dyn = unit_dyn_count[cur_unit] - seg.first_dyn;
      std::vector<std::pair<std::uint32_t, std::uint64_t>> finals(seg_reg_vals.begin(),
                                                                  seg_reg_vals.end());
      std::sort(finals.begin(), finals.end());
      for (const auto& [reg, value] : finals) {
        s.reg_finals.push_back(RegFinal{seg_index, reg, value});
      }
      for (const auto& [addr, byte] : seg_written) {
        s.mem_finals.push_back(ByteFinal{seg_index, addr, byte});
      }
      first_def.clear();
      seg_reg_vals.clear();
      seg_written.clear();
      li_reg_seen.clear();
      li_byte_seen.clear();
    };

    const auto open_segment = [&](std::uint32_t gd, std::uint32_t unit) {
      UnitSlice& s = p.units[unit].slice;
      SegmentInfo seg;
      seg.first_dyn = unit_dyn_count[unit];
      const ir::StaticInstrId sid = g.GetDyn(gd).sid;
      seg.entry_block = sid.block;
      if (gd > 0) {
        const ddg::DynInstr& prev = g.GetDyn(gd - 1);
        const Opcode prev_op = g.InstructionOf(prev).op;
        if (prev.sid.function == sid.function &&
            (prev_op == Opcode::kBr || prev_op == Opcode::kCondBr)) {
          seg.prev_block = prev.sid.block;
        }
      }
      p.segment_order.push_back(
          SegmentRef{unit, static_cast<std::uint32_t>(s.segments.size())});
      s.segments.push_back(seg);
    };

    for (std::uint32_t gd = 0; gd < n_dyn; ++gd) {
      const ddg::DynInstr& d = g.GetDyn(gd);
      const ir::Instruction& inst = g.InstructionOf(d);
      const std::uint32_t unit = p.partition.UnitOf(d.sid.function, d.sid.block);
      if (unit != cur_unit) {
        if (cur_unit != ir::kInvalidIndex) close_segment(gd);
        open_segment(gd, unit);
        cur_unit = unit;
      }
      dyn_unit[gd] = unit;
      dyn_local[gd] = unit_dyn_count[unit]++;
      dyn_seg[gd] = static_cast<std::uint32_t>(p.units[unit].slice.segments.size()) - 1;
      const std::uint32_t seg = dyn_seg[gd];
      UnitSlice& s = p.units[unit].slice;

      const auto op_nodes = g.OperandNodes(gd);
      const auto op_values = g.OperandValues(gd);
      const bool is_phi = inst.op == Opcode::kPhi;
      if (is_phi) {
        const bool continues = prev_was_phi && prev_sid.function == d.sid.function &&
                               prev_sid.block == d.sid.block &&
                               prev_sid.instr + 1 == d.sid.instr;
        if (!continues) group_start = gd;
      }

      // Register live-ins: the first read of a register not yet defined in
      // this segment (phi reads see pre-group values, so in-group defs do not
      // count as definitions for them).
      for (std::size_t slot = 0; slot < op_nodes.size(); ++slot) {
        if (!inst.operands[slot].IsRegister()) continue;
        if (is_phi && slot != d.selected_operand) continue;
        const std::uint32_t reg = inst.operands[slot].index;
        const auto it = first_def.find(reg);
        const bool defined = it != first_def.end() && (!is_phi || it->second < group_start);
        if (!defined && li_reg_seen.insert(reg).second) {
          raw_reg_li[unit].push_back(RawRegLiveIn{seg, reg, op_values[slot], op_nodes[slot]});
        }
      }

      if (inst.op == Opcode::kLoad) {
        const ddg::AccessRecord& a = g.accesses()[acc_cursor++];
        if (a.dyn_index != gd) throw std::logic_error("BuildProgramSlices: access desync");
        const std::uint64_t result_val =
            d.result_node != kNoNode ? g.GetNode(d.result_node).value : 0;
        std::array<NodeId, 8> kept{};
        std::uint8_t kept_count = 0;
        for (std::uint64_t b = 0; b < a.size; ++b) {
          const std::uint64_t ba = a.addr + b;
          const auto mit = mem_bytes.find(ba);
          if (seg_written.find(ba) == seg_written.end() && li_byte_seen.insert(ba).second) {
            raw_byte_li[unit].push_back(RawByteLiveIn{
                seg, ba, static_cast<std::uint8_t>((result_val >> (8 * b)) & 0xFF),
                mit == mem_bytes.end() ? kNoNode : mit->second.first});
          }
          // Replicate the builder's 7-slot pred cap so the per-unit dropped
          // counts sum to the graph's total.
          if (mit == mem_bytes.end()) continue;
          const NodeId writer = mit->second.first;
          bool seen = false;
          for (std::uint8_t k = 0; k < kept_count; ++k) seen = seen || kept[k] == writer;
          if (seen) continue;
          if (kept_count < 7) {
            kept[kept_count++] = writer;
          } else {
            ++s.dropped_load_preds;
          }
        }
      } else if (inst.op == Opcode::kStore) {
        const ddg::AccessRecord& a = g.accesses()[acc_cursor++];
        if (a.dyn_index != gd) throw std::logic_error("BuildProgramSlices: access desync");
        const std::uint64_t value = op_values[0];
        for (std::uint64_t b = 0; b < a.size; ++b) {
          const auto byte = static_cast<std::uint8_t>((value >> (8 * b)) & 0xFF);
          seg_written[a.addr + b] = byte;
          mem_bytes[a.addr + b] = {d.result_node, byte};
        }
      } else if (inst.op == Opcode::kCall && inst.is_intrinsic &&
                 ir::IsOutputIntrinsic(inst.intrinsic)) {
        // The recorded payload is the post-rounding value the interpreter
        // pushed — exactly what replay must reproduce.
        s.outputs.push_back(OutputEvent{seg, golden_output[out_cursor++]});
      } else if (inst.op == Opcode::kRet && !inst.operands.empty()) {
        // Return values escape to the caller's register without a caller-side
        // dyn, so they are validated through the output-event channel.
        s.outputs.push_back(OutputEvent{seg, op_values[0]});
      }

      // Mirror the builder's shadow-update condition for register defs.
      const bool defines =
          (inst.DefinesValue() && inst.op != Opcode::kCall) ||
          (inst.op == Opcode::kCall && inst.is_intrinsic && inst.DefinesValue());
      if (defines && d.result_node != kNoNode) {
        first_def.try_emplace(inst.result, gd);
        seg_reg_vals[inst.result] = g.GetNode(d.result_node).value;
      }

      prev_was_phi = is_phi;
      prev_sid = d.sid;
    }
    if (cur_unit != ir::kInvalidIndex) close_segment(n_dyn);
  }

  // --- pass 2: node ownership ------------------------------------------------
  std::vector<std::uint32_t> node_unit(n_nodes, kInternUnit);
  std::vector<std::uint32_t> node_local(n_nodes, 0);
  std::vector<std::uint32_t> unit_node_count(num_units, 0);
  for (NodeId id = 0; id < n_nodes; ++id) {
    const ddg::Node& node = g.GetNode(id);
    if (node.dyn_index == ddg::kNoDyn) {
      node_local[id] = static_cast<std::uint32_t>(p.interns.size());
      InternEntry e;
      e.is_global = node.kind == ddg::NodeKind::kGlobal ? 1 : 0;
      e.width = node.width;
      e.value = node.value;
      p.interns.push_back(e);
    } else {
      const std::uint32_t u = dyn_unit[node.dyn_index];
      node_unit[id] = u;
      node_local[id] = unit_node_count[u]++;
    }
  }

  // --- pass 3: export detection ----------------------------------------------
  // A node is exported when any cross-unit edge targets it: pred edges,
  // operand references, or byte-live-in writer references (the latter cover
  // writers a load's capped pred list dropped).
  std::vector<std::vector<std::uint8_t>> exported(num_units);
  for (std::uint32_t u = 0; u < num_units; ++u) exported[u].assign(unit_node_count[u], 0);
  const auto note_edge = [&](std::uint32_t consumer, NodeId target) {
    if (target == kNoNode) return;
    const std::uint32_t o = node_unit[target];
    if (o == kInternUnit || o == consumer) return;
    exported[o][node_local[target]] = 1;
  };
  for (NodeId id = 0; id < n_nodes; ++id) {
    if (node_unit[id] == kInternUnit) continue;
    for (const NodeId pred : g.Preds(id)) note_edge(node_unit[id], pred);
  }
  for (std::uint32_t gd = 0; gd < n_dyn; ++gd) {
    for (const NodeId t : g.OperandNodes(gd)) note_edge(dyn_unit[gd], t);
  }
  for (std::uint32_t u = 0; u < num_units; ++u) {
    for (const RawByteLiveIn& li : raw_byte_li[u]) note_edge(u, li.writer);
  }

  // Memory export keys need the ordinal of each store among same-(addr, size)
  // stores of its segment.
  std::vector<std::uint32_t> dyn_access(n_dyn, ir::kInvalidIndex);
  std::unordered_map<std::uint32_t, std::uint32_t> store_ordinal;
  {
    std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t, std::uint32_t>,
             std::uint32_t>
        counters;
    for (std::size_t i = 0; i < g.accesses().size(); ++i) {
      const ddg::AccessRecord& a = g.accesses()[i];
      dyn_access[a.dyn_index] = static_cast<std::uint32_t>(i);
      if (!a.is_store) continue;
      store_ordinal[a.dyn_index] = counters[{dyn_unit[a.dyn_index], dyn_seg[a.dyn_index],
                                             a.addr, a.size}]++;
    }
  }

  std::vector<std::vector<std::uint32_t>> slot_of(num_units);
  for (std::uint32_t u = 0; u < num_units; ++u) {
    slot_of[u].assign(unit_node_count[u], ir::kInvalidIndex);
  }
  for (NodeId id = 0; id < n_nodes; ++id) {
    const std::uint32_t u = node_unit[id];
    if (u == kInternUnit || exported[u][node_local[id]] == 0) continue;
    const ddg::Node& node = g.GetNode(id);
    ExportEntry e;
    e.local = node_local[id];
    e.segment = dyn_seg[node.dyn_index];
    if (node.kind == ddg::NodeKind::kMemory) {
      const ddg::AccessRecord& a = g.accesses()[dyn_access[node.dyn_index]];
      e.kind = 1;
      e.key_a = a.addr;
      e.key_b = a.size;
      e.ordinal = store_ordinal[node.dyn_index];
    } else {
      e.kind = 0;
      e.key_a = g.InstructionAt(node.dyn_index).result;
    }
    UnitSlice& s = p.units[u].slice;
    const auto slot = static_cast<std::uint32_t>(s.exports.size());
    slot_of[u][e.local] = slot;
    s.export_by_local.emplace_back(e.local, slot);  // ascending: ids iterate up
    s.exports.push_back(e);
  }

  // --- pass 4: translation ---------------------------------------------------
  std::vector<std::set<std::uint32_t>> intern_sets(num_units);
  const auto translate = [&](NodeId id, std::uint32_t consumer) -> UnitRef {
    if (id == kNoNode) return kNullRef;
    const std::uint32_t o = node_unit[id];
    if (o == kInternUnit) {
      intern_sets[consumer].insert(node_local[id]);
      return MakeRef(kInternUnit, node_local[id]);
    }
    if (o == consumer) return MakeRef(o, node_local[id]);
    return MakeRef(o, slot_of[o][node_local[id]]);
  };

  for (NodeId id = 0; id < n_nodes; ++id) {
    const std::uint32_t u = node_unit[id];
    if (u == kInternUnit) continue;
    const ddg::Node& node = g.GetNode(id);
    UnitSlice& s = p.units[u].slice;
    SliceNode sn;
    sn.kind = node.kind;
    sn.width = node.width;
    sn.dyn = dyn_local[node.dyn_index];
    sn.value = node.value;
    s.nodes.push_back(sn);
    SlicePredRange pr;
    pr.offset = static_cast<std::uint32_t>(s.preds.size());
    const auto preds = g.Preds(id);
    pr.count = static_cast<std::uint32_t>(preds.size());
    for (unsigned i = 0; i < preds.size(); ++i) {
      s.preds.push_back(translate(preds[i], u));
      if (g.PredIsVirtual(id, i)) pr.virtual_mask |= 1u << i;
    }
    s.pred_ranges.push_back(pr);
  }

  std::vector<std::uint8_t> intern_meta_filled(p.interns.size(), 0);
  for (std::uint32_t gd = 0; gd < n_dyn; ++gd) {
    const ddg::DynInstr& d = g.GetDyn(gd);
    const ir::Instruction& inst = g.InstructionOf(d);
    const std::uint32_t u = dyn_unit[gd];
    UnitSlice& s = p.units[u].slice;
    const auto op_nodes = g.OperandNodes(gd);
    const auto op_values = g.OperandValues(gd);
    SliceDyn sd;
    sd.sid = d.sid;
    sd.result_node = d.result_node == kNoNode ? kNoLocalNode : node_local[d.result_node];
    sd.operands_offset = static_cast<std::uint32_t>(s.operand_nodes.size());
    sd.num_operands = d.num_operands;
    sd.selected_operand = d.selected_operand;
    for (std::size_t slot = 0; slot < op_nodes.size(); ++slot) {
      s.operand_nodes.push_back(translate(op_nodes[slot], u));
      s.operand_values.push_back(op_values[slot]);
      // Fill the intern identity metadata from the first referencing operand:
      // the constant pool is deduplicated by (type, bits), so (type_key,
      // value) identifies the entry across re-parses; globals go by index.
      if (op_nodes[slot] != kNoNode && node_unit[op_nodes[slot]] == kInternUnit) {
        const std::uint32_t intern_id = node_local[op_nodes[slot]];
        if (!intern_meta_filled[intern_id]) {
          const ir::ValueRef ref = inst.operands[slot];
          if (ref.kind == ir::ValueKind::kConstant) {
            p.interns[intern_id].ir_index = ref.index;
            p.interns[intern_id].type_key = PackTypeKey(module.GetConstant(ref.index).type);
            intern_meta_filled[intern_id] = 1;
          } else if (ref.kind == ir::ValueKind::kGlobal) {
            p.interns[intern_id].ir_index = ref.index;
            intern_meta_filled[intern_id] = 1;
          }
        }
      }
    }
    s.dyn.push_back(sd);
    if (inst.op == Opcode::kCall && inst.is_intrinsic &&
        ir::IsOutputIntrinsic(inst.intrinsic)) {
      // Mirrors AddOutputRoot's unconditional push (kNoNode roots included).
      s.output_roots.push_back(RootRef{dyn_seg[gd], translate(op_nodes[0], u)});
    }
    if (inst.op == Opcode::kCondBr && !inst.operands.empty() &&
        inst.operands[0].IsRegister() && op_nodes[0] != kNoNode) {
      s.control_roots.push_back(RootRef{dyn_seg[gd], translate(op_nodes[0], u)});
    }
  }

  for (const ddg::AccessRecord& a : g.accesses()) {
    const std::uint32_t u = dyn_unit[a.dyn_index];
    SliceAccess sa;
    sa.dyn = dyn_local[a.dyn_index];
    sa.addr_node = translate(a.addr_node, u);
    sa.addr = a.addr;
    sa.size = a.size;
    sa.is_store = a.is_store ? 1 : 0;
    sa.seed = analysis.crash_model().CheckBoundary(a);
    p.units[u].slice.accesses.push_back(sa);
  }

  for (std::uint32_t u = 0; u < num_units; ++u) {
    UnitSlice& s = p.units[u].slice;
    for (const RawRegLiveIn& li : raw_reg_li[u]) {
      s.reg_live_ins.push_back(RegLiveIn{li.segment, li.reg, li.value, translate(li.node, u)});
    }
    for (const RawByteLiveIn& li : raw_byte_li[u]) {
      s.mem_live_ins.push_back(ByteLiveIn{li.segment, li.addr, li.byte,
                                          li.writer == kNoNode ? kNullRef
                                                               : translate(li.writer, u)});
    }
    s.intern_refs.assign(intern_sets[u].begin(), intern_sets[u].end());
    // Per-segment node ranges (local node ids ascend with local dyn ids).
    std::size_t cursor = 0;
    for (SegmentInfo& seg : s.segments) {
      seg.first_node = static_cast<std::uint32_t>(cursor);
      const std::uint32_t end_dyn = seg.first_dyn + seg.num_dyn;
      while (cursor < s.nodes.size() && s.nodes[cursor].dyn < end_dyn) ++cursor;
      seg.num_nodes = static_cast<std::uint32_t>(cursor) - seg.first_node;
    }
    // Content digest over the boundary-summary inputs.
    support::Hasher h;
    for (const SegmentInfo& seg : s.segments) {
      h.Mix(seg.first_dyn).Mix(seg.num_dyn).Mix(seg.entry_block).Mix(seg.prev_block);
      h.Mix(seg.exit_function).Mix(seg.exit_block).Mix(seg.exit_prev_block);
      h.Mix(seg.exits_via_ret);
    }
    for (const RegLiveIn& li : s.reg_live_ins) {
      h.Mix(li.segment).Mix(li.reg).Mix(li.value).Mix(li.node);
    }
    for (const ByteLiveIn& li : s.mem_live_ins) {
      h.Mix(li.segment).Mix(li.addr).Mix(li.byte).Mix(li.writer);
    }
    for (const OutputEvent& out : s.outputs) h.Mix(out.segment).Mix(out.value);
    for (const SliceAccess& a : s.accesses) {
      h.Mix(a.dyn).Mix(a.addr).Mix(a.size).Mix(a.is_store).Mix(a.seed.lo).Mix(a.seed.hi);
    }
    s.input_digest = h.Digest();
  }

  // --- pass 5: backward projection -------------------------------------------
  // Project the monolithic ACE marks, crash intervals and spill sets onto the
  // units, then re-run every unit's own backward sweep against the projected
  // spills — the resweep must reproduce the projection exactly, and the diff
  // battery asserts it does (composed == monolithic, bit for bit).
  for (std::uint32_t u = 0; u < num_units; ++u) {
    p.units[u].back.ace_marks.assign((unit_node_count[u] + 63) / 64, 0);
  }
  for (NodeId id = 0; id < n_nodes; ++id) {
    if (node_unit[id] == kInternUnit || !ace.Contains(id)) continue;
    p.units[node_unit[id]].back.Mark(node_local[id]);
  }

  std::vector<std::set<std::uint32_t>> intern_mark_sets(num_units);
  std::vector<std::set<UnitRef>> ace_spill_sets(num_units);
  for (NodeId id = 0; id < n_nodes; ++id) {
    const std::uint32_t u = node_unit[id];
    if (u == kInternUnit || !p.units[u].back.Marked(node_local[id])) continue;
    for (const NodeId pred : g.Preds(id)) {
      if (pred == kNoNode) continue;
      if (node_unit[pred] == kInternUnit) {
        intern_mark_sets[u].insert(node_local[pred]);
      } else if (node_unit[pred] != u) {
        ace_spill_sets[u].insert(translate(pred, u));
      }
    }
  }
  for (std::uint32_t u = 0; u < num_units; ++u) {
    const UnitSlice& s = p.units[u].slice;
    const auto note_root = [&](const RootRef& r) {
      if (r.node == kNullRef) return;
      if (RefUnit(r.node) == kInternUnit) {
        intern_mark_sets[u].insert(RefIndex(r.node));
      } else if (RefUnit(r.node) != u) {
        ace_spill_sets[u].insert(r.node);
      }
    };
    for (const RootRef& r : s.output_roots) note_root(r);
    for (const RootRef& r : s.control_roots) note_root(r);
  }

  std::vector<std::map<UnitRef, Interval>> spill_maps(num_units);
  const auto spill = [&](std::uint32_t u, NodeId target, Interval iv) {
    // Mirrors propagation.cc's Narrow for the cross-unit case only.
    if (target == kNoNode || iv.IsFull()) return;
    const ddg::Node& tn = g.GetNode(target);
    if (tn.kind == ddg::NodeKind::kConstant || tn.kind == ddg::NodeKind::kGlobal) return;
    if (node_unit[target] == u) return;
    auto [it, inserted] = spill_maps[u].try_emplace(translate(target, u), Interval::Full());
    it->second = it->second.Intersect(iv);
  };
  for (const ddg::AccessRecord& a : g.accesses()) {
    const ddg::DynInstr& d = g.GetDyn(a.dyn_index);
    if (d.result_node == kNoNode || !ace.Contains(d.result_node)) continue;
    const std::uint32_t u = dyn_unit[a.dyn_index];
    ++p.units[u].back.seeded_accesses;
    if (a.addr_node != kNoNode && node_unit[a.addr_node] != kInternUnit &&
        node_unit[a.addr_node] != u) {
      spill(u, a.addr_node, analysis.crash_model().CheckBoundary(a));
    }
  }
  for (NodeId id = 0; id < n_nodes; ++id) {
    const Interval dest_allowed = cb.allowed[id];
    if (dest_allowed.IsFull()) continue;
    const ddg::Node& node = g.GetNode(id);
    if (node.dyn_index == ddg::kNoDyn) continue;
    const std::uint32_t u = node_unit[id];
    const ddg::DynInstr& d = g.GetDyn(node.dyn_index);
    const ir::Instruction& inst = g.InstructionOf(d);
    const auto op_nodes = g.OperandNodes(node.dyn_index);
    const auto op_values = g.OperandValues(node.dyn_index);
    switch (inst.op) {
      case Opcode::kStore:
        spill(u, op_nodes[0], dest_allowed);
        continue;
      case Opcode::kLoad: {
        const auto preds = g.Preds(id);
        NodeId data_pred = kNoNode;
        unsigned data_count = 0;
        for (unsigned i = 0; i < preds.size(); ++i) {
          if (!g.PredIsVirtual(id, i)) {
            data_pred = preds[i];
            ++data_count;
          }
        }
        if (data_count == 1 && g.GetNode(data_pred).width == node.width &&
            g.GetNode(data_pred).value == node.value) {
          spill(u, data_pred, dest_allowed);
        }
        continue;
      }
      case Opcode::kPhi:
        if (d.selected_operand != 0xFF) spill(u, op_nodes[d.selected_operand], dest_allowed);
        continue;
      case Opcode::kSelect: {
        const unsigned chosen = (op_values[0] & 1) != 0 ? 1 : 2;
        spill(u, op_nodes[chosen], dest_allowed);
        continue;
      }
      default:
        break;
    }
    std::array<unsigned, 8> widths{};
    for (std::size_t i = 0; i < op_nodes.size() && i < widths.size(); ++i) {
      widths[i] = op_nodes[i] == kNoNode ? 64u : g.GetNode(op_nodes[i]).width;
    }
    for (unsigned slot = 0; slot < op_nodes.size(); ++slot) {
      if (op_nodes[slot] == kNoNode) continue;
      const auto interval = crash::OperandAllowedInterval(
          inst, op_values, std::span<const unsigned>(widths.data(), op_nodes.size()), slot,
          dest_allowed);
      if (interval.has_value()) spill(u, op_nodes[slot], *interval);
    }
  }

  std::vector<std::vector<Interval>> allowed_local(num_units);
  for (std::uint32_t u = 0; u < num_units; ++u) {
    allowed_local[u].assign(unit_node_count[u], Interval::Full());
  }
  for (NodeId id = 0; id < n_nodes; ++id) {
    if (node_unit[id] == kInternUnit) continue;
    allowed_local[node_unit[id]][node_local[id]] = cb.allowed[id];
  }

  for (std::uint32_t u = 0; u < num_units; ++u) {
    UnitBackward& back = p.units[u].back;
    back.ace_spills.assign(ace_spill_sets[u].begin(), ace_spill_sets[u].end());
    back.interval_spills.assign(spill_maps[u].begin(), spill_maps[u].end());
    back.intern_marks.assign(intern_mark_sets[u].begin(), intern_mark_sets[u].end());
    FinishUnitBackward(p, u, allowed_local[u]);
  }

  // Verification by construction: re-derive every unit's backward results
  // from its slice + the projected spill sets. Any divergence from the
  // projection surfaces as composed != monolithic in the diff battery.
  for (std::uint32_t u = 0; u < num_units; ++u) RunUnitBackward(p, u);

  return p;
}

void RunUnitBackward(ProgramSlices& p, std::uint32_t unit) {
  CompiledUnit& cu = p.units[unit];
  const UnitSlice& s = cu.slice;
  const ir::Module& module = *p.module;
  const auto num_nodes = static_cast<std::uint32_t>(s.nodes.size());

  UnitBackward nb;
  nb.ace_marks.assign((num_nodes + 63) / 64, 0);
  std::set<std::uint32_t> intern_set;
  std::set<UnitRef> ace_spill_set;
  std::vector<std::uint32_t> stack;

  // ACE closure, unit-restricted: cross-unit pred edges become spill-set
  // entries instead of BFS steps; the exporter's own resweep consumes them.
  const auto mark_ref = [&](UnitRef ref) {
    if (ref == kNullRef) return;
    const std::uint32_t u = RefUnit(ref);
    if (u == kInternUnit) {
      intern_set.insert(RefIndex(ref));
    } else if (u != unit) {
      ace_spill_set.insert(ref);
    } else if (!nb.Marked(RefIndex(ref))) {
      nb.Mark(RefIndex(ref));
      stack.push_back(RefIndex(ref));
    }
  };
  for (const RootRef& r : s.output_roots) mark_ref(r.node);
  for (const RootRef& r : s.control_roots) mark_ref(r.node);
  for (std::uint32_t v = 0; v < p.units.size(); ++v) {
    if (v == unit) continue;
    for (const UnitRef ref : p.units[v].back.ace_spills) {
      if (RefUnit(ref) != unit) continue;
      mark_ref(MakeRef(unit, s.exports[RefIndex(ref)].local));
    }
  }
  while (!stack.empty()) {
    const std::uint32_t local = stack.back();
    stack.pop_back();
    const SlicePredRange& pr = s.pred_ranges[local];
    for (std::uint32_t i = 0; i < pr.count; ++i) mark_ref(s.preds[pr.offset + i]);
  }

  // Crash-interval resweep: apply the incoming cross-unit narrowings and the
  // unit's own (ACE-gated) boundary seeds upfront, then run propagation.cc's
  // descending sweep over the local nodes. Local node ids ascend with global
  // ids, and every narrowing targets a lower id than its source flows from,
  // so the single local pass reproduces the global pass exactly.
  std::vector<Interval> allowed(num_nodes, Interval::Full());
  std::map<UnitRef, Interval> spill_map;
  const auto narrow = [&](UnitRef ref, Interval iv) {
    if (ref == kNullRef || iv.IsFull()) return;
    const std::uint32_t u = RefUnit(ref);
    if (u == kInternUnit) return;  // constants/globals never narrow
    if (u != unit) {
      auto [it, inserted] = spill_map.try_emplace(ref, Interval::Full());
      it->second = it->second.Intersect(iv);
      return;
    }
    allowed[RefIndex(ref)] = allowed[RefIndex(ref)].Intersect(iv);
  };
  for (std::uint32_t v = 0; v < p.units.size(); ++v) {
    if (v == unit) continue;
    for (const auto& [ref, iv] : p.units[v].back.interval_spills) {
      if (RefUnit(ref) != unit) continue;
      const std::uint32_t local = s.exports[RefIndex(ref)].local;
      allowed[local] = allowed[local].Intersect(iv);
    }
  }
  for (const SliceAccess& a : s.accesses) {
    const SliceDyn& d = s.dyn[a.dyn];
    if (d.result_node == kNoLocalNode || !nb.Marked(d.result_node)) continue;
    ++nb.seeded_accesses;
    narrow(a.addr_node, a.seed);
  }

  for (std::uint32_t local = num_nodes; local-- > 0;) {
    const Interval dest_allowed = allowed[local];
    if (dest_allowed.IsFull()) continue;
    const SliceNode& node = s.nodes[local];
    const SliceDyn& d = s.dyn[node.dyn];
    const ir::Instruction& inst = InstrOf(module, d.sid);
    const UnitRef* op_refs = s.operand_nodes.data() + d.operands_offset;
    const std::uint64_t* op_values = s.operand_values.data() + d.operands_offset;
    switch (inst.op) {
      case Opcode::kStore:
        narrow(op_refs[0], dest_allowed);
        continue;
      case Opcode::kLoad: {
        const SlicePredRange& pr = s.pred_ranges[local];
        UnitRef data_pred = kNullRef;
        unsigned data_count = 0;
        for (std::uint32_t i = 0; i < pr.count; ++i) {
          if ((pr.virtual_mask & (1u << i)) == 0) {
            data_pred = s.preds[pr.offset + i];
            ++data_count;
          }
        }
        if (data_count == 1 && data_pred != kNullRef) {
          const auto [width, value] = WidthValueOf(p, unit, data_pred);
          if (width == node.width && value == node.value) narrow(data_pred, dest_allowed);
        }
        continue;
      }
      case Opcode::kPhi:
        if (d.selected_operand != 0xFF) narrow(op_refs[d.selected_operand], dest_allowed);
        continue;
      case Opcode::kSelect: {
        const unsigned chosen = (op_values[0] & 1) != 0 ? 1 : 2;
        narrow(op_refs[chosen], dest_allowed);
        continue;
      }
      default:
        break;
    }
    std::array<unsigned, 8> widths{};
    for (unsigned i = 0; i < d.num_operands && i < widths.size(); ++i) {
      widths[i] = op_refs[i] == kNullRef ? 64u : WidthValueOf(p, unit, op_refs[i]).first;
    }
    for (unsigned slot = 0; slot < d.num_operands; ++slot) {
      if (op_refs[slot] == kNullRef) continue;
      const auto interval = crash::OperandAllowedInterval(
          inst, std::span<const std::uint64_t>(op_values, d.num_operands),
          std::span<const unsigned>(widths.data(), d.num_operands), slot, dest_allowed);
      if (interval.has_value()) narrow(op_refs[slot], *interval);
    }
  }

  nb.ace_spills.assign(ace_spill_set.begin(), ace_spill_set.end());
  nb.interval_spills.assign(spill_map.begin(), spill_map.end());
  nb.intern_marks.assign(intern_set.begin(), intern_set.end());
  cu.back = std::move(nb);
  FinishUnitBackward(p, unit, allowed);
}

namespace {

/// Recomputes seg_base from the current slices (the only index state a dirty
/// unit's replay shifts for *other* units).
void RefreshSegBase(const ProgramSlices& p, WalkUseIndex& idx) {
  idx.seg_base.assign(p.units.size(), {});
  for (std::size_t u = 0; u < p.units.size(); ++u) {
    idx.seg_base[u].assign(p.units[u].slice.segments.size(), 0);
  }
  std::uint64_t cum = 0;
  for (const SegmentRef& sr : p.segment_order) {
    idx.seg_base[sr.unit][sr.seg] = cum;
    cum += p.units[sr.unit].slice.segments[sr.seg].num_dyn;
  }
}

/// Appends one segment's register-operand use sites to the index. Callers
/// iterate segments in global trace order, which keeps every key's use vector
/// sorted by global dyn without a sort pass.
void AppendSegmentUses(const ProgramSlices& p, WalkUseIndex& idx, SegmentRef sr,
                       std::set<UnitRef>& touched) {
  const UnitSlice& s = p.units[sr.unit].slice;
  const SegmentInfo& seg = s.segments[sr.seg];
  for (std::uint32_t ld = seg.first_dyn; ld < seg.first_dyn + seg.num_dyn; ++ld) {
    const SliceDyn& d = s.dyn[ld];
    const ir::Instruction& inst = InstrOf(*p.module, d.sid);
    const UnitRef result_key =
        d.result_node == kNoLocalNode ? kNullRef : WalkKey(p, MakeRef(sr.unit, d.result_node));
    const std::uint8_t has_register_result =
        d.result_node != kNoLocalNode &&
                s.nodes[d.result_node].kind == ddg::NodeKind::kRegister
            ? 1
            : 0;
    for (std::uint8_t slot = 0; slot < d.num_operands; ++slot) {
      if (!inst.operands[slot].IsRegister()) continue;
      if (inst.op == Opcode::kPhi && slot != d.selected_operand) continue;
      const UnitRef ref = s.operand_nodes[d.operands_offset + slot];
      if (ref == kNullRef) continue;
      const UnitRef key = WalkKey(p, Canon(p, sr.unit, ref));
      idx.uses[key].push_back(WalkUse{sr.unit, sr.seg, ld - seg.first_dyn, slot,
                                      has_register_result, d.sid, result_key});
      touched.insert(key);
    }
  }
}

void BuildWalkIndex(ProgramSlices& p) {
  p.walk_index = std::make_shared<WalkUseIndex>();
  WalkUseIndex& idx = *p.walk_index;
  idx.function_units.assign(p.module->functions.size(), 0);
  for (std::uint32_t u = 0; u < p.units.size(); ++u) {
    idx.function_units[p.partition.units[u].function] |= UnitBit(u);
  }
  RefreshSegBase(p, idx);
  std::vector<std::set<UnitRef>> touched(p.units.size());
  for (const SegmentRef& sr : p.segment_order) AppendSegmentUses(p, idx, sr, touched[sr.unit]);
  idx.unit_refs.resize(p.units.size());
  for (std::size_t u = 0; u < p.units.size(); ++u) {
    idx.unit_refs[u].assign(touched[u].begin(), touched[u].end());
  }
}

/// The per-unit-slice instantiation of the walk view concept (walks.h).
/// Records every unit whose index data a walk reads into `*deps` — the
/// dependency mask that decides which units must rewalk after an edit.
class SliceWalkView {
 public:
  using NodeRef = UnitRef;
  using UseCursor = const WalkUse*;

  SliceWalkView(const ProgramSlices& p, const WalkUseIndex& idx, std::uint64_t* deps)
      : p_(p), idx_(idx), deps_(deps) {}

  [[nodiscard]] std::pair<UseCursor, UseCursor> UseRangeOf(NodeRef node) const {
    const UnitRef key = WalkKey(p_, node);
    if (key != kNullRef && RefUnit(key) != kInternUnit) *deps_ |= UnitBit(RefUnit(key));
    const auto it = idx_.uses.find(key);
    if (it == idx_.uses.end()) return {nullptr, nullptr};
    // The walk may stop at any use (early exit), so which *suffix* was
    // actually read is data-dependent; depend on every unit with a use here.
    for (const WalkUse& u : it->second) *deps_ |= UnitBit(u.unit);
    return {it->second.data(), it->second.data() + it->second.size()};
  }
  [[nodiscard]] std::uint64_t UseDyn(UseCursor u) const { return idx_.GlobalDyn(*u); }
  [[nodiscard]] std::uint8_t UseSlot(UseCursor u) const { return u->slot; }
  [[nodiscard]] const ir::Instruction& InstructionAtUse(UseCursor u) const {
    return InstrOf(*p_.module, u->sid);
  }
  [[nodiscard]] ir::StaticInstrId SidAtUse(UseCursor u) const { return u->sid; }
  [[nodiscard]] bool HasRegisterResult(UseCursor u) const {
    return u->has_register_result != 0;
  }
  [[nodiscard]] NodeRef ResultNode(UseCursor u) const { return u->result; }

 private:
  const ProgramSlices& p_;
  const WalkUseIndex& idx_;
  std::uint64_t* deps_;
};

/// ControlOracle wrapper recording which functions' static text each walk
/// consulted (function-granular: the oracle reads whole-function CFG and use
/// maps, so any unit of the function invalidates).
struct DepOracle {
  const ControlOracle& inner;
  const WalkUseIndex& idx;
  std::uint64_t* deps;

  [[nodiscard]] bool SurvivesToAddress(std::uint32_t function, std::uint32_t block,
                                       std::uint32_t reg) const {
    *deps |= idx.function_units[function];
    return inner.SurvivesToAddress(function, block, reg);
  }
};

}  // namespace

void UpdateWalkIndexForUnit(ProgramSlices& p, std::uint32_t unit) {
  if (!p.walk_index) return;
  WalkUseIndex& idx = *p.walk_index;
  RefreshSegBase(p, idx);
  std::set<UnitRef> touched(idx.unit_refs[unit].begin(), idx.unit_refs[unit].end());
  for (const UnitRef key : idx.unit_refs[unit]) {
    const auto it = idx.uses.find(key);
    if (it == idx.uses.end()) continue;
    std::erase_if(it->second, [unit](const WalkUse& u) { return u.unit == unit; });
  }
  std::set<UnitRef> now;
  const auto num_segs = static_cast<std::uint32_t>(p.units[unit].slice.segments.size());
  for (std::uint32_t seg = 0; seg < num_segs; ++seg) {
    AppendSegmentUses(p, idx, SegmentRef{unit, seg}, now);
  }
  touched.insert(now.begin(), now.end());
  for (const UnitRef key : touched) {
    const auto it = idx.uses.find(key);
    if (it == idx.uses.end()) continue;
    if (it->second.empty()) {
      idx.uses.erase(it);
      continue;
    }
    // Replayed entries were appended at the tail; restore global-dyn order.
    // Entries never tie across units (a global dyn lives in one segment), and
    // same-unit appends arrived in trace order, so stable_sort is exact.
    std::stable_sort(it->second.begin(), it->second.end(),
                     [&idx](const WalkUse& a, const WalkUse& b) {
                       return idx.GlobalDyn(a) < idx.GlobalDyn(b);
                     });
  }
  idx.unit_refs[unit].assign(now.begin(), now.end());
}

void RunUnitWalks(ProgramSlices& p, const ir::Module& module,
                  std::span<const std::uint32_t> units_to_walk, int jobs) {
  if (!p.walk_index) BuildWalkIndex(p);
  const WalkUseIndex& idx = *p.walk_index;
  const ControlOracle control(module);

  // Intern ACE membership: the union over every unit's intern marks equals
  // the monolithic closure's marks on constant/global nodes.
  std::vector<std::uint64_t> intern_ace((p.interns.size() + 63) / 64, 0);
  for (const CompiledUnit& cu : p.units) {
    for (const std::uint32_t i : cu.back.intern_marks) {
      intern_ace[i >> 6] |= std::uint64_t{1} << (i & 63);
    }
  }

  struct Part {
    Analysis::UseWeightedBits uw;
    std::uint64_t data = 0;
    std::uint64_t oracle = 0;
  };

  for (const std::uint32_t unit : units_to_walk) {
    CompiledUnit& cu = p.units[unit];
    const UnitSlice& s = cu.slice;
    const Part total = ParallelReduce(
        std::size_t{0}, s.dyn.size(), Part{},
        [&](std::size_t chunk_begin, std::size_t chunk_end) {
          Part part;
          SliceWalkView view(p, idx, &part.data);
          const DepOracle oracle{control, idx, &part.oracle};
          // Segment cursor: local dyn ids ascend through the segment table.
          std::uint32_t seg = 0;
          for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
            const auto ld = static_cast<std::uint32_t>(i);
            while (seg + 1 < s.segments.size() && s.segments[seg + 1].first_dyn <= ld) ++seg;
            while (s.segments[seg].first_dyn > ld) --seg;
            const std::uint64_t gdyn = idx.seg_base[unit][seg] + (ld - s.segments[seg].first_dyn);
            const SliceDyn& d = s.dyn[ld];
            const ir::Instruction& inst = InstrOf(module, d.sid);
            for (std::size_t slot = 0; slot < d.num_operands; ++slot) {
              if (!inst.operands[slot].IsRegister()) continue;
              if (inst.op == Opcode::kPhi && slot != d.selected_operand) continue;
              const UnitRef ref = s.operand_nodes[d.operands_offset + slot];
              if (ref == kNullRef) continue;
              const UnitRef canon = Canon(p, unit, ref);
              unsigned width = 0;
              bool is_ace = false;
              std::uint64_t mask = 0;
              if (RefUnit(canon) == kInternUnit) {
                // Register operands can resolve to interns (parameter
                // registers aliasing constant arguments). Interns never carry
                // crash masks — Narrow skips them.
                const std::uint32_t i_id = RefIndex(canon);
                width = p.interns[i_id].width;
                is_ace = ((intern_ace[i_id >> 6] >> (i_id & 63)) & 1) != 0;
              } else {
                const std::uint32_t o = RefUnit(canon);
                const std::uint32_t l = RefIndex(canon);
                if (o != unit) part.data |= UnitBit(o);
                const CompiledUnit& oc = p.units[o];
                width = oc.slice.nodes[l].width;
                is_ace = oc.back.Marked(l);
                mask = oc.back.MaskOf(l);
              }
              part.uw.total += width;
              if (!is_ace) continue;
              part.uw.ace += width;
              mask &= LowMask(width);
              if (mask == 0) continue;
              if (FirstEffect(view, oracle, canon, gdyn, /*depth=*/6) == UseEffect::kCrash) {
                part.uw.crash += PopCount(mask);
              }
            }
          }
          return part;
        },
        [](Part acc, const Part& part) {
          acc.uw.total += part.uw.total;
          acc.uw.ace += part.uw.ace;
          acc.uw.crash += part.uw.crash;
          acc.data |= part.data;
          acc.oracle |= part.oracle;
          return acc;
        },
        ParallelOptions{.jobs = jobs});
    cu.walk.uw = total.uw;
    cu.walk.data_deps = total.data | UnitBit(unit);
    cu.walk.oracle_deps = total.oracle;
  }
}

ReportStats ComposeProgram(const ProgramSlices& p) {
  ReportStats r;
  r.dyn_instructions = p.instructions_executed;
  // Count only interns some unit still references: after an incremental
  // replay swaps a constant, the superseded entry stays in the table (ids are
  // stable) but a fresh run would not have its node.
  std::vector<std::uint8_t> referenced(p.interns.size(), 0);
  std::vector<std::uint8_t> intern_ace(p.interns.size(), 0);
  for (const CompiledUnit& cu : p.units) {
    for (const std::uint32_t i : cu.slice.intern_refs) referenced[i] = 1;
    for (const std::uint32_t i : cu.back.intern_marks) intern_ace[i] = 1;
  }
  for (std::size_t i = 0; i < p.interns.size(); ++i) {
    r.num_nodes += referenced[i];
    r.ace_node_count += referenced[i] != 0 && intern_ace[i] != 0 ? 1 : 0;
  }
  for (std::size_t c = 0; c < kNumRegisterClasses; ++c) {
    r.structure[c].cls = static_cast<RegisterClass>(c);
  }
  for (const CompiledUnit& cu : p.units) {
    r.num_nodes += cu.sums.node_count;
    r.ace_node_count += cu.sums.ace_nodes;
    r.ace_bits += cu.sums.ace_bits;
    r.total_bits += cu.sums.total_bits;
    r.crash_bits += cu.sums.crash_bits;
    r.use_weighted.total += cu.walk.uw.total;
    r.use_weighted.ace += cu.walk.uw.ace;
    r.use_weighted.crash += cu.walk.uw.crash;
    r.mem_total += cu.sums.mem_total;
    r.mem_ace += cu.sums.mem_ace;
    r.mem_crash += cu.sums.mem_crash;
    for (std::size_t c = 0; c < kNumRegisterClasses; ++c) {
      r.structure[c].total_bits += cu.sums.cls_total[c];
      r.structure[c].ace_bits += cu.sums.cls_ace[c];
      r.structure[c].crash_bits += cu.sums.cls_crash[c];
    }
  }
  return r;
}

std::vector<InstrMetrics> ComposePerInstruction(const ProgramSlices& p) {
  std::map<ir::StaticInstrId, InstrMetrics> by_sid;
  for (const CompiledUnit& cu : p.units) {
    for (const InstrMetrics& m : cu.sums.per_instruction) {
      InstrMetrics& acc = by_sid[m.sid];
      acc.sid = m.sid;
      acc.exec_count += m.exec_count;
      acc.ace_bits += m.ace_bits;
      acc.crash_bits += m.crash_bits;
      acc.total_bits += m.total_bits;
    }
  }
  std::vector<InstrMetrics> out;
  out.reserve(by_sid.size());
  for (const auto& [sid, m] : by_sid) out.push_back(m);
  return out;
}

std::vector<UnitDelta> PerUnitEpvf(const ProgramSlices& p) {
  std::vector<UnitDelta> rows;
  rows.reserve(p.units.size());
  for (std::size_t u = 0; u < p.units.size(); ++u) {
    const UnitSums& sums = p.units[u].sums;
    UnitDelta row;
    row.name = p.partition.units[u].name;
    row.old_total_bits = row.new_total_bits = sums.total_bits;
    const double epvf =
        sums.total_bits == 0
            ? 0.0
            : static_cast<double>(sums.ace_bits - sums.crash_bits) /
                  static_cast<double>(sums.total_bits);
    row.old_epvf = row.new_epvf = epvf;
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace epvf::core
