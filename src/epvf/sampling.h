// ACE-graph sampling (paper section IV-E).
//
// HPC programs are repetitive, so analyzing only the first p% of the output
// nodes (the trace preserves temporal order) and linearly extrapolating gives
// a cheap ePVF estimate. The variance probe takes several small random
// subsamples (1% each) and reports the normalized variance of their
// estimates — the paper's test for whether an application is regular enough
// for sampling to be trusted (low for lavaMD/particlefilter, high for lud).
#pragma once

#include <cstdint>

#include "epvf/analysis.h"

namespace epvf::core {

struct SamplingEstimate {
  double fraction = 0.0;           ///< requested output-root fraction
  double effective_fraction = 0.0; ///< roots actually used / total roots
  double extrapolated_epvf = 0.0;  ///< partial estimate scaled to the full app
  double full_epvf = 0.0;          ///< exact value, for the Figure 11 comparison
  std::uint64_t partial_ace_nodes = 0;
  std::uint64_t full_ace_nodes = 0;

  [[nodiscard]] double AbsoluteError() const {
    const double e = extrapolated_epvf - full_epvf;
    return e < 0 ? -e : e;
  }
};

/// Estimates ePVF from the first `fraction` of output roots (Figure 11 uses
/// fraction = 0.10) and compares against the full analysis.
[[nodiscard]] SamplingEstimate EstimateBySampling(const Analysis& analysis, double fraction);

struct RepetitivenessProbe {
  double normalized_variance = 0.0;  ///< Var / Mean² over the subsample estimates
  int trials = 0;
};

/// Draws `trials` random subsamples of `sub_fraction` of the output roots and
/// measures how stable the extrapolated ePVF is across them.
[[nodiscard]] RepetitivenessProbe ProbeRepetitiveness(const Analysis& analysis,
                                                      double sub_fraction, int trials,
                                                      std::uint64_t seed);

}  // namespace epvf::core
