#include "epvf/units.h"

#include <algorithm>

#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/hash.h"

namespace epvf::core {

namespace {

/// a dominates b (reflexive) on the idom tree.
bool Dominates(const std::vector<std::uint32_t>& idom, std::uint32_t a, std::uint32_t b) {
  while (true) {
    if (a == b) return true;
    if (b == 0) return false;  // reached the entry block
    const std::uint32_t up = idom[b];
    if (up == b) return false;  // defensive: unreachable block self-loop
    b = up;
  }
}

std::vector<std::vector<std::uint32_t>> Predecessors(const ir::Function& fn) {
  std::vector<std::vector<std::uint32_t>> preds(fn.blocks.size());
  for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
    if (fn.blocks[b].instructions.empty()) continue;
    const ir::Instruction& term = fn.blocks[b].instructions.back();
    if (term.op == ir::Opcode::kBr) {
      preds[term.bb_true].push_back(b);
    } else if (term.op == ir::Opcode::kCondBr) {
      preds[term.bb_true].push_back(b);
      if (term.bb_false != term.bb_true) preds[term.bb_false].push_back(b);
    }
  }
  return preds;
}

}  // namespace

UnitPartition PartitionModule(const ir::Module& module) {
  UnitPartition partition;
  partition.unit_of_block.resize(module.functions.size());

  for (std::uint32_t f = 0; f < module.functions.size(); ++f) {
    const ir::Function& fn = module.functions[f];
    const std::size_t num_blocks = fn.blocks.size();
    const std::vector<std::uint32_t> idom = ir::ComputeImmediateDominators(fn);
    const auto preds = Predecessors(fn);

    // --- natural loops: one per header, body merged over its back edges ------
    struct Loop {
      std::uint32_t header;
      std::vector<std::uint8_t> member;  // per block
      std::size_t size = 0;
    };
    std::vector<Loop> loops;
    std::vector<std::int32_t> loop_of_header(num_blocks, -1);
    for (std::uint32_t b = 0; b < num_blocks; ++b) {
      if (fn.blocks[b].instructions.empty()) continue;
      const ir::Instruction& term = fn.blocks[b].instructions.back();
      std::uint32_t targets[2] = {ir::kInvalidIndex, ir::kInvalidIndex};
      if (term.op == ir::Opcode::kBr) {
        targets[0] = term.bb_true;
      } else if (term.op == ir::Opcode::kCondBr) {
        targets[0] = term.bb_true;
        targets[1] = term.bb_false;
      }
      for (const std::uint32_t h : targets) {
        if (h == ir::kInvalidIndex || !Dominates(idom, h, b)) continue;
        // Back edge b -> h: the natural loop is h plus every block that
        // reaches b without passing through h.
        if (loop_of_header[h] < 0) {
          loop_of_header[h] = static_cast<std::int32_t>(loops.size());
          loops.push_back(Loop{h, std::vector<std::uint8_t>(num_blocks, 0), 0});
          loops.back().member[h] = 1;
        }
        Loop& loop = loops[static_cast<std::size_t>(loop_of_header[h])];
        std::vector<std::uint32_t> work;
        if (!loop.member[b]) {
          loop.member[b] = 1;
          work.push_back(b);
        }
        while (!work.empty()) {
          const std::uint32_t x = work.back();
          work.pop_back();
          for (const std::uint32_t p : preds[x]) {
            if (!loop.member[p]) {
              loop.member[p] = 1;
              work.push_back(p);
            }
          }
        }
      }
    }
    for (Loop& loop : loops) {
      loop.size = static_cast<std::size_t>(
          std::count(loop.member.begin(), loop.member.end(), std::uint8_t{1}));
    }

    // --- innermost-loop assignment: smallest containing loop wins ------------
    std::vector<std::int32_t> innermost(num_blocks, -1);
    for (std::uint32_t b = 0; b < num_blocks; ++b) {
      std::size_t best_size = ~std::size_t{0};
      for (std::size_t li = 0; li < loops.size(); ++li) {
        if (loops[li].member[b] && loops[li].size < best_size) {
          best_size = loops[li].size;
          innermost[b] = static_cast<std::int32_t>(li);
        }
      }
    }

    // --- units: the function's top region, then loops by header id -----------
    struct PendingUnit {
      std::uint32_t header;
      std::vector<std::uint32_t> blocks;
    };
    std::vector<PendingUnit> pending;
    pending.push_back(PendingUnit{kNoHeader, {}});
    std::vector<std::uint32_t> headers_sorted;
    for (const Loop& loop : loops) headers_sorted.push_back(loop.header);
    std::sort(headers_sorted.begin(), headers_sorted.end());
    std::vector<std::uint32_t> unit_index_of_header(num_blocks, 0);
    for (const std::uint32_t h : headers_sorted) {
      unit_index_of_header[h] = static_cast<std::uint32_t>(pending.size());
      pending.push_back(PendingUnit{h, {}});
    }
    for (std::uint32_t b = 0; b < num_blocks; ++b) {
      if (innermost[b] < 0) {
        pending[0].blocks.push_back(b);
      } else {
        pending[unit_index_of_header[loops[static_cast<std::size_t>(innermost[b])].header]]
            .blocks.push_back(b);
      }
    }

    partition.unit_of_block[f].assign(num_blocks, 0);
    for (const PendingUnit& pu : pending) {
      if (pu.blocks.empty()) continue;  // function entirely inside loops
      UnitInfo unit;
      unit.function = f;
      unit.header_block = pu.header;
      unit.blocks = pu.blocks;
      unit.name = fn.name + "/" +
                  (pu.header == kNoHeader ? std::string("top") : fn.blocks[pu.header].name);
      std::string text = fn.name;
      for (const std::uint32_t b : pu.blocks) {
        const ir::BasicBlock& bb = fn.blocks[b];
        text += '\n';
        text += bb.name;
        text += ':';
        for (const ir::Instruction& inst : bb.instructions) {
          text += '\n';
          text += ir::PrintInstruction(module, fn, inst);
          if (inst.op == ir::Opcode::kCall && !inst.is_intrinsic) unit.has_user_call = true;
          if (inst.op == ir::Opcode::kAlloca) unit.has_alloca = true;
        }
      }
      unit.ir_fingerprint = support::Fnv1a64(text);
      const auto id = static_cast<std::uint32_t>(partition.units.size());
      for (const std::uint32_t b : pu.blocks) partition.unit_of_block[f][b] = id;
      partition.units.push_back(std::move(unit));
    }
  }
  return partition;
}

}  // namespace epvf::core
