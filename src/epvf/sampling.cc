#include "epvf/sampling.h"

#include <algorithm>
#include <vector>

#include "support/rng.h"
#include "support/statistics.h"

namespace epvf::core {

namespace {

/// ePVF extrapolated from a root subset. The *expensive* stage of the
/// analysis — the crash and propagation models, which dominate the total time
/// (paper Figure 10) — runs only on the sampled partial ACE graph; the cheap
/// full ACE ratio (PVF) is reused. For repetitive applications the sampled
/// crash fraction of the ACE bits matches the full one, so
///   ePVF ≈ PVF × (1 − crash_bits_p / ace_bits_p)
/// extrapolates linearly, exactly the section IV-E observation.
double ExtrapolatedEpvf(const Analysis& analysis, std::span<const ddg::NodeId> roots,
                        double effective_fraction, std::uint64_t* ace_nodes_out) {
  (void)effective_fraction;
  const ddg::AceResult partial = ddg::ComputeAceFromRoots(analysis.graph(), roots);
  const crash::CrashBits partial_crash =
      crash::PropagateCrashRanges(analysis.graph(), partial, analysis.crash_model());
  if (ace_nodes_out != nullptr) *ace_nodes_out = partial.ace_node_count;
  if (partial.ace_bits == 0) return 0.0;
  const double sampled_crash_fraction =
      static_cast<double>(partial_crash.total_crash_bits) /
      static_cast<double>(partial.ace_bits);
  return analysis.Pvf() * (1.0 - sampled_crash_fraction);
}

}  // namespace

SamplingEstimate EstimateBySampling(const Analysis& analysis, double fraction) {
  SamplingEstimate estimate;
  estimate.fraction = fraction;
  estimate.full_epvf = analysis.Epvf();
  estimate.full_ace_nodes = analysis.ace().ace_node_count;

  // Paper section IV-E: "pick the first p% of the output nodes" (temporal
  // order). Control roots are left to the full-PVF factor: their ACE mass is
  // almost entirely shared with the output slices (loop indices feed both
  // compares and addresses), so the sampled crash fraction is representative.
  const std::vector<ddg::NodeId>& roots = analysis.graph().output_roots();
  if (roots.empty()) return estimate;
  const std::size_t take = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(roots.size()) * fraction));
  estimate.effective_fraction =
      static_cast<double>(take) / static_cast<double>(roots.size());
  estimate.extrapolated_epvf = ExtrapolatedEpvf(
      analysis, std::span<const ddg::NodeId>(roots.data(), take), estimate.effective_fraction,
      &estimate.partial_ace_nodes);
  return estimate;
}

RepetitivenessProbe ProbeRepetitiveness(const Analysis& analysis, double sub_fraction,
                                        int trials, std::uint64_t seed) {
  RepetitivenessProbe probe;
  probe.trials = trials;
  const std::vector<ddg::NodeId>& roots = analysis.graph().output_roots();
  if (roots.empty() || trials <= 0) return probe;

  const std::size_t take = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(roots.size()) * sub_fraction));
  const double effective = static_cast<double>(take) / static_cast<double>(roots.size());

  Rng rng(seed);
  std::vector<double> estimates;
  estimates.reserve(static_cast<std::size_t>(trials));
  std::vector<ddg::NodeId> sample(take);
  for (int t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < take; ++i) {
      sample[i] = roots[rng.Below(roots.size())];
    }
    estimates.push_back(ExtrapolatedEpvf(analysis, sample, effective, nullptr));
  }
  probe.normalized_variance = NormalizedVariance(estimates);
  return probe;
}

}  // namespace epvf::core
