// Shard decomposition for multi-process fault-injection campaigns.
//
// A campaign's plan is pre-drawn deterministically from its seed, so any
// partition of the plan indices can execute anywhere — different threads,
// different processes, different machines — and recombine into the exact
// record stream of a single-process run (the same observation FastFlip and
// Hari et al.'s two-level model build on: injections are independent and
// recombinable). This header defines the partition (contiguous slices, so
// the site-sorted checkpoint fast path stays warm within a shard) and the
// recombination of per-shard record/completion-mask pairs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fi/campaign.h"

namespace epvf::fi {

/// A half-open range of plan indices owned by one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t Size() const { return end - begin; }
  [[nodiscard]] bool Contains(std::size_t i) const { return i >= begin && i < end; }
};

/// The contiguous slice of `num_runs` plan indices owned by shard
/// `shard_index` of `shard_count`. Slices are disjoint, cover [0, num_runs)
/// exactly, and differ in size by at most one run. Throws on an invalid
/// shard coordinate (count < 1 or index outside [0, count)).
[[nodiscard]] ShardRange ShardSlice(std::size_t num_runs, int shard_count, int shard_index);

/// One shard's contribution: full-length (num_runs) record and completion
/// vectors with only the shard's own indices marked complete — the exact
/// shape the campaign artifact persists, so a shard artifact deserializes
/// straight into this.
struct ShardRecords {
  std::vector<FaultRecord> records;
  std::vector<std::uint8_t> completed;
};

/// The recombined stream plus merge diagnostics.
struct MergedRecords {
  std::vector<FaultRecord> records;
  std::vector<std::uint8_t> completed;
  std::uint64_t merged = 0;    ///< indices adopted from exactly one shard
  std::uint64_t missing = 0;   ///< indices no shard completed
  std::uint64_t conflicts = 0; ///< indices two shards both claim (both dropped)
};

/// Folds per-shard record/mask pairs into one campaign-wide pair. A plan
/// index completed by exactly one shard is adopted; an index claimed by two
/// shards with disagreeing records is a merge conflict and is dropped back
/// to incomplete (the resuming campaign simply re-executes it — correctness
/// over trust). Shards whose vectors are not `num_runs` long are skipped and
/// their indices counted missing.
[[nodiscard]] MergedRecords MergeShards(std::size_t num_runs,
                                        const std::vector<ShardRecords>& shards);

}  // namespace epvf::fi
