// Memory-resident fault scenario: dwell-weighted (page, byte, bit) sites.
//
// Jaulmes et al. ("Memory Vulnerability: A Case for Delaying Error
// Reporting") observe that a memory cell's contribution to AVF is the time a
// value *dwells* between the store that produced it and the load that
// consumes it — and that a corrupted byte overwritten before any consuming
// load is harmless, so its error report can be delayed and then dropped.
//
// This module derives exactly that site population from the golden run's DDG
// writer/reader shadow (ddg::Graph::accesses(), the per-access probe records
// of paper section III-D): walking the accesses in dynamic order, every store
// opens one interval per byte it writes, and the first later access touching
// that byte closes it — a load marks the interval *consumed* (the flip is
// live; its injection must execute), a store marks it *overwritten* (the flip
// is dead; delayed reporting classifies it benign without running anything).
// Intervals still open at trace end are likewise never consumed.
//
// Each site is keyed as an ordinary fi::FaultSite so records, resume
// matching, artifacts, shards, and the serve protocol are reused unchanged:
//
//   dyn_index = writer_dyn + 1   (the flip lands right after the store)
//   slot      = byte offset within the store's access
//   width     = 8                (one byte; bits drawn uniformly within it)
//   node      = the store's memory DDG node
//
// The sampling weight of a site is dwell x 8 bits (dwell = end_dyn -
// writer_dyn, always >= 1): a byte that sits exposed for a million
// instructions is a million times likelier to take the particle than one
// consumed immediately — the FIT-weighting of the Jaulmes model.
#pragma once

#include <cstdint>
#include <vector>

#include "ddg/graph.h"
#include "fi/injector.h"

namespace epvf::fi {

/// One memory-resident candidate site: a byte one dynamic store produced.
struct MemorySite {
  std::uint64_t addr = 0;        ///< absolute simulated address of the byte
  std::uint32_t writer_dyn = 0;  ///< dynamic index of the producing store
  /// Dynamic index of the closing event: the first consuming load, the first
  /// overwriting store, or the trace length when nothing touches it again.
  std::uint32_t end_dyn = 0;
  ddg::NodeId node = ddg::kNoNode;  ///< memory node of the producing store
  std::uint8_t slot = 0;            ///< byte offset within the store's access
  /// True when the closing event is a load: the corrupted byte is read, so
  /// the injection must execute. False = overwritten or never read — benign
  /// by the delayed-error-reporting rule, no execution needed.
  bool consumed = false;

  /// Dwell interval in dynamic instructions (>= 1).
  [[nodiscard]] std::uint64_t Dwell() const { return end_dyn - writer_dyn; }
  /// Sampling weight: dwell x 8 bits.
  [[nodiscard]] std::uint64_t WeightBits() const { return Dwell() * 8; }
};

/// Walks the access shadow and returns every store-produced byte interval,
/// sorted by (writer_dyn, slot) — a pure function of (trace, layout), so two
/// enumerations of the same golden run are element-wise identical.
[[nodiscard]] std::vector<MemorySite> EnumerateMemorySites(const ddg::Graph& graph);

/// The memory scenario of one golden run: the site table plus the lookup the
/// injector and planner need. Immutable after construction, so one instance
/// is shared by every concurrent injection of a campaign.
class MemoryScenario {
 public:
  explicit MemoryScenario(const ddg::Graph& graph);

  [[nodiscard]] const std::vector<MemorySite>& sites() const { return sites_; }

  /// FaultSite encoding of sites()[i] (see the header comment).
  [[nodiscard]] FaultSite SiteKey(std::size_t i) const;

  /// All site keys in table order — the campaign/planner site population.
  [[nodiscard]] std::vector<FaultSite> FaultSites() const;

  /// The site a FaultSite key addresses, or nullptr. O(log n).
  [[nodiscard]] const MemorySite* Find(std::uint32_t dyn_index, std::uint8_t slot) const;

  /// Sum of WeightBits() over all sites (the sampling denominator).
  [[nodiscard]] std::uint64_t TotalWeightBits() const { return total_weight_bits_; }

 private:
  std::vector<MemorySite> sites_;  ///< sorted by (writer_dyn, slot)
  std::uint64_t total_weight_bits_ = 0;
};

}  // namespace epvf::fi
