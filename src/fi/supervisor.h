// Crash-tolerant supervisor for sharded campaign workers.
//
// The supervisor turns N shard commands into N worker processes and babysits
// them to completion: a worker that dies (nonzero exit, SIGKILL, OOM) or
// hangs (no exit before its per-shard deadline) is killed if needed and
// relaunched with exponential backoff, up to a bounded number of launches.
// Relaunched workers are expected to resume from their shard's persisted
// completion mask — the supervisor itself is oblivious to what the workers
// compute; it only manages their lifecycle. Shards that exhaust their
// launch budget are reported failed; the caller decides whether to execute
// the leftover work itself (the campaign merge does exactly that).
//
// The loop is single-threaded: it polls children with non-blocking reaps on
// a short interval, which keeps the implementation free of SIGCHLD handler
// subtleties and makes the timeout bookkeeping trivial to reason about.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "support/subprocess.h"

namespace epvf::fi {

struct SupervisorOptions {
  int shards = 1;
  /// Seconds a single worker attempt may run before it is declared hung,
  /// killed, and relaunched. 0 = no deadline.
  double shard_timeout_seconds = 0;
  /// Relaunches allowed per shard after its first attempt; total attempts
  /// per shard = retries + 1.
  int retries = 2;
  /// Exponential-backoff delay before relaunch k: initial * 2^(k-1), capped.
  double backoff_initial_seconds = 0.25;
  double backoff_max_seconds = 8.0;
  /// Upper bound on one wait round. The loop blocks in a real readiness
  /// wait (`Subprocess::WaitAnyReady`) and wakes the instant a worker exits;
  /// this interval only bounds how late a timeout, backoff expiry, on_poll
  /// tick, or cancellation is noticed.
  double poll_interval_seconds = 0.02;

  /// argv for shard i's worker (argv[0] = executable path). Required.
  std::function<SubprocessOptions(int shard)> command;
  /// Optional lifecycle log sink (launch / death / timeout / give-up),
  /// invoked from the supervising thread. Messages are one line, no newline.
  std::function<void(const std::string& message)> on_event;
  /// Optional cooperative cancellation: checked once per loop round. When it
  /// returns true every running worker is killed and reaped, remaining work
  /// is abandoned, and the result carries cancelled = true. Workers persist
  /// their completion masks incrementally, so a cancelled campaign resumes.
  std::function<bool()> cancelled;
  /// Optional per-round callback (after reaping, before the wait) — the
  /// serve layer pumps progress snapshots to clients from here.
  std::function<void()> on_poll;
};

struct ShardOutcome {
  int launches = 0;        ///< attempts actually started
  int timeouts = 0;        ///< attempts killed for blowing the deadline
  bool succeeded = false;  ///< some attempt exited 0
  ExitStatus last_status;  ///< how the final attempt ended
};

struct SupervisorResult {
  std::vector<ShardOutcome> shards;
  double wall_seconds = 0;
  bool cancelled = false;  ///< the `cancelled` predicate ended the run early

  [[nodiscard]] bool AllSucceeded() const;
  [[nodiscard]] int TotalRelaunches() const;
};

/// Runs every shard to success or launch-budget exhaustion. Workers run
/// concurrently; the call returns when no shard is running or pending.
[[nodiscard]] SupervisorResult RunShardSupervisor(const SupervisorOptions& options);

}  // namespace epvf::fi
