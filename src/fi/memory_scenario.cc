#include "fi/memory_scenario.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace epvf::fi {

namespace {

/// The open write interval of one byte while the sweep runs.
struct OpenInterval {
  std::uint32_t writer_dyn = 0;
  ddg::NodeId node = ddg::kNoNode;
  std::uint8_t slot = 0;
};

}  // namespace

std::vector<MemorySite> EnumerateMemorySites(const ddg::Graph& graph) {
  const obs::TraceSpan span("injection", "enumerate-memory-sites");
  std::vector<MemorySite> sites;
  std::unordered_map<std::uint64_t, OpenInterval> open;
  const auto trace_end = static_cast<std::uint32_t>(graph.NumDynInstrs());

  auto close = [&](std::uint64_t addr, const OpenInterval& iv, std::uint32_t end_dyn,
                   bool consumed) {
    MemorySite site;
    site.addr = addr;
    site.writer_dyn = iv.writer_dyn;
    site.end_dyn = end_dyn;
    site.node = iv.node;
    site.slot = iv.slot;
    site.consumed = consumed;
    sites.push_back(site);
  };

  // accesses() is in dynamic order; bytes within an access are visited in
  // address order, so the emitted sequence is fully deterministic.
  for (const ddg::AccessRecord& access : graph.accesses()) {
    if (access.is_store) {
      const ddg::NodeId node = graph.GetDyn(access.dyn_index).result_node;
      for (std::uint32_t b = 0; b < access.size; ++b) {
        const std::uint64_t addr = access.addr + b;
        auto [it, inserted] = open.try_emplace(addr);
        if (!inserted) {
          // Overwritten before any consuming load: dead by delayed reporting.
          close(addr, it->second, access.dyn_index, /*consumed=*/false);
        }
        it->second = OpenInterval{access.dyn_index, node, static_cast<std::uint8_t>(b)};
      }
    } else {
      for (std::uint32_t b = 0; b < access.size; ++b) {
        const std::uint64_t addr = access.addr + b;
        const auto it = open.find(addr);
        if (it == open.end()) continue;  // byte never written in the trace
        close(addr, it->second, access.dyn_index, /*consumed=*/true);
        open.erase(it);
      }
    }
  }
  // Whatever is still open at trace end was written but never read again.
  // The map's sweep order is unspecified, so these close via a sort below —
  // the full site list is canonicalized to (writer_dyn, slot) order anyway.
  for (const auto& [addr, iv] : open) close(addr, iv, trace_end, /*consumed=*/false);

  std::sort(sites.begin(), sites.end(), [](const MemorySite& a, const MemorySite& b) {
    if (a.writer_dyn != b.writer_dyn) return a.writer_dyn < b.writer_dyn;
    return a.slot < b.slot;
  });
  return sites;
}

MemoryScenario::MemoryScenario(const ddg::Graph& graph) : sites_(EnumerateMemorySites(graph)) {
  if (sites_.empty()) {
    throw std::runtime_error("MemoryScenario: the golden trace performs no stores");
  }
  for (const MemorySite& site : sites_) total_weight_bits_ += site.WeightBits();
  obs::GetCounter("scenario.memory.sites").Add(sites_.size());
}

FaultSite MemoryScenario::SiteKey(std::size_t i) const {
  const MemorySite& site = sites_[i];
  FaultSite key;
  key.dyn_index = site.writer_dyn + 1;
  key.slot = site.slot;
  key.width = 8;
  key.node = site.node;
  return key;
}

std::vector<FaultSite> MemoryScenario::FaultSites() const {
  std::vector<FaultSite> keys;
  keys.reserve(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) keys.push_back(SiteKey(i));
  return keys;
}

const MemorySite* MemoryScenario::Find(std::uint32_t dyn_index, std::uint8_t slot) const {
  if (dyn_index == 0) return nullptr;
  const std::uint32_t writer = dyn_index - 1;
  const auto it = std::partition_point(
      sites_.begin(), sites_.end(), [&](const MemorySite& s) {
        return s.writer_dyn != writer ? s.writer_dyn < writer : s.slot < slot;
      });
  if (it == sites_.end() || it->writer_dyn != writer || it->slot != slot) return nullptr;
  return &*it;
}

}  // namespace epvf::fi
