#include "fi/shard.h"

#include <stdexcept>

namespace epvf::fi {

ShardRange ShardSlice(std::size_t num_runs, int shard_count, int shard_index) {
  if (shard_count < 1 || shard_index < 0 || shard_index >= shard_count) {
    throw std::invalid_argument("ShardSlice: shard " + std::to_string(shard_index) + " of " +
                                std::to_string(shard_count) + " is not a valid coordinate");
  }
  const auto count = static_cast<std::size_t>(shard_count);
  const auto index = static_cast<std::size_t>(shard_index);
  // The classic balanced split: the first (num_runs % count) shards carry one
  // extra run, computed without overflow via the rounding division.
  ShardRange range;
  range.begin = num_runs * index / count;
  range.end = num_runs * (index + 1) / count;
  return range;
}

namespace {

bool SameRecord(const FaultRecord& a, const FaultRecord& b) {
  return a.site.dyn_index == b.site.dyn_index && a.site.slot == b.site.slot &&
         a.site.width == b.site.width && a.site.node == b.site.node && a.bit == b.bit &&
         a.outcome == b.outcome;
}

}  // namespace

MergedRecords MergeShards(std::size_t num_runs, const std::vector<ShardRecords>& shards) {
  MergedRecords out;
  out.records.resize(num_runs);
  out.completed.assign(num_runs, 0);
  for (const ShardRecords& shard : shards) {
    if (shard.records.size() != num_runs || shard.completed.size() != num_runs) continue;
    for (std::size_t i = 0; i < num_runs; ++i) {
      if (shard.completed[i] == 0) continue;
      if (out.completed[i] == 0) {
        out.records[i] = shard.records[i];
        out.completed[i] = 1;
        continue;
      }
      // Two shards claim index i. Identical claims are harmless (a worker
      // relaunched after persisting but before its exit was observed); a
      // disagreement means at least one side is untrustworthy, so the index
      // is re-executed rather than guessed at.
      if (!SameRecord(out.records[i], shard.records[i])) {
        out.records[i] = FaultRecord{};
        out.completed[i] = 0;
        out.conflicts += 1;
      }
    }
  }
  for (std::size_t i = 0; i < num_runs; ++i) {
    if (out.completed[i] != 0) {
      out.merged += 1;
    } else {
      out.missing += 1;
    }
  }
  return out;
}

}  // namespace epvf::fi
