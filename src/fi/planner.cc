#include "fi/planner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "fi/memory_scenario.h"
#include "fi/shard.h"
#include "ir/opcode.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "support/statistics.h"
#include "support/thread_pool.h"

namespace epvf::fi {

namespace {

constexpr double kZ95 = 1.959963984540054;
/// Neyman scores are floored at this sigma so a stratum the posterior calls
/// (nearly) deterministic still receives budget until it earns retirement.
constexpr double kSigmaFloor = 0.05;

constexpr const char* kClassNames[] = {"mem", "ctl", "flt", "int", "oth"};
constexpr const char* kCrashNames[] = {"non-ace", "crash-heavy", "crash-light"};
constexpr const char* kDepthNames[] = {"shallow", "deep"};
constexpr int kNumClasses = 5;
constexpr int kNumCrash = 3;
constexpr int kNumDepth = 2;

/// Memory scenario: the dwell-depth stratum axis. Log-spaced buckets — the
/// dwell distribution is heavy-tailed (most bytes are consumed within a few
/// instructions; a few persist for most of the trace), so linear buckets
/// would put everything in one stratum.
constexpr const char* kDwellNames[] = {"dwell-immediate", "dwell-short", "dwell-mid",
                                       "dwell-long"};
constexpr int kNumDwell = 4;

int DwellBucket(std::uint64_t dwell) {
  if (dwell < 4) return 0;
  if (dwell < 64) return 1;
  if (dwell < 4096) return 2;
  return 3;
}

int ClassOf(ir::Opcode op) {
  using ir::Opcode;
  if (ir::IsMemoryAccess(op) || op == Opcode::kGep || op == Opcode::kAlloca) return 0;
  if (op == Opcode::kICmp || op == Opcode::kFCmp || op == Opcode::kSelect ||
      ir::IsTerminator(op)) {
    return 1;
  }
  if (op == Opcode::kFAdd || op == Opcode::kFSub || op == Opcode::kFMul ||
      op == Opcode::kFDiv) {
    return 2;
  }
  if (ir::IsBinaryArith(op)) return 3;
  return 4;  // casts, phi, call
}

}  // namespace

CampaignPlanner::CampaignPlanner(const ddg::Graph& graph, const ddg::AceResult& ace,
                                 const crash::CrashBits& crash_bits, const Injector& injector,
                                 std::uint64_t seed, StratifiedOptions options)
    : injector_(injector), options_(options) {
  if (!(options_.ci_target > 0.0)) {
    throw std::invalid_argument("CampaignPlanner: ci_target must be positive");
  }
  if (injector.options().scenario == Scenario::kMemory) {
    BuildMemoryStrata(ace, crash_bits, seed);
    RetireSweep(0);
    return;
  }
  sites_ = EnumerateFaultSites(graph);
  if (sites_.empty()) throw std::runtime_error("CampaignPlanner: no injectable fault sites");

  // Backward-slice depth of every node: predecessors always carry smaller
  // ids, so one ascending sweep computes the height of each node's def tree.
  std::vector<std::uint32_t> height(graph.NumNodes(), 0);
  for (std::size_t id = 0; id < graph.NumNodes(); ++id) {
    for (const ddg::NodeId p : graph.Preds(static_cast<ddg::NodeId>(id))) {
      height[id] = std::max(height[id], height[p] + 1);
    }
  }
  // The shallow/deep split at the median site depth keeps both buckets
  // populated whatever the app's slice-depth distribution looks like.
  std::vector<std::uint32_t> depths(sites_.size(), 0);
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i].node != ddg::kNoNode) depths[i] = height[sites_[i].node];
  }
  std::vector<std::uint32_t> sorted_depths = depths;
  std::nth_element(sorted_depths.begin(), sorted_depths.begin() + sorted_depths.size() / 2,
                   sorted_depths.end());
  const std::uint32_t depth_split = sorted_depths[sorted_depths.size() / 2];

  // Partition the site indices into (class x crash-status x depth) buckets.
  constexpr int kNumBuckets = kNumClasses * kNumCrash * kNumDepth;
  std::vector<std::vector<std::uint32_t>> buckets(kNumBuckets);
  std::uint64_t population_bits = 0;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const FaultSite& site = sites_[i];
    const int cls = ClassOf(graph.InstructionAt(site.dyn_index).op);
    int crash_class = 0;
    if (site.node != ddg::kNoNode && ace.Contains(site.node)) {
      const std::uint32_t cb = crash_bits.CrashBitCount(site.node);
      crash_class = 2 * cb >= site.width ? 1 : 2;
    }
    const int depth = depths[i] > depth_split ? 1 : 0;
    buckets[(cls * kNumCrash + crash_class) * kNumDepth + depth].push_back(
        static_cast<std::uint32_t>(i));
    population_bits += site.width;
  }

  // Materialize the non-empty buckets in key order. Each stratum gets its own
  // RNG stream derived from (campaign seed, stratum index) — SplitMix64
  // seeding decorrelates the streams — and its model prior: non-ACE bits are
  // masked, ACE crash bits crash, the remaining ACE bits are SDC-prone.
  for (int key = 0; key < kNumBuckets; ++key) {
    if (buckets[key].empty()) continue;
    StratumState s;
    const int depth = key % kNumDepth;
    const int crash_class = (key / kNumDepth) % kNumCrash;
    const int cls = key / (kNumDepth * kNumCrash);
    s.name = std::string(kClassNames[cls]) + "/" + kCrashNames[crash_class] + "/" +
             kDepthNames[depth];
    s.sites = std::move(buckets[key]);
    s.cumulative_bits.resize(s.sites.size());
    std::uint64_t sdc_bits = 0;
    std::uint64_t crash_bit_sum = 0;
    for (std::size_t j = 0; j < s.sites.size(); ++j) {
      const FaultSite& site = sites_[s.sites[j]];
      s.total_bits += site.width;
      s.cumulative_bits[j] = s.total_bits;
      if (site.node != ddg::kNoNode && ace.Contains(site.node)) {
        const std::uint64_t cb =
            std::min<std::uint64_t>(crash_bits.CrashBitCount(site.node), site.width);
        crash_bit_sum += cb;
        sdc_bits += site.width - cb;
      }
    }
    s.weight = static_cast<double>(s.total_bits) / static_cast<double>(population_bits);
    s.prior_sdc = static_cast<double>(sdc_bits) / static_cast<double>(s.total_bits);
    s.prior_crash = static_cast<double>(crash_bit_sum) / static_cast<double>(s.total_bits);
    s.rng.Seed(seed ^ (0x9E3779B97F4A7C15ull * (strata_.size() + 1)));
    strata_.push_back(std::move(s));
  }
  // With a zero confirming-samples floor the prior alone can already satisfy
  // the stopping rule; sweep once so Done() is honest before the first round.
  RetireSweep(0);
}

void CampaignPlanner::BuildMemoryStrata(const ddg::AceResult& ace,
                                        const crash::CrashBits& crash_bits,
                                        std::uint64_t seed) {
  const auto& scenario = injector_.memory_scenario();
  if (scenario == nullptr) {
    throw std::invalid_argument("CampaignPlanner: memory scenario not attached to the injector");
  }
  sites_ = scenario->FaultSites();
  const std::vector<MemorySite>& msites = scenario->sites();

  // Strata = consumed sites by dwell-depth bucket, plus one stratum for the
  // overwritten bytes (deterministically benign under delayed reporting — its
  // prior retires it after the confirming-samples floor, and every one of its
  // runs is a free short-circuit).
  constexpr int kNumBuckets = kNumDwell + 1;  // last bucket: overwritten
  std::vector<std::vector<std::uint32_t>> buckets(kNumBuckets);
  std::uint64_t population_bits = 0;
  for (std::size_t i = 0; i < msites.size(); ++i) {
    const MemorySite& ms = msites[i];
    const int key = ms.consumed ? DwellBucket(ms.Dwell()) : kNumDwell;
    buckets[key].push_back(static_cast<std::uint32_t>(i));
    population_bits += ms.WeightBits();
  }

  for (int key = 0; key < kNumBuckets; ++key) {
    if (buckets[key].empty()) continue;
    StratumState s;
    s.name = key == kNumDwell ? std::string("mem/overwritten")
                              : std::string("mem/consumed/") + kDwellNames[key];
    s.sites = std::move(buckets[key]);
    s.cumulative_bits.resize(s.sites.size());
    // Within-stratum draws mirror the uniform memory campaign: site
    // probability proportional to dwell x 8, bit uniform within the byte.
    // The model prior is dwell-mass-weighted for the same reason.
    std::uint64_t sdc_mass = 0;
    std::uint64_t crash_mass = 0;
    for (std::size_t j = 0; j < s.sites.size(); ++j) {
      const MemorySite& ms = msites[s.sites[j]];
      s.total_bits += ms.WeightBits();
      s.cumulative_bits[j] = s.total_bits;
      if (key != kNumDwell && ms.node != ddg::kNoNode && ace.Contains(ms.node)) {
        const std::uint64_t cb = std::min<std::uint64_t>(crash_bits.CrashBitCount(ms.node), 8);
        crash_mass += ms.Dwell() * cb;
        sdc_mass += ms.Dwell() * (8 - cb);
      }
    }
    s.weight = static_cast<double>(s.total_bits) / static_cast<double>(population_bits);
    s.prior_sdc = static_cast<double>(sdc_mass) / static_cast<double>(s.total_bits);
    s.prior_crash = static_cast<double>(crash_mass) / static_cast<double>(s.total_bits);
    s.rng.Seed(seed ^ (0x9E3779B97F4A7C15ull * (strata_.size() + 1)));
    strata_.push_back(std::move(s));
  }
  if (strata_.empty()) throw std::runtime_error("CampaignPlanner: no injectable fault sites");
}

bool CampaignPlanner::Done() const {
  if (options_.max_runs > 0 && TotalRuns() >= options_.max_runs) return true;
  return LiveStrata() == 0;
}

std::size_t CampaignPlanner::LiveStrata() const {
  std::size_t live = 0;
  for (const StratumState& s : strata_) {
    if (!s.retired) ++live;
  }
  return live;
}

double CampaignPlanner::WidestHalfWidth() const {
  double widest = 0.0;
  for (std::size_t h = 0; h < strata_.size(); ++h) {
    if (strata_[h].retired) continue;
    widest = std::max({widest, StratumSdc(h).half_width, StratumCrash(h).half_width});
  }
  return widest;
}

std::uint32_t CampaignPlanner::EffectiveRoundSize() const {
  if (options_.round_size > 0) return options_.round_size;
  return std::max<std::uint32_t>(64, 4 * static_cast<std::uint32_t>(strata_.size()));
}

std::vector<std::uint32_t> CampaignPlanner::Allocate(std::uint32_t budget) const {
  std::vector<std::uint32_t> alloc(strata_.size(), 0);
  std::vector<double> score(strata_.size(), 0.0);
  double total_score = 0.0;
  for (std::size_t h = 0; h < strata_.size(); ++h) {
    if (strata_[h].retired) continue;
    const double ps = StratumSdc(h).rate;
    const double pc = StratumCrash(h).rate;
    const double var = std::max({ps * (1.0 - ps), pc * (1.0 - pc), kSigmaFloor * kSigmaFloor});
    score[h] = strata_[h].weight * std::sqrt(var);
    total_score += score[h];
  }
  if (total_score <= 0.0 || budget == 0) return alloc;

  // Largest-remainder rounding: quotas floor to a base allocation, then the
  // leftover runs go to the largest fractional parts (ties to the lower
  // stratum index), so the parts always sum to the budget exactly.
  std::uint32_t assigned = 0;
  std::vector<std::pair<double, std::size_t>> remainders;
  for (std::size_t h = 0; h < strata_.size(); ++h) {
    if (score[h] <= 0.0) continue;
    const double quota = static_cast<double>(budget) * score[h] / total_score;
    const auto base = static_cast<std::uint32_t>(quota);
    alloc[h] = base;
    assigned += base;
    remainders.emplace_back(quota - static_cast<double>(base), h);
  }
  std::sort(remainders.begin(), remainders.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (std::size_t i = 0; assigned < budget; ++i) {
    alloc[remainders[i % remainders.size()].second] += 1;
    ++assigned;
  }
  return alloc;
}

std::vector<PlannedInjection> CampaignPlanner::BeginRound() {
  if (round_open_) throw std::logic_error("CampaignPlanner: round already open");
  if (Done()) throw std::logic_error("CampaignPlanner: BeginRound on a finished plan");
  std::uint64_t budget = EffectiveRoundSize();
  if (options_.max_runs > 0) {
    budget = std::min<std::uint64_t>(budget, options_.max_runs - TotalRuns());
  }
  const std::vector<std::uint32_t> alloc = Allocate(static_cast<std::uint32_t>(budget));

  open_round_.clear();
  open_round_.reserve(static_cast<std::size_t>(budget));
  for (std::size_t h = 0; h < strata_.size(); ++h) {
    StratumState& s = strata_[h];
    for (std::uint32_t j = 0; j < alloc[h]; ++j) {
      // The draw sequence mirrors RunCampaign exactly — site probability
      // proportional to operand width, bit uniform within the operand, then
      // the jitter draws — but from this stratum's own persistent stream.
      const std::uint64_t r = s.rng.Below(s.total_bits);
      const std::size_t index = static_cast<std::size_t>(
          std::upper_bound(s.cumulative_bits.begin(), s.cumulative_bits.end(), r) -
          s.cumulative_bits.begin());
      PlannedInjection run;
      run.site = sites_[s.sites[index]];
      run.bit = static_cast<std::uint8_t>(s.rng.Below(run.site.width));
      run.stratum = static_cast<std::uint32_t>(h);
      run.jitter = injector_.DrawJitter(s.rng);
      open_round_.push_back(run);
    }
  }
  round_open_ = true;
  return open_round_;
}

void CampaignPlanner::CommitRound(std::span<const FaultRecord> records) {
  if (!round_open_) throw std::logic_error("CampaignPlanner: CommitRound without BeginRound");
  if (records.size() != open_round_.size()) {
    throw std::invalid_argument("CampaignPlanner: round size mismatch");
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!Matches(open_round_[i], records[i])) {
      throw std::invalid_argument("CampaignPlanner: record does not match the planned run");
    }
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    StratumState& s = strata_[open_round_[i].stratum];
    s.runs += 1;
    s.counts[static_cast<int>(records[i].outcome)] += 1;
    if (records[i].outcome == Outcome::kSdc) s.sdc += 1;
    if (IsCrash(records[i].outcome)) s.crashes += 1;
    records_.push_back(records[i]);
  }
  round_sizes_.push_back(static_cast<std::uint32_t>(records.size()));
  round_open_ = false;
  open_round_.clear();
  RetireSweep(static_cast<std::uint32_t>(round_sizes_.size()) - 1);

  obs::GetCounter("planner.rounds").Add(1);
  obs::GetCounter("planner.runs").Add(records.size());
  for (const StratumState& s : strata_) {
    if (s.retired && s.retired_round + 1 == round_sizes_.size()) {
      obs::GetCounter("planner.strata.retired").Add(1);
    }
  }
}

void CampaignPlanner::RetireSweep(std::uint32_t round) {
  for (std::size_t h = 0; h < strata_.size(); ++h) {
    StratumState& s = strata_[h];
    if (s.retired || s.runs < options_.min_per_stratum) continue;
    const double widest = std::max(StratumSdc(h).half_width, StratumCrash(h).half_width);
    if (widest <= options_.ci_target) {
      s.retired = true;
      s.retired_round = round;
      obs::GetCounter("planner.stratum." + s.name + ".runs").Add(s.runs);
    }
  }
}

RateEstimate CampaignPlanner::StratumSdc(std::size_t h) const {
  const StratumState& s = strata_[h];
  const double trials = static_cast<double>(s.runs) + options_.model_prior;
  const double successes = static_cast<double>(s.sdc) + options_.model_prior * s.prior_sdc;
  return RateEstimate{trials <= 0.0 ? 0.0 : successes / trials,
                      WilsonHalfWidth95(successes, trials)};
}

RateEstimate CampaignPlanner::StratumCrash(std::size_t h) const {
  const StratumState& s = strata_[h];
  const double trials = static_cast<double>(s.runs) + options_.model_prior;
  const double successes = static_cast<double>(s.crashes) + options_.model_prior * s.prior_crash;
  return RateEstimate{trials <= 0.0 ? 0.0 : successes / trials,
                      WilsonHalfWidth95(successes, trials)};
}

RateEstimate CampaignPlanner::Composite(bool crash) const {
  // Real counts only: the model pseudo-counts steer allocation and stopping,
  // but blending them here would bias the headline estimates wherever the
  // model is systematically off (its confident strata retire after few
  // confirming samples, freezing the prior's error into the rate). The
  // classic stratified estimator over the committed outcomes is unbiased, so
  // its CI covers a dense uniform reference campaign — the bench_fig11
  // acceptance gate. A stratum with no real samples yet (max_runs tripped
  // before its floor) falls back to the model prediction at prior strength.
  double rate = 0.0;
  double variance = 0.0;
  for (std::size_t h = 0; h < strata_.size(); ++h) {
    const StratumState& s = strata_[h];
    double p, trials;
    if (s.runs > 0) {
      const std::uint64_t hits = crash ? s.crashes : s.sdc;
      trials = static_cast<double>(s.runs);
      p = static_cast<double>(hits) / trials;
    } else {
      trials = options_.model_prior;
      p = crash ? s.prior_crash : s.prior_sdc;
    }
    rate += s.weight * p;
    if (trials > 0.0) {
      variance += s.weight * s.weight * p * (1.0 - p) / trials;
    }
  }
  return RateEstimate{rate, kZ95 * std::sqrt(variance)};
}

RateEstimate CampaignPlanner::SdcEstimate() const { return Composite(/*crash=*/false); }
RateEstimate CampaignPlanner::CrashEstimate() const { return Composite(/*crash=*/true); }

CampaignStats CampaignPlanner::Stats() const {
  CampaignStats stats;
  stats.records = records_;
  for (const FaultRecord& r : records_) stats.counts[static_cast<int>(r.outcome)] += 1;
  return stats;
}

PlanReplay ReplayPlan(CampaignPlanner& planner, std::span<const std::uint32_t> round_sizes,
                      std::span<const FaultRecord> records,
                      std::span<const std::uint8_t> completed) {
  PlanReplay out;
  if (records.size() != completed.size()) return out;
  std::uint64_t total = 0;
  for (const std::uint32_t size : round_sizes) total += size;
  if (total != records.size()) return out;

  std::size_t offset = 0;
  for (std::size_t r = 0; r < round_sizes.size(); ++r) {
    const std::uint32_t size = round_sizes[r];
    const auto recs = records.subspan(offset, size);
    const auto comp = completed.subspan(offset, size);
    offset += size;
    if (planner.Done()) return out;  // rounds beyond a finished plan: bogus log

    const std::vector<PlannedInjection> queue = planner.BeginRound();
    if (queue.size() != size) return out;
    bool all_complete = true;
    for (std::size_t i = 0; i < size; ++i) {
      if (comp[i] == 0) {
        all_complete = false;
        continue;
      }
      if (!CampaignPlanner::Matches(queue[i], recs[i])) return out;
    }
    if (all_complete) {
      planner.CommitRound(recs);
      out.resumed_runs += size;
      continue;
    }
    // A partial round can only be the in-flight tail of an interrupted
    // campaign; anything recorded after it cannot have been drawn honestly.
    if (r + 1 != round_sizes.size()) return out;
    out.pending_queue = queue;
    out.pending_records.assign(recs.begin(), recs.end());
    out.pending_completed.assign(comp.begin(), comp.end());
    for (std::size_t i = 0; i < size; ++i) {
      if (comp[i] != 0) out.resumed_runs += 1;
    }
  }
  out.consistent = true;
  return out;
}

ExecuteResult ExecutePlannedRuns(Injector& injector, std::span<const PlannedInjection> queue,
                                 const ExecuteOptions& options) {
  const obs::TraceSpan span("injection", "planner-round");
  ExecuteResult out;
  out.records.resize(queue.size());
  out.completed.assign(queue.size(), 0);
  if (options.resume_records.size() == queue.size() &&
      options.resume_completed.size() == queue.size()) {
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (options.resume_completed[i] == 0) continue;
      if (!CampaignPlanner::Matches(queue[i], options.resume_records[i])) continue;
      out.records[i] = options.resume_records[i];
      out.completed[i] = 1;
    }
  }

  // Site order keeps neighbouring runs on the same suffix checkpoint when the
  // injector has snapshots loaded; records still land at their queue index.
  std::vector<std::uint32_t> order(queue.size());
  std::iota(order.begin(), order.end(), 0u);
  if (injector.NumCheckpoints() > 0) {
    std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return queue[a].site.dyn_index < queue[b].site.dyn_index;
    });
  }
  const ShardRange window =
      ShardSlice(queue.size(), static_cast<int>(options.shard_count),
                 static_cast<int>(options.shard_index));
  std::vector<std::uint32_t> pending;
  pending.reserve(window.Size());
  for (const std::uint32_t i : order) {
    if (out.completed[i] == 0 && window.Contains(i)) pending.push_back(i);
  }

  const std::size_t batch =
      options.on_progress && options.progress_interval > 0
          ? static_cast<std::size_t>(options.progress_interval)
          : (pending.empty() ? std::size_t{1} : pending.size());
  for (std::size_t begin = 0; begin < pending.size(); begin += batch) {
    const std::size_t end = std::min(begin + batch, pending.size());
    ParallelFor(begin, end, ParallelOptions{.jobs = options.num_threads, .grain = 1},
                [&](std::size_t k) {
                  const std::uint32_t i = pending[k];
                  const PlannedInjection& r = queue[i];
                  const auto result = injector.Inject(r.site, r.bit, r.jitter);
                  out.records[i] = FaultRecord{r.site, r.bit, result.outcome};
                  out.completed[i] = 1;
                  if (options.progress != nullptr) {
                    options.progress->Tick(static_cast<std::size_t>(result.outcome));
                  }
                });
    if (options.on_progress) options.on_progress(out.records, out.completed);
  }
  return out;
}

}  // namespace epvf::fi
