#include "fi/outcome.h"

namespace epvf::fi {

std::string_view OutcomeName(Outcome outcome) {
  switch (outcome) {
    case Outcome::kBenign: return "benign";
    case Outcome::kSdc: return "sdc";
    case Outcome::kHang: return "hang";
    case Outcome::kCrashSegFault: return "crash-segfault";
    case Outcome::kCrashAbort: return "crash-abort";
    case Outcome::kCrashMisaligned: return "crash-misaligned";
    case Outcome::kCrashArithmetic: return "crash-arithmetic";
    case Outcome::kDetected: return "detected";
  }
  return "<bad>";
}

Outcome Classify(const vm::RunResult& faulty, const vm::RunResult& golden) {
  switch (faulty.trap) {
    case vm::TrapKind::kSegFault: return Outcome::kCrashSegFault;
    case vm::TrapKind::kAbort: return Outcome::kCrashAbort;
    case vm::TrapKind::kMisaligned: return Outcome::kCrashMisaligned;
    case vm::TrapKind::kArithmetic: return Outcome::kCrashArithmetic;
    case vm::TrapKind::kDetected: return Outcome::kDetected;
    case vm::TrapKind::kInstructionLimit: return Outcome::kHang;
    case vm::TrapKind::kNone: break;
  }
  return faulty.output == golden.output ? Outcome::kBenign : Outcome::kSdc;
}

}  // namespace epvf::fi
