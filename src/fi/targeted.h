// Recall and precision of the crash model (paper section IV-B).
//
// Recall: of the campaign injections that actually crashed, how many did the
// model list in its crash-bit set (checked at the injected (node, bit))?
// Precision: sample bits the model predicts as crash-causing, inject each at
// the first dynamic use of the predicted node, and measure how many actually
// crash.
#pragma once

#include <cstdint>

#include "crash/propagation.h"
#include "fi/campaign.h"

namespace epvf::fi {

struct RecallStats {
  std::uint64_t crash_runs = 0;      ///< injections that crashed
  std::uint64_t predicted = 0;       ///< of those, bits the model had listed
  [[nodiscard]] double Recall() const {
    return crash_runs == 0 ? 0.0
                           : static_cast<double>(predicted) / static_cast<double>(crash_runs);
  }
  [[nodiscard]] ProportionCI CI() const { return BinomialCI95(predicted, crash_runs); }
};

[[nodiscard]] RecallStats MeasureRecall(const CampaignStats& campaign,
                                        const crash::CrashBits& crash_bits);

struct PrecisionStats {
  std::uint64_t injections = 0;  ///< targeted injections at predicted crash bits
  std::uint64_t crashed = 0;     ///< of those, runs that actually crashed
  [[nodiscard]] double Precision() const {
    return injections == 0 ? 0.0
                           : static_cast<double>(crashed) / static_cast<double>(injections);
  }
  [[nodiscard]] ProportionCI CI() const { return BinomialCI95(crashed, injections); }
};

struct PrecisionOptions {
  int num_samples = 400;
  std::uint64_t seed = 7;
};

/// Targeted precision experiment: draws (node, bit) pairs uniformly from the
/// model's crash-bit set, injects each at the node's first dynamic use, and
/// counts actual crashes. `injector` decides layout jitter per its options.
[[nodiscard]] PrecisionStats MeasurePrecision(Injector& injector, const ddg::Graph& graph,
                                              const crash::CrashBits& crash_bits,
                                              const PrecisionOptions& options);

}  // namespace epvf::fi
