#include "fi/injector.h"

namespace epvf::fi {

std::vector<FaultSite> EnumerateFaultSites(const ddg::Graph& graph) {
  std::vector<FaultSite> sites;
  for (std::uint32_t dyn = 0; dyn < graph.NumDynInstrs(); ++dyn) {
    const ddg::DynInstr& d = graph.GetDyn(dyn);
    const ir::Instruction& inst = graph.InstructionOf(d);
    const auto nodes = graph.OperandNodes(dyn);
    for (std::size_t slot = 0; slot < nodes.size(); ++slot) {
      if (!inst.operands[slot].IsRegister()) continue;
      if (inst.op == ir::Opcode::kPhi && slot != d.selected_operand) continue;
      const ddg::NodeId node = nodes[slot];
      if (node == ddg::kNoNode) continue;
      FaultSite site;
      site.dyn_index = dyn;
      site.slot = static_cast<std::uint8_t>(slot);
      site.width = graph.GetNode(node).width;
      site.node = node;
      if (site.width == 0) continue;
      sites.push_back(site);
    }
  }
  return sites;
}

Injector::Injector(const ir::Module& module, const vm::RunResult& golden,
                   InjectorOptions options)
    : module_(module), golden_(golden), options_(std::move(options)), jitter_rng_(0x5EED) {}

mem::LayoutJitter Injector::DrawJitter(Rng& rng) const {
  mem::LayoutJitter jitter;
  if (options_.jitter_pages == 0) return jitter;
  const auto draw = [&]() {
    const std::uint64_t span = 2ull * options_.jitter_pages + 1;
    return static_cast<std::int64_t>(rng.Below(span)) -
           static_cast<std::int64_t>(options_.jitter_pages);
  };
  jitter.data_shift_pages = draw();
  jitter.heap_shift_pages = draw();
  jitter.stack_shift_pages = draw();
  jitter.heap_slack_shift_pages = draw();  // allocator nondeterminism
  return jitter;
}

Injector::InjectionResult Injector::Inject(const FaultSite& site, std::uint8_t bit,
                                           std::optional<mem::LayoutJitter> jitter) {
  vm::ExecOptions exec;
  exec.layout = options_.layout;
  exec.jitter = jitter.has_value() ? *jitter : DrawJitter(jitter_rng_);
  exec.max_instructions = static_cast<std::uint64_t>(
      static_cast<double>(golden_.instructions_executed) * options_.hang_factor);
  if (exec.max_instructions < 10'000) exec.max_instructions = 10'000;
  exec.fault = vm::FaultPlan{site.dyn_index, site.slot, bit, options_.burst_length};

  InjectionResult result;
  vm::Interpreter interp(module_, exec);
  result.run = interp.Run(options_.entry, nullptr);
  result.outcome = Classify(result.run, golden_);
  return result;
}

}  // namespace epvf::fi
