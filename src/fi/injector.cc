#include "fi/injector.h"

#include <algorithm>
#include <stdexcept>

#include "fi/memory_scenario.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vm/compile.h"

namespace epvf::fi {

std::vector<FaultSite> EnumerateFaultSites(const ddg::Graph& graph) {
  std::vector<FaultSite> sites;
  for (std::uint32_t dyn = 0; dyn < graph.NumDynInstrs(); ++dyn) {
    const ddg::DynInstr& d = graph.GetDyn(dyn);
    const ir::Instruction& inst = graph.InstructionOf(d);
    const auto nodes = graph.OperandNodes(dyn);
    for (std::size_t slot = 0; slot < nodes.size(); ++slot) {
      if (!inst.operands[slot].IsRegister()) continue;
      if (inst.op == ir::Opcode::kPhi && slot != d.selected_operand) continue;
      const ddg::NodeId node = nodes[slot];
      if (node == ddg::kNoNode) continue;
      FaultSite site;
      site.dyn_index = dyn;
      site.slot = static_cast<std::uint8_t>(slot);
      site.width = graph.GetNode(node).width;
      site.node = node;
      if (site.width == 0) continue;
      sites.push_back(site);
    }
  }
  return sites;
}

Injector::Injector(const ir::Module& module, const vm::RunResult& golden,
                   InjectorOptions options)
    : module_(module), golden_(golden), options_(std::move(options)), jitter_rng_(0x5EED) {
  if (options_.scenario == Scenario::kMemory && options_.jitter_pages != 0) {
    throw std::invalid_argument(
        "Injector: the memory scenario requires jitter_pages == 0 (sites are absolute "
        "addresses of the golden layout)");
  }
  if (options_.engine != vm::Engine::kTree) bytecode_ = vm::bc::Compile(module_);
}

void Injector::AttachMemoryScenario(std::shared_ptr<const MemoryScenario> scenario) {
  if (options_.scenario != Scenario::kMemory) {
    throw std::logic_error("Injector::AttachMemoryScenario: scenario is not kMemory");
  }
  memory_scenario_ = std::move(scenario);
}

mem::LayoutJitter Injector::DrawJitter(Rng& rng) const {
  mem::LayoutJitter jitter;
  if (options_.jitter_pages == 0) return jitter;
  const auto draw = [&]() {
    const std::uint64_t span = 2ull * options_.jitter_pages + 1;
    return static_cast<std::int64_t>(rng.Below(span)) -
           static_cast<std::int64_t>(options_.jitter_pages);
  };
  jitter.data_shift_pages = draw();
  jitter.heap_shift_pages = draw();
  jitter.stack_shift_pages = draw();
  jitter.heap_slack_shift_pages = draw();  // allocator nondeterminism
  return jitter;
}

std::uint64_t Injector::HangBudget() const {
  auto budget = static_cast<std::uint64_t>(
      static_cast<double>(golden_.instructions_executed) * options_.hang_factor);
  return budget < 10'000 ? 10'000 : budget;
}

const vm::Interpreter::Checkpoint* Injector::NearestCheckpoint(std::uint64_t dyn) const {
  const auto it = std::upper_bound(
      checkpoints_.begin(), checkpoints_.end(), dyn,
      [](std::uint64_t d, const vm::Interpreter::Checkpoint& c) { return d < c.dyn_index; });
  return it == checkpoints_.begin() ? nullptr : &*std::prev(it);
}

std::size_t Injector::BuildCheckpoints(std::span<const std::uint64_t> at) {
  const obs::TraceSpan span("injection", "build-checkpoints");
  checkpoints_.clear();
  if (at.empty()) return 0;
  vm::ExecOptions exec;
  exec.layout = options_.layout;
  exec.max_instructions = HangBudget();
  exec.engine = options_.engine;
  exec.bytecode = bytecode_;
  vm::Interpreter interp(module_, exec);
  const vm::RunResult replay = interp.RunWithCheckpoints(options_.entry, at, checkpoints_);
  if (!replay.Completed() || replay.instructions_executed != golden_.instructions_executed ||
      replay.output != golden_.output) {
    checkpoints_.clear();
    throw std::runtime_error(
        "Injector::BuildCheckpoints: golden replay diverged from the supplied golden run");
  }
  obs::GetCounter("campaign.checkpoints").Add(checkpoints_.size());
  return checkpoints_.size();
}

Injector::InjectionResult Injector::Inject(const FaultSite& site, std::uint8_t bit,
                                           std::optional<mem::LayoutJitter> jitter) {
  // One span per run; the name is settled once we know whether the run could
  // resume from a snapshot. The counters are cached — registry lookup stays
  // off the per-injection path.
  static obs::Counter& full_counter = obs::GetCounter("campaign.runs.full");
  static obs::Counter& resumed_counter = obs::GetCounter("campaign.runs.resumed");
  static obs::Counter& skipped_counter = obs::GetCounter("campaign.skipped_instructions");
  static obs::Counter& masked_counter = obs::GetCounter("campaign.runs.statically_masked");
  obs::TraceSpan span("injection", "inject-full");
  vm::ExecOptions exec;
  exec.layout = options_.layout;
  exec.jitter = jitter.has_value() ? *jitter : DrawJitter(jitter_rng_);
  exec.max_instructions = HangBudget();
  exec.fault = vm::FaultPlan{site.dyn_index, site.slot, bit, options_.burst_length};
  exec.engine = options_.engine;
  exec.bytecode = bytecode_;

  if (options_.scenario == Scenario::kMemory) {
    if (memory_scenario_ == nullptr) {
      throw std::logic_error("Injector::Inject: memory scenario not attached");
    }
    const MemorySite* ms = memory_scenario_->Find(site.dyn_index, site.slot);
    if (ms == nullptr) {
      throw std::invalid_argument("Injector::Inject: site is not a memory-scenario site");
    }
    if (bit >= 8) {
      throw std::invalid_argument("Injector::Inject: memory sites are one byte (bit < 8)");
    }
    if (!ms->consumed) {
      // Delayed error reporting: the byte is overwritten before any consuming
      // load (or never read again), so the flip cannot propagate — benign by
      // construction, no execution needed. Trivially identical across
      // engines, checkpoints, jobs, and shards.
      span.Rename("inject-masked");
      masked_counter.Add();
      InjectionResult masked;
      masked.outcome = Outcome::kBenign;
      masked.statically_masked = true;
      return masked;
    }
    exec.fault->kind = vm::FaultKind::kMemory;
    exec.fault->addr = ms->addr;
    // The burst stays within the corrupted byte.
    exec.fault->num_bits = static_cast<std::uint8_t>(
        std::min<unsigned>(options_.burst_length, 8u - bit));
  }

  // Suffix-replay fast path: every run is bit-identical to the golden run up
  // to the injection point, so a zero-jitter run can start from the nearest
  // checkpoint at or before its site. Jittered runs diverge from instruction
  // zero (checkpoints hold jitter-free addresses) and run from scratch.
  const vm::Interpreter::Checkpoint* ckpt =
      exec.jitter.IsZero() ? NearestCheckpoint(site.dyn_index) : nullptr;

  InjectionResult result;
  vm::Interpreter interp(module_, exec);
  result.run = ckpt != nullptr ? interp.ResumeFrom(*ckpt) : interp.Run(options_.entry, nullptr);
  result.resumed_from = ckpt != nullptr ? ckpt->dyn_index : 0;
  result.outcome = Classify(result.run, golden_);
  if (ckpt != nullptr) {
    span.Rename("inject-resume");
    resumed_counter.Add();
    skipped_counter.Add(result.resumed_from);
  } else {
    full_counter.Add();
  }
  return result;
}

}  // namespace epvf::fi
