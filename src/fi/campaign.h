// Fault-injection campaigns.
//
// Reproduces the paper's campaign methodology (section IV-A): thousands of
// independent single-bit injections per benchmark, outcome counts with 95%
// confidence intervals. Site sampling is LLFI-like — uniformly random over
// the executed register-operand sites of the golden trace, then a uniformly
// random bit — and each run may draw fresh layout jitter.
//
// Campaign records keep the injected site (including its DDG node), which is
// what the recall study (section IV-B) and the protection case study
// (section V) consume.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "fi/injector.h"
#include "support/statistics.h"

namespace epvf::fi {

struct FaultRecord {
  FaultSite site;
  std::uint8_t bit = 0;
  Outcome outcome = Outcome::kBenign;
};

struct CampaignOptions {
  int num_runs = 1000;
  std::uint64_t seed = 42;
  InjectorOptions injector;
  /// Worker threads for the injections, scheduled dynamically on the shared
  /// pool (crash runs terminate early, so static chunking load-imbalances —
  /// dynamic work stealing keeps stragglers from serializing the campaign).
  /// Runs are pre-drawn from `seed` and recorded by plan index, so results
  /// are bit-identical for every thread count (the paper's section VI-A
  /// observes that fault injection parallelizes trivially). <= 0 = one
  /// thread per hardware core.
  int num_threads = 0;
  /// Spacing (in dynamic instructions) of the suffix-replay checkpoints
  /// dropped during one extra golden replay: each zero-jitter injection then
  /// starts from the nearest checkpoint at or before its site instead of
  /// from instruction zero. 0 = auto from the trace length (disabled for
  /// short traces), < 0 = disabled, > 0 = explicit spacing. Campaigns with
  /// nonzero jitter_pages never checkpoint — jittered runs diverge from
  /// instruction zero. Outcomes are bit-identical at every setting.
  std::int64_t checkpoint_interval = 0;

  // --- sharding (multi-process campaign decomposition) ----------------------
  /// Execute only the plan indices of shard `shard_index` of `shard_count`
  /// contiguous slices (see fi/shard.h). The full plan is still drawn — the
  /// slice is a window over the same deterministic run list, so per-shard
  /// records recombine into exactly the single-process record stream.
  /// Records outside the window stay default-initialized with their
  /// completion-mask entries zero, and outcome counts cover only completed
  /// indices. shard_count 1 (the default) is an ordinary full campaign.
  int shard_index = 0;
  int shard_count = 1;

  /// When nonempty, the campaign's progress reporter atomically publishes
  /// its counters to this file each interval (epvf-progress-v1), so a
  /// supervising process can aggregate shard heartbeats into one
  /// campaign-wide line. See obs::ProgressReporter::Options::snapshot_path.
  std::string progress_file;
  /// Progress-line gating, forwarded to the reporter: -1 = auto
  /// (EPVF_PROGRESS env, else tty), 0 = force off, 1 = force on.
  int progress_enable = -1;

  // --- interruption / resume (the artifact store's campaign persistence) ----
  /// Records and per-plan-index completion mask persisted from an earlier,
  /// interrupted campaign. Since the plan is pre-drawn deterministically from
  /// `seed`, a completed index's (site, bit) must match the re-drawn plan;
  /// matching indices are adopted without re-execution, and any mismatch (a
  /// stale artifact for different options) discards the resume data wholesale
  /// — outcomes are always identical to an uninterrupted campaign. Both
  /// vectors must have num_runs entries.
  const std::vector<FaultRecord>* resume_records = nullptr;
  const std::vector<std::uint8_t>* resume_completed = nullptr;

  /// Invoked from the coordinating thread after every `progress_interval`
  /// completed runs with all records and the completion mask so far — the
  /// artifact store hooks atomic campaign persistence here so an interrupted
  /// process can resume. 0 disables batching (one uninterrupted pass).
  std::function<void(const std::vector<FaultRecord>& records,
                     const std::vector<std::uint8_t>& completed)>
      on_progress;
  int progress_interval = 0;
};

/// Fast-path accounting for one campaign (not part of the outcome data; all
/// outcome statistics are bit-identical whether or not the fast path ran).
struct CampaignPerf {
  std::uint64_t checkpoints = 0;           ///< snapshots captured for the fast path
  std::uint64_t checkpointed_runs = 0;     ///< runs resumed from a snapshot
  std::uint64_t full_runs = 0;             ///< runs executed from instruction zero
  std::uint64_t skipped_instructions = 0;  ///< golden-prefix work the fast path avoided
  /// Memory scenario: runs classified benign by delayed error reporting
  /// (byte overwritten before any consuming load) without executing anything.
  std::uint64_t statically_masked_runs = 0;
  double checkpoint_seconds = 0;           ///< extra golden replay + snapshot capture
  double inject_seconds = 0;               ///< wall time of the injection loop

  // Artifact-store accounting (zero unless the campaign ran through
  // store::RunCampaignCached or with resume data).
  std::uint64_t resumed_records = 0;  ///< plan indices adopted from a persisted campaign
  double persist_seconds = 0;         ///< time inside on_progress persistence callbacks
  bool cache_hit = false;             ///< every record served from the artifact store
  double cache_load_seconds = 0;      ///< artifact map + verify + deserialize
  double cache_store_seconds = 0;     ///< final serialize + atomic publish
};

struct CampaignStats {
  std::array<std::uint64_t, kNumOutcomes> counts{};
  std::vector<FaultRecord> records;
  CampaignPerf perf;

  [[nodiscard]] std::uint64_t Total() const;
  [[nodiscard]] std::uint64_t Count(Outcome outcome) const {
    return counts[static_cast<int>(outcome)];
  }
  [[nodiscard]] double Rate(Outcome outcome) const;
  [[nodiscard]] ProportionCI CI(Outcome outcome) const;

  /// All crash classes combined (the paper's headline crash rate).
  [[nodiscard]] std::uint64_t CrashCount() const;
  [[nodiscard]] double CrashRate() const;
  [[nodiscard]] ProportionCI CrashCI() const;

  /// Crash-class shares *within* crashes — the rows of Table II.
  [[nodiscard]] double CrashShare(Outcome crash_class) const;
};

/// Resolves CampaignOptions::checkpoint_interval against a golden trace
/// length: explicit spacing (> 0) passes through, auto (0) targets ~32
/// evenly spaced snapshots on traces long enough for the extra replay to pay
/// for itself, disabled (< 0) — and too-short traces — return 0.
[[nodiscard]] std::uint64_t ResolveCheckpointInterval(std::int64_t checkpoint_interval,
                                                      std::uint64_t trace_length);

/// The evenly spaced checkpoint sites {interval, 2*interval, ...} inside a
/// trace of `trace_length` dynamic instructions. The count is capped (the
/// spacing is widened) so a tiny explicit interval on a huge trace cannot
/// exhaust memory with snapshots.
[[nodiscard]] std::vector<std::uint64_t> CheckpointSites(std::uint64_t trace_length,
                                                         std::uint64_t interval);

/// Runs a campaign against a golden run whose DDG is `graph`.
[[nodiscard]] CampaignStats RunCampaign(const ir::Module& module, const ddg::Graph& graph,
                                        const vm::RunResult& golden,
                                        const CampaignOptions& options);

}  // namespace epvf::fi
