// Fault-injection campaigns.
//
// Reproduces the paper's campaign methodology (section IV-A): thousands of
// independent single-bit injections per benchmark, outcome counts with 95%
// confidence intervals. Site sampling is LLFI-like — uniformly random over
// the executed register-operand sites of the golden trace, then a uniformly
// random bit — and each run may draw fresh layout jitter.
//
// Campaign records keep the injected site (including its DDG node), which is
// what the recall study (section IV-B) and the protection case study
// (section V) consume.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fi/injector.h"
#include "support/statistics.h"

namespace epvf::fi {

struct CampaignOptions {
  int num_runs = 1000;
  std::uint64_t seed = 42;
  InjectorOptions injector;
  /// Worker threads for the injections, scheduled dynamically on the shared
  /// pool (crash runs terminate early, so static chunking load-imbalances —
  /// dynamic work stealing keeps stragglers from serializing the campaign).
  /// Runs are pre-drawn from `seed` and recorded by plan index, so results
  /// are bit-identical for every thread count (the paper's section VI-A
  /// observes that fault injection parallelizes trivially). <= 0 = one
  /// thread per hardware core.
  int num_threads = 0;
};

struct FaultRecord {
  FaultSite site;
  std::uint8_t bit = 0;
  Outcome outcome = Outcome::kBenign;
};

struct CampaignStats {
  std::array<std::uint64_t, kNumOutcomes> counts{};
  std::vector<FaultRecord> records;

  [[nodiscard]] std::uint64_t Total() const;
  [[nodiscard]] std::uint64_t Count(Outcome outcome) const {
    return counts[static_cast<int>(outcome)];
  }
  [[nodiscard]] double Rate(Outcome outcome) const;
  [[nodiscard]] ProportionCI CI(Outcome outcome) const;

  /// All crash classes combined (the paper's headline crash rate).
  [[nodiscard]] std::uint64_t CrashCount() const;
  [[nodiscard]] double CrashRate() const;
  [[nodiscard]] ProportionCI CrashCI() const;

  /// Crash-class shares *within* crashes — the rows of Table II.
  [[nodiscard]] double CrashShare(Outcome crash_class) const;
};

/// Runs a campaign against a golden run whose DDG is `graph`.
[[nodiscard]] CampaignStats RunCampaign(const ir::Module& module, const ddg::Graph& graph,
                                        const vm::RunResult& golden,
                                        const CampaignOptions& options);

}  // namespace epvf::fi
