#include "fi/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/stopwatch.h"

namespace epvf::fi {

bool SupervisorResult::AllSucceeded() const {
  return std::all_of(shards.begin(), shards.end(),
                     [](const ShardOutcome& s) { return s.succeeded; });
}

int SupervisorResult::TotalRelaunches() const {
  int relaunches = 0;
  for (const ShardOutcome& s : shards) relaunches += std::max(0, s.launches - 1);
  return relaunches;
}

namespace {

using Clock = std::chrono::steady_clock;

/// Supervisor-side view of one shard's lifecycle.
struct ShardState {
  ShardOutcome outcome;
  std::optional<Subprocess> child;   ///< engaged while an attempt runs
  Clock::time_point deadline;        ///< kill time for the running attempt
  Clock::time_point next_launch;     ///< backoff gate for the next attempt
  bool exhausted = false;            ///< launch budget spent without success
};

}  // namespace

SupervisorResult RunShardSupervisor(const SupervisorOptions& options) {
  if (!options.command) throw std::invalid_argument("RunShardSupervisor: no command builder");
  if (options.shards < 1) throw std::invalid_argument("RunShardSupervisor: shards < 1");

  const obs::TraceSpan span("injection", "shard-supervisor");
  const auto emit = [&](const std::string& message) {
    if (options.on_event) options.on_event(message);
  };
  const auto backoff = [&](int relaunch_number) {
    double delay = options.backoff_initial_seconds;
    for (int i = 1; i < relaunch_number; ++i) delay *= 2;
    return std::min(delay, options.backoff_max_seconds);
  };

  Stopwatch wall;
  std::vector<ShardState> states(static_cast<std::size_t>(options.shards));
  const auto start = Clock::now();
  for (ShardState& s : states) s.next_launch = start;

  const int max_launches = std::max(1, options.retries + 1);
  bool cancelled = false;
  while (true) {
    if (options.cancelled && options.cancelled()) {
      cancelled = true;
      for (std::size_t i = 0; i < states.size(); ++i) {
        ShardState& s = states[i];
        if (!s.child.has_value()) continue;
        emit("shard " + std::to_string(i) + ": cancelled — killing worker");
        s.child->Kill();
        s.outcome.last_status = s.child->Wait();
        s.child.reset();
      }
      obs::GetCounter("campaign.supervisor.cancellations").Add();
      break;
    }

    const auto now = Clock::now();
    bool any_pending = false;

    for (std::size_t i = 0; i < states.size(); ++i) {
      ShardState& s = states[i];
      if (s.outcome.succeeded || s.exhausted) continue;
      any_pending = true;

      if (!s.child.has_value()) {
        if (now < s.next_launch) continue;  // still backing off
        s.child = Subprocess::Spawn(options.command(static_cast<int>(i)));
        if (!s.child.has_value()) {
          // A spawn failure (fork/redirection) consumes an attempt like any
          // other death — a full disk must not loop forever.
          s.outcome.launches += 1;
          s.outcome.last_status = ExitStatus{.exited = true, .code = -1, .signal = 0};
          obs::GetCounter("campaign.shard.spawn_failures").Add();
          if (s.outcome.launches >= max_launches) {
            s.exhausted = true;
            emit("shard " + std::to_string(i) + ": giving up after " +
                 std::to_string(s.outcome.launches) + " failed launches");
          } else {
            s.next_launch = now + std::chrono::duration_cast<Clock::duration>(
                                      std::chrono::duration<double>(backoff(s.outcome.launches)));
          }
          continue;
        }
        s.outcome.launches += 1;
        obs::GetCounter("campaign.shard.launches").Add();
        if (s.outcome.launches > 1) {
          obs::GetCounter("campaign.shard.relaunches").Add();
          emit("shard " + std::to_string(i) + ": relaunch attempt " +
               std::to_string(s.outcome.launches) + "/" + std::to_string(max_launches));
        }
        if (options.shard_timeout_seconds > 0) {
          s.deadline = now + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(options.shard_timeout_seconds));
        }
        continue;
      }

      // A running attempt: reap it if it ended, kill it if it blew the
      // deadline (the kill's exit is observed by the next poll round).
      std::optional<ExitStatus> status = s.child->Poll();
      if (!status.has_value()) {
        if (options.shard_timeout_seconds > 0 && now >= s.deadline) {
          char seconds[32];
          std::snprintf(seconds, sizeof(seconds), "%.1f", options.shard_timeout_seconds);
          emit("shard " + std::to_string(i) + ": hung for more than " + seconds +
               " s — killing worker");
          s.outcome.timeouts += 1;
          obs::GetCounter("campaign.shard.timeouts").Add();
          s.child->Kill();
          status = s.child->Wait();
        } else {
          continue;
        }
      }
      s.outcome.last_status = *status;
      s.child.reset();
      if (status->Success()) {
        s.outcome.succeeded = true;
        continue;
      }
      emit("shard " + std::to_string(i) + ": worker ended with " + status->Describe());
      if (s.outcome.launches >= max_launches) {
        s.exhausted = true;
        obs::GetCounter("campaign.shard.failures").Add();
        emit("shard " + std::to_string(i) + ": giving up after " +
             std::to_string(s.outcome.launches) + " attempts");
      } else {
        s.next_launch = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                           std::chrono::duration<double>(
                                               backoff(s.outcome.launches)));
      }
    }

    if (options.on_poll) options.on_poll();
    if (!any_pending) break;

    // Readiness wait: wakes the moment any running worker exits, bounded by
    // the poll interval so backoff expiries, deadlines, on_poll ticks, and
    // cancellation are still observed promptly.
    std::vector<Subprocess*> running;
    running.reserve(states.size());
    for (ShardState& s : states) {
      if (s.child.has_value()) running.push_back(&*s.child);
    }
    if (running.empty()) {
      std::this_thread::sleep_for(std::chrono::duration<double>(options.poll_interval_seconds));
    } else {
      (void)Subprocess::WaitAnyReady(running, options.poll_interval_seconds);
    }
  }

  SupervisorResult result;
  result.shards.reserve(states.size());
  for (ShardState& s : states) result.shards.push_back(s.outcome);
  result.wall_seconds = wall.ElapsedSeconds();
  result.cancelled = cancelled;
  return result;
}

}  // namespace epvf::fi
