// Fault-injection outcome taxonomy.
//
// The paper classifies every injection into crash / SDC / hang / benign
// (section I), with crashes subdivided by exception type (Table I). We add
// "detected" for runs where a section-V duplication check fires before the
// program completes.
#pragma once

#include <cstdint>
#include <string_view>

#include "vm/interpreter.h"

namespace epvf::fi {

enum class Outcome : std::uint8_t {
  kBenign,
  kSdc,
  kHang,
  kCrashSegFault,    ///< Table I "SF"
  kCrashAbort,       ///< Table I "A"
  kCrashMisaligned,  ///< Table I "MMA"
  kCrashArithmetic,  ///< Table I "AE"
  kDetected,
};

inline constexpr int kNumOutcomes = static_cast<int>(Outcome::kDetected) + 1;

[[nodiscard]] std::string_view OutcomeName(Outcome outcome);

[[nodiscard]] constexpr bool IsCrash(Outcome outcome) {
  return outcome == Outcome::kCrashSegFault || outcome == Outcome::kCrashAbort ||
         outcome == Outcome::kCrashMisaligned || outcome == Outcome::kCrashArithmetic;
}

/// Classifies a finished fault-injection run against the golden run: traps
/// map to their crash class, exceeding the instruction budget is a hang, and
/// completed runs are SDC or benign by exact output-stream comparison.
[[nodiscard]] Outcome Classify(const vm::RunResult& faulty, const vm::RunResult& golden);

}  // namespace epvf::fi
