#include "fi/campaign.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "fi/memory_scenario.h"
#include "fi/shard.h"
#include "obs/progress.h"
#include "obs/timing.h"
#include "support/thread_pool.h"

namespace epvf::fi {

std::uint64_t CampaignStats::Total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  return total;
}

double CampaignStats::Rate(Outcome outcome) const {
  const std::uint64_t total = Total();
  return total == 0 ? 0.0
                    : static_cast<double>(Count(outcome)) / static_cast<double>(total);
}

ProportionCI CampaignStats::CI(Outcome outcome) const {
  return BinomialCI95(Count(outcome), Total());
}

std::uint64_t CampaignStats::CrashCount() const {
  return Count(Outcome::kCrashSegFault) + Count(Outcome::kCrashAbort) +
         Count(Outcome::kCrashMisaligned) + Count(Outcome::kCrashArithmetic);
}

double CampaignStats::CrashRate() const {
  const std::uint64_t total = Total();
  return total == 0 ? 0.0 : static_cast<double>(CrashCount()) / static_cast<double>(total);
}

ProportionCI CampaignStats::CrashCI() const { return BinomialCI95(CrashCount(), Total()); }

double CampaignStats::CrashShare(Outcome crash_class) const {
  const std::uint64_t crashes = CrashCount();
  return crashes == 0
             ? 0.0
             : static_cast<double>(Count(crash_class)) / static_cast<double>(crashes);
}

std::uint64_t ResolveCheckpointInterval(std::int64_t checkpoint_interval,
                                        std::uint64_t trace_length) {
  if (checkpoint_interval > 0) return static_cast<std::uint64_t>(checkpoint_interval);
  if (checkpoint_interval < 0) return 0;
  // Auto policy: ~32 snapshots spread over the trace. Below ~4k instructions
  // per segment the prefix a snapshot spares is too small to beat the cost of
  // the extra replay plus the snapshot copies, so short traces opt out.
  constexpr std::uint64_t kAutoCheckpointTarget = 32;
  constexpr std::uint64_t kMinAutoInterval = 4096;
  const std::uint64_t interval = trace_length / (kAutoCheckpointTarget + 1);
  return interval < kMinAutoInterval ? 0 : interval;
}

std::vector<std::uint64_t> CheckpointSites(std::uint64_t trace_length, std::uint64_t interval) {
  std::vector<std::uint64_t> sites;
  if (interval == 0 || trace_length == 0) return sites;
  // Memory backstop: never more than 1024 snapshots, however small the
  // requested spacing.
  constexpr std::uint64_t kMaxCheckpoints = 1024;
  if (trace_length / interval > kMaxCheckpoints) {
    interval = (trace_length + kMaxCheckpoints - 1) / kMaxCheckpoints;
  }
  for (std::uint64_t at = interval; at < trace_length; at += interval) {
    sites.push_back(at);
  }
  return sites;
}

CampaignStats RunCampaign(const ir::Module& module, const ddg::Graph& graph,
                          const vm::RunResult& golden, const CampaignOptions& options) {
  const obs::TraceSpan campaign_span("injection", "campaign");
  const bool memory = options.injector.scenario == Scenario::kMemory;
  std::shared_ptr<const MemoryScenario> scenario;
  if (memory) scenario = std::make_shared<MemoryScenario>(graph);
  const std::vector<FaultSite> sites =
      memory ? scenario->FaultSites() : EnumerateFaultSites(graph);
  if (sites.empty()) throw std::runtime_error("RunCampaign: no injectable fault sites");

  Injector injector(module, golden, options.injector);
  if (memory) injector.AttachMemoryScenario(scenario);
  Rng rng(options.seed);

  // Register scenario: sample uniformly over the *register-bit* population of
  // the trace — site probability proportional to operand width, bit uniform
  // within the operand. This makes campaign rates directly comparable to the
  // bit-ratio metrics (PVF/ePVF/crash-rate estimates) they are plotted
  // against. Memory scenario: sites are dwell-weighted (dwell x 8 bits), so
  // a byte exposed for a million instructions is sampled a million times more
  // often than one consumed immediately — the Jaulmes FIT weighting.
  std::vector<std::uint64_t> cumulative_bits(sites.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    running += memory ? scenario->sites()[i].WeightBits() : sites[i].width;
    cumulative_bits[i] = running;
  }

  // Pre-draw every run from the seed so outcomes are identical regardless of
  // how many workers execute them.
  struct PlannedRun {
    FaultSite site;
    std::uint8_t bit;
    mem::LayoutJitter jitter;
  };
  std::vector<PlannedRun> plan;
  plan.reserve(static_cast<std::size_t>(options.num_runs));
  for (int i = 0; i < options.num_runs; ++i) {
    const std::uint64_t r = rng.Below(running);
    const std::size_t index = static_cast<std::size_t>(
        std::upper_bound(cumulative_bits.begin(), cumulative_bits.end(), r) -
        cumulative_bits.begin());
    const FaultSite& site = sites[index];
    const auto bit = static_cast<std::uint8_t>(rng.Below(site.width));
    plan.push_back(PlannedRun{site, bit, injector.DrawJitter(rng)});
  }

  CampaignStats stats;
  stats.records.resize(plan.size());

  // Resume from a persisted campaign artifact: adopt every completed plan
  // index whose recorded (site, bit) matches the deterministically re-drawn
  // plan. A single mismatch means the artifact belongs to different options
  // or a different seed, so the whole resume payload is discarded — outcomes
  // are always those of an uninterrupted campaign.
  std::vector<std::uint8_t> completed(plan.size(), 0);
  if (options.resume_records != nullptr && options.resume_completed != nullptr &&
      options.resume_records->size() == plan.size() &&
      options.resume_completed->size() == plan.size()) {
    bool consistent = true;
    for (std::size_t i = 0; i < plan.size() && consistent; ++i) {
      if ((*options.resume_completed)[i] == 0) continue;
      const FaultRecord& r = (*options.resume_records)[i];
      consistent = r.site.dyn_index == plan[i].site.dyn_index &&
                   r.site.slot == plan[i].site.slot && r.bit == plan[i].bit;
    }
    if (consistent) {
      for (std::size_t i = 0; i < plan.size(); ++i) {
        if ((*options.resume_completed)[i] == 0) continue;
        stats.records[i] = (*options.resume_records)[i];
        completed[i] = 1;
        stats.perf.resumed_records += 1;
      }
    }
  }

  // Suffix-replay fast path: one extra golden replay drops evenly spaced
  // checkpoints, and each zero-jitter injection then executes only the trace
  // suffix from the nearest checkpoint at or before its site. Jittered
  // campaigns skip it entirely — every run diverges from instruction zero.
  const std::uint64_t interval =
      options.injector.jitter_pages == 0
          ? ResolveCheckpointInterval(options.checkpoint_interval, golden.instructions_executed)
          : 0;
  std::vector<std::uint32_t> order(plan.size());
  std::iota(order.begin(), order.end(), 0u);
  if (interval > 0) {
    // Execute in site order so neighbouring runs resume from the same
    // checkpoint (warm snapshot pages); records still land at plan index.
    std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return plan[a].site.dyn_index < plan[b].site.dyn_index;
    });
  }
  // The shard window: a contiguous slice of plan indices (the whole plan for
  // shard_count 1). Everything outside the window is someone else's work —
  // never executed, never marked complete, never counted.
  const ShardRange window = ShardSlice(plan.size(), options.shard_count, options.shard_index);
  std::vector<std::uint32_t> pending;
  pending.reserve(window.Size());
  for (const std::uint32_t i : order) {
    if (completed[i] == 0 && window.Contains(i)) pending.push_back(i);
  }
  if (interval > 0 && !pending.empty()) {
    const obs::TimedSection timed("injection", "checkpoint-build", "campaign.checkpoint_build.us",
                                  &stats.perf.checkpoint_seconds);
    stats.perf.checkpoints =
        injector.BuildCheckpoints(CheckpointSites(golden.instructions_executed, interval));
  }

  // Dynamically scheduled on the shared pool, one run per task: runs that
  // crash (or trap early) finish far sooner than benign runs that execute to
  // completion, so a free worker immediately claims the next planned run
  // instead of idling behind a statically chunked tail. Grain 1 is right
  // here — each task is a whole program execution, dwarfing the scheduling
  // atomics. This also removes the old static-chunk hazard where
  // plan.size() < workers produced zero-width ranges. Records land at their
  // plan index, so outcomes are bit-identical for every thread count, every
  // checkpoint setting, and every progress-batch size.
  //
  // When a progress callback is set, the pending runs execute in batches with
  // a persistence call (from this coordinating thread) after each: an
  // interrupted process loses at most one batch of work. Each run is a whole
  // program execution, so the batch barriers cost noise.
  std::vector<std::uint64_t> resumed_from(plan.size(), 0);
  std::vector<std::uint8_t> statically_masked(plan.size(), 0);
  const std::size_t batch =
      options.on_progress && options.progress_interval > 0
          ? static_cast<std::size_t>(options.progress_interval)
          : (pending.empty() ? std::size_t{1} : pending.size());

  // Periodic visibility into a long campaign: workers tick lock-free atomics,
  // a reporter thread prints runs/sec + outcome tallies + ETA to stderr (only
  // when stderr is a terminal or EPVF_PROGRESS=1 — stdout never changes).
  obs::ProgressReporter::Options progress_options;
  progress_options.label = "campaign";
  progress_options.total = pending.size();
  progress_options.snapshot_path = options.progress_file;
  progress_options.enable = options.progress_enable;
  progress_options.categories.reserve(kNumOutcomes);
  for (int o = 0; o < kNumOutcomes; ++o) {
    progress_options.categories.emplace_back(OutcomeName(static_cast<Outcome>(o)));
  }
  obs::ProgressReporter progress(std::move(progress_options));

  obs::TimedSection inject_timed("injection", "inject-loop", "campaign.inject.us");
  for (std::size_t begin = 0; begin < pending.size(); begin += batch) {
    const std::size_t end = std::min(begin + batch, pending.size());
    ParallelFor(begin, end, ParallelOptions{.jobs = options.num_threads, .grain = 1},
                [&](std::size_t k) {
                  const std::size_t i = pending[k];
                  const PlannedRun& r = plan[i];
                  const auto result = injector.Inject(r.site, r.bit, r.jitter);
                  resumed_from[i] = result.resumed_from;
                  statically_masked[i] = result.statically_masked ? 1 : 0;
                  stats.records[i] = FaultRecord{r.site, r.bit, result.outcome};
                  completed[i] = 1;
                  progress.Tick(static_cast<std::size_t>(result.outcome));
                });
    if (options.on_progress) {
      double batch_persist_seconds = 0;
      {
        const obs::TimedSection timed("store", "persist-progress", "campaign.persist.us",
                                      &batch_persist_seconds);
        options.on_progress(stats.records, completed);
      }
      stats.perf.persist_seconds += batch_persist_seconds;
    }
  }
  stats.perf.inject_seconds = inject_timed.Stop() - stats.perf.persist_seconds;
  progress.Finish();

  // Count completed indices only: in a shard run the records outside this
  // shard's window are default-initialized placeholders, not outcomes. A
  // full campaign has every index complete here, so nothing changes for it.
  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (completed[i] == 0) continue;
    stats.counts[static_cast<int>(stats.records[i].outcome)] += 1;
  }
  for (int o = 0; o < kNumOutcomes; ++o) {
    if (stats.counts[o] != 0) {
      obs::GetCounter(std::string("campaign.outcome.") +
                      std::string(OutcomeName(static_cast<Outcome>(o))))
          .Add(stats.counts[o]);
    }
  }
  for (const std::uint32_t i : pending) {
    if (statically_masked[i] != 0) {
      stats.perf.statically_masked_runs += 1;
    } else if (resumed_from[i] > 0) {
      stats.perf.checkpointed_runs += 1;
      stats.perf.skipped_instructions += resumed_from[i];
    } else {
      stats.perf.full_runs += 1;
    }
  }
  return stats;
}

}  // namespace epvf::fi
