#include "fi/campaign.h"

#include <algorithm>
#include <stdexcept>

#include "support/thread_pool.h"

namespace epvf::fi {

std::uint64_t CampaignStats::Total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  return total;
}

double CampaignStats::Rate(Outcome outcome) const {
  const std::uint64_t total = Total();
  return total == 0 ? 0.0
                    : static_cast<double>(Count(outcome)) / static_cast<double>(total);
}

ProportionCI CampaignStats::CI(Outcome outcome) const {
  return BinomialCI95(Count(outcome), Total());
}

std::uint64_t CampaignStats::CrashCount() const {
  return Count(Outcome::kCrashSegFault) + Count(Outcome::kCrashAbort) +
         Count(Outcome::kCrashMisaligned) + Count(Outcome::kCrashArithmetic);
}

double CampaignStats::CrashRate() const {
  const std::uint64_t total = Total();
  return total == 0 ? 0.0 : static_cast<double>(CrashCount()) / static_cast<double>(total);
}

ProportionCI CampaignStats::CrashCI() const { return BinomialCI95(CrashCount(), Total()); }

double CampaignStats::CrashShare(Outcome crash_class) const {
  const std::uint64_t crashes = CrashCount();
  return crashes == 0
             ? 0.0
             : static_cast<double>(Count(crash_class)) / static_cast<double>(crashes);
}

CampaignStats RunCampaign(const ir::Module& module, const ddg::Graph& graph,
                          const vm::RunResult& golden, const CampaignOptions& options) {
  const std::vector<FaultSite> sites = EnumerateFaultSites(graph);
  if (sites.empty()) throw std::runtime_error("RunCampaign: no injectable fault sites");

  Injector injector(module, golden, options.injector);
  Rng rng(options.seed);

  // Sample uniformly over the *register-bit* population of the trace: site
  // probability proportional to operand width, bit uniform within the
  // operand. This makes campaign rates directly comparable to the bit-ratio
  // metrics (PVF/ePVF/crash-rate estimates) they are plotted against.
  std::vector<std::uint64_t> cumulative_bits(sites.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    running += sites[i].width;
    cumulative_bits[i] = running;
  }

  // Pre-draw every run from the seed so outcomes are identical regardless of
  // how many workers execute them.
  struct PlannedRun {
    FaultSite site;
    std::uint8_t bit;
    mem::LayoutJitter jitter;
  };
  std::vector<PlannedRun> plan;
  plan.reserve(static_cast<std::size_t>(options.num_runs));
  for (int i = 0; i < options.num_runs; ++i) {
    const std::uint64_t r = rng.Below(running);
    const std::size_t index = static_cast<std::size_t>(
        std::upper_bound(cumulative_bits.begin(), cumulative_bits.end(), r) -
        cumulative_bits.begin());
    const FaultSite& site = sites[index];
    const auto bit = static_cast<std::uint8_t>(rng.Below(site.width));
    plan.push_back(PlannedRun{site, bit, injector.DrawJitter(rng)});
  }

  CampaignStats stats;
  stats.records.resize(plan.size());
  // Dynamically scheduled on the shared pool, one run per task: runs that
  // crash (or trap early) finish far sooner than benign runs that execute to
  // completion, so a free worker immediately claims the next planned run
  // instead of idling behind a statically chunked tail. Grain 1 is right
  // here — each task is a whole program execution, dwarfing the scheduling
  // atomics. This also removes the old static-chunk hazard where
  // plan.size() < workers produced zero-width ranges. Records land at their
  // plan index, so outcomes are bit-identical for every thread count.
  ParallelFor(0, plan.size(), ParallelOptions{.jobs = options.num_threads, .grain = 1},
              [&](std::size_t i) {
                const PlannedRun& r = plan[i];
                const auto result = injector.Inject(r.site, r.bit, r.jitter);
                stats.records[i] = FaultRecord{r.site, r.bit, result.outcome};
              });

  for (const FaultRecord& record : stats.records) {
    stats.counts[static_cast<int>(record.outcome)] += 1;
  }
  return stats;
}

}  // namespace epvf::fi
