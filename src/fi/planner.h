// Statistical campaign planner: stratified sampling with Neyman allocation
// and per-stratum early stopping (the two-level-model direction of Hari et
// al., PAPERS.md, using the ePVF crash-bit prediction as the auxiliary
// variable).
//
// The fault-site space is partitioned into strata keyed by instruction class,
// the analytical model's crash-bit status, and backward-slice depth. Each
// round allocates a fixed batch across the live strata Neyman-style
// (proportional to stratum bit-weight x estimated outcome standard
// deviation), draws the stratum's runs from its own persistent seeded RNG
// stream, and — after the batch's outcomes commit — retires every stratum
// whose posterior Wilson CI half-width has fallen below the target. The
// posterior blends `model_prior` pseudo-counts at the model-predicted rate
// into the real counts, so strata the model is confidently right about
// (non-ACE = masked, crash-heavy = crash) retire after a handful of
// confirming samples while budget concentrates on the uncertain SDC-prone
// strata; contradicting samples move the posterior and keep the stratum
// alive. Final SDC/crash estimates are stratum-weighted composites over the
// real counts only — pseudo-counts decide where to spend injections, never
// what to report — so they stay unbiased even where the model is wrong.
//
// Everything is deterministic given (seed, options, analysis artifacts): the
// round-r queue is a pure function of the committed outcomes of rounds
// 0..r-1, so shard workers regenerate it independently, and a persisted
// record log replays into the identical planner state (store's epvf-plan-v1).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "crash/propagation.h"
#include "ddg/ace.h"
#include "ddg/graph.h"
#include "fi/campaign.h"
#include "fi/injector.h"
#include "support/rng.h"

namespace epvf::obs {
class ProgressReporter;
}

namespace epvf::fi {

struct StratifiedOptions {
  /// Target 95% CI half-width; a stratum retires when both its SDC and crash
  /// posterior half-widths are at or below this.
  double ci_target = 0.05;
  /// Hard cap on total injections (0 = run until every stratum retires).
  std::uint32_t max_runs = 0;
  /// Injections per round (0 = auto: max(64, 4 x strata)).
  std::uint32_t round_size = 0;
  /// Pseudo-count strength of the analytical prior per stratum.
  double model_prior = 32.0;
  /// Real samples a stratum must accumulate before it may retire — the
  /// "confirming samples" floor that keeps a wrong model from retiring a
  /// stratum on pseudo-counts alone.
  std::uint32_t min_per_stratum = 8;
};

/// One planned injection of a round queue.
struct PlannedInjection {
  FaultSite site;
  std::uint8_t bit = 0;
  std::uint32_t stratum = 0;
  mem::LayoutJitter jitter;
};

/// A rate with its 95% half-width.
struct RateEstimate {
  double rate = 0.0;
  double half_width = 0.0;
};

struct StratumState {
  std::string name;                           ///< e.g. "mem/crash-heavy/deep"
  std::vector<std::uint32_t> sites;           ///< indices into the planner's site table
  std::vector<std::uint64_t> cumulative_bits; ///< per-site prefix widths, for draws
  std::uint64_t total_bits = 0;
  double weight = 0.0;       ///< total_bits / population bits (sums to 1)
  double prior_sdc = 0.0;    ///< model-predicted SDC probability
  double prior_crash = 0.0;  ///< model-predicted crash probability

  std::uint64_t runs = 0;  ///< committed real samples
  std::uint64_t sdc = 0;
  std::uint64_t crashes = 0;
  std::array<std::uint64_t, kNumOutcomes> counts{};
  bool retired = false;
  std::uint32_t retired_round = kNeverRetired;
  Rng rng;  ///< persistent draw stream, seeded from (campaign seed, stratum)

  static constexpr std::uint32_t kNeverRetired = 0xFFFFFFFFu;
};

class CampaignPlanner {
 public:
  /// `injector` supplies the jitter draw policy and the scenario; the planner
  /// only reads it. Register scenario: strata are built over
  /// EnumerateFaultSites(graph). Memory scenario: over the injector's
  /// attached MemoryScenario sites, keyed by dwell depth (see
  /// BuildMemoryStrata). Empty strata are dropped, so the kept strata are a
  /// disjoint cover of the site space.
  CampaignPlanner(const ddg::Graph& graph, const ddg::AceResult& ace,
                  const crash::CrashBits& crash_bits, const Injector& injector,
                  std::uint64_t seed, StratifiedOptions options);

  /// True when every stratum retired or max_runs is exhausted.
  [[nodiscard]] bool Done() const;

  /// Deterministic queue for the next round: strata in index order, each
  /// stratum's draws consecutive from its own RNG stream. Throws if a round
  /// is already open or the planner is Done().
  [[nodiscard]] std::vector<PlannedInjection> BeginRound();

  /// Commits the open round's outcomes (in queue order; sites/bits must match
  /// the queue — throws on mismatch) and runs the retirement sweep.
  void CommitRound(std::span<const FaultRecord> records);

  /// Neyman allocation of `budget` across the live strata: proportional to
  /// weight x posterior outcome standard deviation (floored so starved strata
  /// keep making progress), rounded by largest remainder so the parts sum to
  /// `budget` exactly. Retired strata get zero.
  [[nodiscard]] std::vector<std::uint32_t> Allocate(std::uint32_t budget) const;

  [[nodiscard]] std::uint32_t EffectiveRoundSize() const;
  [[nodiscard]] const std::vector<StratumState>& strata() const { return strata_; }
  [[nodiscard]] const std::vector<FaultSite>& sites() const { return sites_; }
  [[nodiscard]] const StratifiedOptions& options() const { return options_; }
  [[nodiscard]] std::uint32_t RoundsCommitted() const {
    return static_cast<std::uint32_t>(round_sizes_.size());
  }
  [[nodiscard]] const std::vector<std::uint32_t>& round_sizes() const { return round_sizes_; }
  /// All committed records, in commit order (concatenated round queues).
  [[nodiscard]] const std::vector<FaultRecord>& records() const { return records_; }
  [[nodiscard]] std::uint64_t TotalRuns() const { return records_.size(); }
  [[nodiscard]] std::size_t LiveStrata() const;
  /// Widest posterior half-width (max over SDC/crash) among live strata;
  /// 0 when everything retired.
  [[nodiscard]] double WidestHalfWidth() const;

  /// Posterior per-stratum estimates (real counts + model pseudo-counts).
  [[nodiscard]] RateEstimate StratumSdc(std::size_t h) const;
  [[nodiscard]] RateEstimate StratumCrash(std::size_t h) const;

  /// Composite stratum-weighted estimates: rate = sum W_h p_h, half-width =
  /// z * sqrt(sum W_h^2 p_h(1-p_h)/trials_h) over the *real* counts — the
  /// model prior steers allocation and stopping but is kept out of the
  /// headline rates, so these are the unbiased classic stratified estimators
  /// (a stratum with zero real samples falls back to its model prediction).
  [[nodiscard]] RateEstimate SdcEstimate() const;
  [[nodiscard]] RateEstimate CrashEstimate() const;

  /// Committed records folded into the ordinary campaign statistics shape.
  [[nodiscard]] CampaignStats Stats() const;

  /// Whether a persisted record can stand in for a planned injection.
  [[nodiscard]] static bool Matches(const PlannedInjection& run, const FaultRecord& record) {
    return record.site.dyn_index == run.site.dyn_index && record.site.slot == run.site.slot &&
           record.bit == run.bit;
  }

 private:
  void RetireSweep(std::uint32_t round);
  /// Memory scenario: strata over the injector's MemoryScenario site table —
  /// consumed sites keyed by log-spaced dwell-depth buckets, plus one stratum
  /// of overwritten (deterministically benign) bytes. Within-stratum draws
  /// are dwell-weighted, mirroring the uniform memory campaign.
  void BuildMemoryStrata(const ddg::AceResult& ace, const crash::CrashBits& crash_bits,
                         std::uint64_t seed);
  [[nodiscard]] RateEstimate Composite(bool crash) const;

  const Injector& injector_;
  StratifiedOptions options_;
  std::vector<FaultSite> sites_;
  std::vector<StratumState> strata_;
  std::vector<std::uint32_t> round_sizes_;
  std::vector<FaultRecord> records_;
  std::vector<PlannedInjection> open_round_;
  bool round_open_ = false;
};

/// Result of replaying a persisted record log into a fresh planner.
struct PlanReplay {
  /// False when the log contradicts the regenerated plan (different seed,
  /// options, or analysis) — the caller must discard the artifact and rebuild
  /// the planner from scratch, mirroring the campaign resume contract.
  bool consistent = false;
  std::uint64_t resumed_runs = 0;
  /// When the log ends mid-round: the regenerated open-round queue plus the
  /// full-length records/completed vectors holding the finished prefix. The
  /// caller executes the holes and commits. Empty when every round committed.
  std::vector<PlannedInjection> pending_queue;
  std::vector<FaultRecord> pending_records;
  std::vector<std::uint8_t> pending_completed;
};

/// Replays `round_sizes`/`records`/`completed` (the epvf-plan-v1 payload)
/// through `planner`, which must be freshly constructed. Fully completed
/// rounds are validated against the regenerated queues and committed; a
/// partial final round is returned as pending work. On any mismatch the
/// replay stops and `consistent` is false — the planner is then in an
/// unspecified replayed state and must be rebuilt.
[[nodiscard]] PlanReplay ReplayPlan(CampaignPlanner& planner,
                                    std::span<const std::uint32_t> round_sizes,
                                    std::span<const FaultRecord> records,
                                    std::span<const std::uint8_t> completed);

/// Options for executing one round queue (or a shard slice of it).
struct ExecuteOptions {
  int num_threads = 0;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// Full-length resume vectors for the queue (empty = nothing done yet).
  std::span<const FaultRecord> resume_records = {};
  std::span<const std::uint8_t> resume_completed = {};
  /// Batched persistence hook, RunCampaign-style: called with the full-length
  /// records/completed vectors after every `progress_interval` runs.
  std::function<void(const std::vector<FaultRecord>&, const std::vector<std::uint8_t>&)>
      on_progress;
  std::uint64_t progress_interval = 0;
  /// Optional externally owned reporter ticked once per run by outcome.
  obs::ProgressReporter* progress = nullptr;
};

struct ExecuteResult {
  std::vector<FaultRecord> records;     ///< full queue length
  std::vector<std::uint8_t> completed;  ///< 1 = executed or adopted from resume
};

/// Executes the shard window of `queue` on `injector` (which may have suffix
/// checkpoints loaded — runs are then executed in site order for snapshot
/// locality, landing at their queue index). Deterministic per record at every
/// thread count, shard geometry, and engine.
[[nodiscard]] ExecuteResult ExecutePlannedRuns(Injector& injector,
                                               std::span<const PlannedInjection> queue,
                                               const ExecuteOptions& options);

}  // namespace epvf::fi
