// Fault-scenario selection: what resource a campaign's flips land in.
//
// kRegister is the paper's model (LLFI-style source-register flips).
// kMemory is the memory-resident extension (Jaulmes et al.): flips land in
// simulated heap/stack/data pages, sites are weighted by how long the
// corrupted byte dwells before a load consumes it, and bytes overwritten
// before any consuming load are classified benign without execution
// (delayed error reporting).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace epvf::fi {

enum class Scenario : std::uint8_t {
  kRegister = 0,
  kMemory = 1,
};

[[nodiscard]] constexpr std::string_view ScenarioName(Scenario scenario) {
  return scenario == Scenario::kMemory ? "memory" : "register";
}

[[nodiscard]] inline std::optional<Scenario> ParseScenario(std::string_view name) {
  if (name == "register") return Scenario::kRegister;
  if (name == "memory") return Scenario::kMemory;
  return std::nullopt;
}

}  // namespace epvf::fi
