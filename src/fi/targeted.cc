#include "fi/targeted.h"

#include <unordered_map>

#include "support/bits.h"

namespace epvf::fi {

RecallStats MeasureRecall(const CampaignStats& campaign, const crash::CrashBits& crash_bits) {
  RecallStats stats;
  for (const FaultRecord& record : campaign.records) {
    if (!IsCrash(record.outcome)) continue;
    ++stats.crash_runs;
    if (crash_bits.IsCrashBit(record.site.node, record.bit)) ++stats.predicted;
  }
  return stats;
}

PrecisionStats MeasurePrecision(Injector& injector, const ddg::Graph& graph,
                                const crash::CrashBits& crash_bits,
                                const PrecisionOptions& options) {
  PrecisionStats stats;

  // Predicted-crash-bit population: every (node, bit) in the crash-bit list.
  // Each is injected at the node's use *on the address slice* — the use whose
  // consumer propagated the range constraint (the paper's targeted experiment
  // specifies "the dynamic instruction and the register to inject into" from
  // the CRASHING_BIT_LIST context). Falling back to the first use otherwise.
  const std::vector<FaultSite> sites = EnumerateFaultSites(graph);
  std::unordered_map<ddg::NodeId, const FaultSite*> first_use;
  first_use.reserve(sites.size());
  for (const FaultSite& site : sites) {
    const auto [it, inserted] = first_use.try_emplace(site.node, &site);
    if (inserted) continue;
    // Prefer the earliest use whose consumer is itself range-constrained
    // (i.e. lies on an address backward slice) or is a memory access.
    auto on_slice = [&](const FaultSite& s) {
      const ddg::DynInstr& d = graph.GetDyn(s.dyn_index);
      const ir::Instruction& inst = graph.InstructionOf(d);
      if (inst.AddressOperandSlot() == static_cast<int>(s.slot)) return true;
      return d.result_node != ddg::kNoNode &&
             !crash_bits.allowed[d.result_node].IsFull();
    };
    if (!on_slice(*it->second) && on_slice(site)) it->second = &site;
  }

  struct Entry {
    const FaultSite* site;
    std::uint64_t mask;
  };
  std::vector<Entry> entries;
  std::uint64_t total_bits = 0;
  for (const auto& [node, site] : first_use) {
    const std::uint64_t mask = crash_bits.crash_mask[node] & LowMask(site->width);
    if (mask == 0) continue;
    entries.push_back(Entry{site, mask});
    total_bits += PopCount(mask);
  }
  if (entries.empty() || total_bits == 0) return stats;

  Rng rng(options.seed);
  for (int i = 0; i < options.num_samples; ++i) {
    // Pick the r-th predicted crash bit uniformly over the whole population.
    std::uint64_t r = rng.Below(total_bits);
    const Entry* chosen = nullptr;
    for (const Entry& entry : entries) {
      const std::uint64_t n = PopCount(entry.mask);
      if (r < n) {
        chosen = &entry;
        break;
      }
      r -= n;
    }
    if (chosen == nullptr) chosen = &entries.back();
    // The r-th set bit of the chosen mask.
    std::uint64_t mask = chosen->mask;
    std::uint8_t bit = 0;
    for (std::uint64_t seen = 0;; ++bit) {
      if ((mask >> bit) & 1u) {
        if (seen == r) break;
        ++seen;
      }
    }
    const auto result = injector.Inject(*chosen->site, bit);
    ++stats.injections;
    if (IsCrash(result.outcome)) ++stats.crashed;
  }
  return stats;
}

}  // namespace epvf::fi
