// The fault injector — LLFI's role in the paper (section IV-A).
//
// Runs a module once with a single-bit FaultPlan and classifies the outcome
// against a golden run. Injection sites are sampled the way LLFI samples
// them: a uniformly random executed dynamic instruction, a uniformly random
// *register* source operand of it, a uniformly random bit of that operand —
// so every fault is activated. Optional per-run layout jitter reproduces the
// environment nondeterminism between profiling and injected runs that the
// paper identifies as its main accuracy loss.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include <memory>

#include "ddg/graph.h"
#include "fi/outcome.h"
#include "fi/scenario.h"
#include "ir/module.h"
#include "support/rng.h"
#include "vm/fault_plan.h"
#include "vm/interpreter.h"

namespace epvf::fi {

class MemoryScenario;

/// One injectable site: a register operand of a dynamic instruction.
struct FaultSite {
  std::uint32_t dyn_index = 0;
  std::uint8_t slot = 0;
  std::uint8_t width = 0;           ///< operand bit width (bounds the bit choice)
  ddg::NodeId node = ddg::kNoNode;  ///< DDG node of the operand's producing def
};

/// The full list of injectable sites of a golden run, derived from its DDG.
/// For phi instructions only the taken incoming slot is injectable (the other
/// incoming registers are not read).
[[nodiscard]] std::vector<FaultSite> EnumerateFaultSites(const ddg::Graph& graph);

struct InjectorOptions {
  std::string entry = "main";
  mem::MemoryLayout layout;
  /// Hang threshold: budget = golden instruction count * hang_factor.
  double hang_factor = 10.0;
  /// Max pages of per-run random segment-base jitter (0 = deterministic).
  std::uint32_t jitter_pages = 0;
  /// Adjacent bits flipped per injection (1 = single-bit, the paper's primary
  /// fault model; >1 = the section II-E multi-bit extension).
  std::uint8_t burst_length = 1;
  /// Execution tier for injected runs and checkpoint replays. Not part of the
  /// campaign's cache identity: tiers are bit-identical by contract, so the
  /// same artifacts serve either engine.
  vm::Engine engine = vm::Engine::kAuto;
  /// What resource flips land in. kMemory requires jitter_pages == 0 (sites
  /// are absolute addresses of the golden layout — any jitter would relocate
  /// them) and an attached MemoryScenario (see AttachMemoryScenario).
  Scenario scenario = Scenario::kRegister;
};

class Injector {
 public:
  /// `golden` must be the completed fault-free run of `module` under the same
  /// layout and entry point.
  Injector(const ir::Module& module, const vm::RunResult& golden, InjectorOptions options);

  struct InjectionResult {
    Outcome outcome = Outcome::kBenign;
    vm::RunResult run;
    /// Dyn index the run started from: 0 = executed from scratch, >0 =
    /// resumed from the checkpoint captured before that instruction.
    std::uint64_t resumed_from = 0;
    /// Memory scenario only: the site's byte is overwritten before any
    /// consuming load, so delayed error reporting classified the flip benign
    /// without executing anything (`run` is then empty).
    bool statically_masked = false;
  };

  /// Executes one injection at (site, bit). `jitter` overrides the per-run
  /// layout jitter (pass std::nullopt to draw from `rng` per the options).
  /// When checkpoints are loaded (BuildCheckpoints) and the effective jitter
  /// is zero, the run resumes from the nearest checkpoint at or before the
  /// site and executes only the suffix — outcomes are bit-identical to a
  /// from-scratch run. Jittered runs diverge from instruction zero, so they
  /// always fall back to full execution.
  [[nodiscard]] InjectionResult Inject(const FaultSite& site, std::uint8_t bit,
                                       std::optional<mem::LayoutJitter> jitter = std::nullopt);

  /// Captures suffix-replay checkpoints with one extra golden replay (no
  /// fault, zero jitter): the full execution state immediately before each
  /// dyn index in `at` (sorted ascending; indices past the trace end are
  /// ignored). The replay is verified against the golden run and the call
  /// throws if it diverges. Returns the number of checkpoints captured. The
  /// store is immutable until the next BuildCheckpoints/ClearCheckpoints, so
  /// concurrent Inject calls may share it.
  std::size_t BuildCheckpoints(std::span<const std::uint64_t> at);
  void ClearCheckpoints() { checkpoints_.clear(); }
  [[nodiscard]] std::size_t NumCheckpoints() const { return checkpoints_.size(); }

  /// Draws a uniformly random jitter allowed by the options.
  [[nodiscard]] mem::LayoutJitter DrawJitter(Rng& rng) const;

  /// Memory scenario: supplies the site table Inject resolves FaultSite keys
  /// against. Must be built from the same golden run's DDG. Required before
  /// the first Inject when options().scenario == kMemory.
  void AttachMemoryScenario(std::shared_ptr<const MemoryScenario> scenario);
  [[nodiscard]] const std::shared_ptr<const MemoryScenario>& memory_scenario() const {
    return memory_scenario_;
  }

  [[nodiscard]] const vm::RunResult& golden() const { return golden_; }
  [[nodiscard]] const InjectorOptions& options() const { return options_; }

 private:
  [[nodiscard]] std::uint64_t HangBudget() const;
  /// Last checkpoint with dyn_index <= dyn, or nullptr.
  [[nodiscard]] const vm::Interpreter::Checkpoint* NearestCheckpoint(std::uint64_t dyn) const;

  const ir::Module& module_;
  const vm::RunResult& golden_;
  InjectorOptions options_;
  Rng jitter_rng_;
  /// One bytecode compile shared by every injected run of the campaign.
  /// Compiled eagerly — Inject is called concurrently from sharded workers.
  std::shared_ptr<const vm::bc::Program> bytecode_;
  std::vector<vm::Interpreter::Checkpoint> checkpoints_;  ///< sorted by dyn_index
  std::shared_ptr<const MemoryScenario> memory_scenario_;
};

}  // namespace epvf::fi
