// The fault injector — LLFI's role in the paper (section IV-A).
//
// Runs a module once with a single-bit FaultPlan and classifies the outcome
// against a golden run. Injection sites are sampled the way LLFI samples
// them: a uniformly random executed dynamic instruction, a uniformly random
// *register* source operand of it, a uniformly random bit of that operand —
// so every fault is activated. Optional per-run layout jitter reproduces the
// environment nondeterminism between profiling and injected runs that the
// paper identifies as its main accuracy loss.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ddg/graph.h"
#include "fi/outcome.h"
#include "ir/module.h"
#include "support/rng.h"
#include "vm/fault_plan.h"
#include "vm/interpreter.h"

namespace epvf::fi {

/// One injectable site: a register operand of a dynamic instruction.
struct FaultSite {
  std::uint32_t dyn_index = 0;
  std::uint8_t slot = 0;
  std::uint8_t width = 0;           ///< operand bit width (bounds the bit choice)
  ddg::NodeId node = ddg::kNoNode;  ///< DDG node of the operand's producing def
};

/// The full list of injectable sites of a golden run, derived from its DDG.
/// For phi instructions only the taken incoming slot is injectable (the other
/// incoming registers are not read).
[[nodiscard]] std::vector<FaultSite> EnumerateFaultSites(const ddg::Graph& graph);

struct InjectorOptions {
  std::string entry = "main";
  mem::MemoryLayout layout;
  /// Hang threshold: budget = golden instruction count * hang_factor.
  double hang_factor = 10.0;
  /// Max pages of per-run random segment-base jitter (0 = deterministic).
  std::uint32_t jitter_pages = 0;
  /// Adjacent bits flipped per injection (1 = single-bit, the paper's primary
  /// fault model; >1 = the section II-E multi-bit extension).
  std::uint8_t burst_length = 1;
};

class Injector {
 public:
  /// `golden` must be the completed fault-free run of `module` under the same
  /// layout and entry point.
  Injector(const ir::Module& module, const vm::RunResult& golden, InjectorOptions options);

  struct InjectionResult {
    Outcome outcome = Outcome::kBenign;
    vm::RunResult run;
  };

  /// Executes one injection at (site, bit). `jitter` overrides the per-run
  /// layout jitter (pass std::nullopt to draw from `rng` per the options).
  [[nodiscard]] InjectionResult Inject(const FaultSite& site, std::uint8_t bit,
                                       std::optional<mem::LayoutJitter> jitter = std::nullopt);

  /// Draws a uniformly random jitter allowed by the options.
  [[nodiscard]] mem::LayoutJitter DrawJitter(Rng& rng) const;

  [[nodiscard]] const vm::RunResult& golden() const { return golden_; }
  [[nodiscard]] const InjectorOptions& options() const { return options_; }

 private:
  const ir::Module& module_;
  const vm::RunResult& golden_;
  InjectorOptions options_;
  Rng jitter_rng_;
};

}  // namespace epvf::fi
