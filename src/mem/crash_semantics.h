// The platform fault-decision logic — the core of the crash model.
//
// This file transcribes Figure 4 of the paper (the Linux x86 page-fault
// handling the authors extracted from kernel sources) into one function used
// in BOTH directions:
//
//   * forward, by the interpreter: given an access, decide whether it
//     succeeds, grows the stack ("case I"), or raises SIGSEGV;
//   * backward, by the crash model's CHECK_BOUNDARY (Algorithm 3): given a
//     memory-map snapshot and ESP, compute the interval of addresses that
//     would NOT fault.
//
// Using one implementation for both guarantees the analytical model and the
// simulated hardware agree by construction on deterministic layouts — the
// residual disagreement measured by the recall/precision experiments then
// comes from the *modeled* effects (cross-segment landings, control-flow
// divergence, layout jitter), exactly the sources the paper reports.
#pragma once

#include <cstdint>

#include "mem/layout.h"
#include "mem/vma.h"
#include "support/interval.h"

namespace epvf::mem {

enum class MemFault : std::uint8_t {
  kNone,
  kSegFault,    ///< Table I "SF"
  kMisaligned,  ///< Table I "MMA"
};

struct AccessDecision {
  MemFault fault = MemFault::kNone;
  /// "case I": access below the stack vma but inside the grow window —
  /// valid, and the stack vma must be extended down to cover it.
  bool grow_stack = false;
  std::uint64_t grow_to = 0;  ///< page-aligned new stack start when grow_stack
};

/// Decides the outcome of an access of `size` bytes at `addr`, mirroring
/// Figure 4:
///   common case — addr inside a vma: OK (alignment still checked);
///   case I      — addr below the stack vma, addr >= esp - grow window, and
///                 growth stays within the 8 MB limit: OK, grow the stack;
///   case II     — anything else: SIGSEGV.
/// Misalignment follows Table I: accesses of 4+ bytes must be 4-byte aligned.
[[nodiscard]] AccessDecision DecideAccess(const MemoryMap& map, std::uint64_t esp,
                                          std::uint64_t addr, unsigned size,
                                          const MemoryLayout& layout);

/// The allowed-address interval for an access of `size` bytes whose observed
/// address is `addr` — Algorithm 3's (min, max). The interval covers the vma
/// containing `addr`; for the stack it is widened downward to the grow
/// window's floor (bounded by the 8 MB limit). Addresses outside the interval
/// are predicted to raise SIGSEGV.
[[nodiscard]] Interval AllowedAddressInterval(const MemoryMap& map, std::uint64_t esp,
                                              std::uint64_t addr, unsigned size,
                                              const MemoryLayout& layout);

/// Whether a misaligned-access trap applies to a `size`-byte access at `addr`.
[[nodiscard]] bool IsMisaligned(std::uint64_t addr, unsigned size);

}  // namespace epvf::mem
