// Process memory layout of the simulated platform.
//
// The crash model is platform-specific by construction (paper section III-D):
// it encodes how Linux on x86 lays out and checks memory segments. These
// constants define our simulated platform's layout — text, data, heap and a
// downward-growing stack with the 8 MB limit and the
// `ESP - 65536 - 128` grow window the paper extracted from the kernel
// sources (Figure 4).
//
// `LayoutJitter` reproduces the run-to-run environment nondeterminism (ASLR,
// allocator drift) that the paper identifies as the main source of its <100%
// recall/precision: fault-injection runs may shift segment bases relative to
// the golden profiling run, so boundary-adjacent predictions can miss.
#pragma once

#include <cstdint>

namespace epvf::mem {

struct MemoryLayout {
  std::uint64_t page_size = 4096;

  std::uint64_t text_base = 0x0000000000400000ull;
  std::uint64_t text_size = 0x10000;

  std::uint64_t data_base = 0x0000000000600000ull;

  std::uint64_t heap_base = 0x0000000010000000ull;
  /// Pages the heap vma extends beyond the top allocation (allocator slack —
  /// glibc keeps a mapped tail). The golden run uses this value; per-run
  /// jitter varies it, modeling non-deterministic allocation, the paper's
  /// stated source of model misses.
  std::uint64_t heap_slack_pages = 2;

  /// Stack occupies [stack_top - initial, stack_top), growing downward.
  std::uint64_t stack_top = 0x00007FFFFFFF0000ull;
  std::uint64_t stack_initial_bytes = 4 * 4096;
  std::uint64_t stack_limit_bytes = 8ull << 20;  ///< RLIMIT_STACK default, 8 MiB

  /// Linux stack auto-grow window below ESP (Figure 4, "case I"):
  /// an access at `addr >= esp - stack_grow_window` extends the stack vma.
  std::uint64_t stack_grow_window = 65536 + 128;
};

/// Per-run shifts applied to segment bases (page-granular). Zero by default:
/// the simulated platform is deterministic unless an experiment opts in.
struct LayoutJitter {
  std::int64_t data_shift_pages = 0;
  std::int64_t heap_shift_pages = 0;
  std::int64_t stack_shift_pages = 0;
  /// Added to MemoryLayout::heap_slack_pages (clamped at zero): the run's
  /// allocator keeps more or fewer mapped tail pages than the profiled run.
  std::int64_t heap_slack_shift_pages = 0;

  [[nodiscard]] bool IsZero() const {
    return data_shift_pages == 0 && heap_shift_pages == 0 && stack_shift_pages == 0 &&
           heap_slack_shift_pages == 0;
  }
};

/// Applies a jitter to a layout, producing the effective per-run layout.
[[nodiscard]] inline MemoryLayout ApplyJitter(const MemoryLayout& base, const LayoutJitter& j) {
  MemoryLayout out = base;
  const auto shift = [&](std::uint64_t v, std::int64_t pages) {
    return v + static_cast<std::uint64_t>(pages * static_cast<std::int64_t>(base.page_size));
  };
  out.data_base = shift(base.data_base, j.data_shift_pages);
  out.heap_base = shift(base.heap_base, j.heap_shift_pages);
  out.stack_top = shift(base.stack_top, j.stack_shift_pages);
  const std::int64_t slack =
      static_cast<std::int64_t>(base.heap_slack_pages) + j.heap_slack_shift_pages;
  out.heap_slack_pages = slack < 0 ? 0 : static_cast<std::uint64_t>(slack);
  return out;
}

}  // namespace epvf::mem
