#include "mem/sim_memory.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace epvf::mem {

SimMemory::SimMemory(const MemoryLayout& base_layout, const LayoutJitter& jitter)
    : layout_(ApplyJitter(base_layout, jitter)) {
  map_.Add(Vma{layout_.text_base, layout_.text_base + layout_.text_size, SegmentKind::kText});
  // Data and heap vmas start one page large and grow with use.
  map_.Add(Vma{layout_.data_base, layout_.data_base + layout_.page_size, SegmentKind::kData});
  map_.Add(Vma{layout_.heap_base, layout_.heap_base + layout_.page_size, SegmentKind::kHeap});
  map_.Add(Vma{layout_.stack_top - layout_.stack_initial_bytes, layout_.stack_top,
               SegmentKind::kStack});
  data_cursor_ = layout_.data_base;
  brk_ = layout_.heap_base;
  esp_ = layout_.stack_top;
}

std::uint64_t SimMemory::AllocateData(std::uint64_t bytes) {
  const std::uint64_t base = (data_cursor_ + 15) & ~std::uint64_t{15};
  data_cursor_ = base + bytes;
  const std::uint64_t vma_end =
      (data_cursor_ + layout_.page_size - 1) & ~(layout_.page_size - 1);
  map_.ExtendUp(SegmentKind::kData, vma_end);
  MaybeSnapshot();
  return base;
}

std::uint64_t SimMemory::Malloc(std::uint64_t bytes) {
  if (bytes == 0) bytes = 1;
  const std::uint64_t base = (brk_ + 15) & ~std::uint64_t{15};
  brk_ = base + bytes;
  bytes_allocated_ += bytes;
  const std::uint64_t vma_end = ((brk_ + layout_.page_size - 1) & ~(layout_.page_size - 1)) +
                                layout_.heap_slack_pages * layout_.page_size;
  map_.ExtendUp(SegmentKind::kHeap, vma_end);
  MaybeSnapshot();
  return base;
}

void SimMemory::Free(std::uint64_t addr) {
  // Freed blocks stay mapped (glibc keeps small blocks on free lists), so
  // the memory map — and therefore the crash model — is unaffected.
  (void)addr;
}

MemFault SimMemory::CheckAccess(std::uint64_t addr, unsigned size) {
  const AccessDecision decision = DecideAccess(map_, esp_, addr, size, layout_);
  if (decision.grow_stack) {
    map_.ExtendDown(SegmentKind::kStack, decision.grow_to);
    MaybeSnapshot();
  }
  return decision.fault;
}

const SimMemory::Page* SimMemory::FindPage(std::uint64_t page_index) const {
  const auto it = pages_.find(page_index);
  return it == pages_.end() ? nullptr : it->second.get();
}

SimMemory::Page& SimMemory::TouchPage(std::uint64_t page_index) {
  std::shared_ptr<Page>& slot = pages_[page_index];
  if (slot == nullptr) {
    slot = std::make_shared<Page>(kPageBytes, std::uint8_t{0});
  } else if (slot.use_count() > 1) {
    // Copy-on-write: the page is shared with a live snapshot (or with other
    // runs restored from one), so clone it before the first local mutation.
    // Safe concurrently: a snapshot always holds its own stable reference, so
    // a page visible to another thread can never read use_count() == 1 here.
    slot = std::make_shared<Page>(*slot);
  }
  return *slot;
}

void SimMemory::FlipBits(std::uint64_t addr, unsigned bit, unsigned count) {
  if (count == 0 || bit >= 8 || bit + count > 8) {
    throw std::invalid_argument("SimMemory::FlipBits: bit range must stay within one byte");
  }
  if (map_.Find(addr) == nullptr) {
    throw std::out_of_range("SimMemory::FlipBits: address is not mapped");
  }
  const std::uint64_t page_index = addr >> kPageBits;
  const std::uint64_t offset = addr & (kPageBytes - 1);
  const auto mask = static_cast<std::uint8_t>(((1u << count) - 1u) << bit);
  TouchPage(page_index)[offset] ^= mask;
}

void SimMemory::ReadBytes(std::uint64_t addr, std::span<std::uint8_t> out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t a = addr + done;
    const std::uint64_t page_index = a >> kPageBits;
    const std::uint64_t offset = a & (kPageBytes - 1);
    const std::size_t chunk =
        std::min<std::size_t>(out.size() - done, static_cast<std::size_t>(kPageBytes - offset));
    if (const Page* page = FindPage(page_index)) {
      std::memcpy(out.data() + done, page->data() + offset, chunk);
    } else {
      std::memset(out.data() + done, 0, chunk);  // untouched memory reads as zero
    }
    done += chunk;
  }
}

void SimMemory::WriteBytes(std::uint64_t addr, std::span<const std::uint8_t> in) {
  std::size_t done = 0;
  while (done < in.size()) {
    const std::uint64_t a = addr + done;
    const std::uint64_t page_index = a >> kPageBits;
    const std::uint64_t offset = a & (kPageBytes - 1);
    const std::size_t chunk =
        std::min<std::size_t>(in.size() - done, static_cast<std::size_t>(kPageBytes - offset));
    std::memcpy(TouchPage(page_index).data() + offset, in.data() + done, chunk);
    done += chunk;
  }
}

std::uint64_t SimMemory::LoadScalar(std::uint64_t addr, unsigned size) const {
  std::uint8_t buf[8] = {};
  if (size > 8) throw std::invalid_argument("LoadScalar: size > 8");
  ReadBytes(addr, std::span<std::uint8_t>(buf, size));
  std::uint64_t v = 0;
  std::memcpy(&v, buf, sizeof v);  // little-endian host assumed (x86 platform model)
  return v;
}

void SimMemory::StoreScalar(std::uint64_t addr, unsigned size, std::uint64_t value) {
  if (size > 8) throw std::invalid_argument("StoreScalar: size > 8");
  std::uint8_t buf[8];
  std::memcpy(buf, &value, sizeof buf);
  WriteBytes(addr, std::span<const std::uint8_t>(buf, size));
}

MemSnapshot SimMemory::TakeSnapshot() const {
  if (record_history_) {
    throw std::logic_error("SimMemory::TakeSnapshot: unsupported while recording map history");
  }
  MemSnapshot snap;
  snap.layout = layout_;
  snap.map = map_;
  snap.pages = pages_;
  snap.data_cursor = data_cursor_;
  snap.brk = brk_;
  snap.esp = esp_;
  snap.bytes_allocated = bytes_allocated_;
  return snap;
}

void SimMemory::RestoreSnapshot(const MemSnapshot& snapshot) {
  if (record_history_) {
    throw std::logic_error("SimMemory::RestoreSnapshot: unsupported while recording map history");
  }
  if (snapshot.layout.text_base != layout_.text_base ||
      snapshot.layout.data_base != layout_.data_base ||
      snapshot.layout.heap_base != layout_.heap_base ||
      snapshot.layout.stack_top != layout_.stack_top) {
    throw std::invalid_argument("SimMemory::RestoreSnapshot: snapshot from a different layout");
  }
  map_ = snapshot.map;
  pages_ = snapshot.pages;
  data_cursor_ = snapshot.data_cursor;
  brk_ = snapshot.brk;
  esp_ = snapshot.esp;
  bytes_allocated_ = snapshot.bytes_allocated;
}

void SimMemory::RecordHistory(bool enable) {
  record_history_ = enable;
  if (enable && history_.empty()) {
    first_recorded_version_ = map_.version();
    history_.push_back(map_);
  }
}

void SimMemory::MaybeSnapshot() {
  if (!record_history_) return;
  // Versions are bumped one at a time by MemoryMap mutations; keep the
  // history dense so Snapshot(version) is an O(1) index.
  while (first_recorded_version_ + history_.size() <= map_.version()) {
    history_.push_back(map_);
  }
}

const MemoryMap& SimMemory::Snapshot(std::uint64_t version) const {
  if (history_.empty() || version < first_recorded_version_ ||
      version >= first_recorded_version_ + history_.size()) {
    throw std::out_of_range("SimMemory::Snapshot: version not recorded");
  }
  return history_[version - first_recorded_version_];
}

}  // namespace epvf::mem
