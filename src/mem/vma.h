// Virtual memory areas and the per-process memory map.
//
// Mirrors the Linux `vma` structures the paper's crash model probes through
// /proc (section III-D "Obtaining the segment boundaries"): an ordered list
// of disjoint [start, end) regions, each tagged with its segment kind. The
// map is versioned: every mutation (heap growth, stack growth) bumps the
// version, which is how the run-time probe associates each load/store with
// the segment boundaries *at the time of that access*.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace epvf::mem {

enum class SegmentKind : std::uint8_t { kText, kData, kHeap, kStack };

[[nodiscard]] std::string_view SegmentKindName(SegmentKind kind);

struct Vma {
  std::uint64_t start = 0;  ///< inclusive
  std::uint64_t end = 0;    ///< exclusive
  SegmentKind kind = SegmentKind::kData;

  [[nodiscard]] bool Contains(std::uint64_t addr) const { return start <= addr && addr < end; }
  [[nodiscard]] std::uint64_t Size() const { return end - start; }
};

class MemoryMap {
 public:
  /// Adds a region; regions must not overlap (checked).
  void Add(Vma vma);

  /// The vma containing `addr`, or nullptr.
  [[nodiscard]] const Vma* Find(std::uint64_t addr) const;

  /// The vma of the given kind (first match), or nullptr.
  [[nodiscard]] const Vma* FindKind(SegmentKind kind) const;

  /// Extends the vma of `kind` so that it covers [new_start, old_end) or
  /// [old_start, new_end). Used for heap brk growth and stack growth.
  void ExtendDown(SegmentKind kind, std::uint64_t new_start);
  void ExtendUp(SegmentKind kind, std::uint64_t new_end);

  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] const std::vector<Vma>& vmas() const { return vmas_; }

  [[nodiscard]] std::string ToString() const;

 private:
  void BumpVersion() { ++version_; }

  std::vector<Vma> vmas_;  ///< kept sorted by start
  std::uint64_t version_ = 0;
};

}  // namespace epvf::mem
