#include "mem/crash_semantics.h"

namespace epvf::mem {

namespace {

std::uint64_t PageFloor(std::uint64_t addr, std::uint64_t page) { return addr & ~(page - 1); }

/// Lowest address the stack may ever grow to: stack_top - 8 MB.
std::uint64_t StackLimitFloor(const MemoryMap& map, const MemoryLayout& layout) {
  const Vma* stack = map.FindKind(SegmentKind::kStack);
  if (stack == nullptr) return 0;
  return stack->end - layout.stack_limit_bytes;
}

/// The grow-window floor of Figure 4: esp - 65536 - 128, clamped to the 8 MB
/// limit. Accesses at or above this (and below the stack vma) grow the stack.
std::uint64_t GrowFloor(const MemoryMap& map, std::uint64_t esp, const MemoryLayout& layout) {
  const std::uint64_t window_floor =
      esp >= layout.stack_grow_window ? esp - layout.stack_grow_window : 0;
  const std::uint64_t limit_floor = StackLimitFloor(map, layout);
  return window_floor > limit_floor ? window_floor : limit_floor;
}

}  // namespace

bool IsMisaligned(std::uint64_t addr, unsigned size) {
  // Table I: "memory accesses not aligned at four bytes". Sub-word accesses
  // are unconstrained, wider accesses must be 4-byte aligned.
  return size >= 4 && (addr & 0x3) != 0;
}

AccessDecision DecideAccess(const MemoryMap& map, std::uint64_t esp, std::uint64_t addr,
                            unsigned size, const MemoryLayout& layout) {
  AccessDecision decision;

  const std::uint64_t last = addr + size - 1;
  const Vma* vma = map.Find(addr);
  const Vma* vma_last = size <= 1 ? vma : map.Find(last);

  const bool fully_mapped = vma != nullptr && vma == vma_last;
  if (!fully_mapped) {
    // Not (fully) inside a vma. Figure 4 case I: within the stack grow
    // window, below the current stack vma, and under the 8 MB limit.
    const Vma* stack = map.FindKind(SegmentKind::kStack);
    const bool below_stack = stack != nullptr && last < stack->start;
    const std::uint64_t grow_floor = GrowFloor(map, esp, layout);
    if (below_stack && addr >= grow_floor) {
      decision.grow_stack = true;
      decision.grow_to = PageFloor(addr, layout.page_size);
    } else {
      decision.fault = MemFault::kSegFault;  // Figure 4 case II
      return decision;
    }
  }

  if (IsMisaligned(addr, size)) {
    decision.fault = MemFault::kMisaligned;
    decision.grow_stack = false;
  }
  return decision;
}

Interval AllowedAddressInterval(const MemoryMap& map, std::uint64_t esp, std::uint64_t addr,
                                unsigned size, const MemoryLayout& layout) {
  const Vma* vma = map.Find(addr);
  if (vma == nullptr) return Interval::Empty();

  std::uint64_t lo = vma->start;
  // vma->end is exclusive and the access spans `size` bytes, so the last
  // allowed start address keeps the whole access inside the region.
  std::uint64_t hi = vma->end - size;

  if (vma->kind == SegmentKind::kStack) {
    // The stack's effective lower bound is the grow window, not vma_start:
    // accesses below vma_start but above esp - 65536 - 128 grow the stack
    // instead of faulting (Figure 4 case I / Algorithm 3 lines 6-10).
    const std::uint64_t grow_floor = GrowFloor(map, esp, layout);
    if (grow_floor < lo) lo = grow_floor;
  }
  if (lo > hi) return Interval::Empty();
  return Interval{lo, hi};
}

}  // namespace epvf::mem
