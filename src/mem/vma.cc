#include "mem/vma.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace epvf::mem {

std::string_view SegmentKindName(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kText: return "text";
    case SegmentKind::kData: return "data";
    case SegmentKind::kHeap: return "heap";
    case SegmentKind::kStack: return "stack";
  }
  return "<bad>";
}

void MemoryMap::Add(Vma vma) {
  if (vma.start >= vma.end) throw std::invalid_argument("MemoryMap::Add: empty vma");
  for (const Vma& existing : vmas_) {
    const bool disjoint = vma.end <= existing.start || existing.end <= vma.start;
    if (!disjoint) throw std::invalid_argument("MemoryMap::Add: overlapping vma");
  }
  vmas_.push_back(vma);
  std::sort(vmas_.begin(), vmas_.end(),
            [](const Vma& a, const Vma& b) { return a.start < b.start; });
  BumpVersion();
}

const Vma* MemoryMap::Find(std::uint64_t addr) const {
  // Binary search over the sorted vma list, as the kernel's rbtree lookup.
  auto it = std::upper_bound(vmas_.begin(), vmas_.end(), addr,
                             [](std::uint64_t a, const Vma& v) { return a < v.start; });
  if (it == vmas_.begin()) return nullptr;
  --it;
  return it->Contains(addr) ? &*it : nullptr;
}

const Vma* MemoryMap::FindKind(SegmentKind kind) const {
  for (const Vma& v : vmas_) {
    if (v.kind == kind) return &v;
  }
  return nullptr;
}

void MemoryMap::ExtendDown(SegmentKind kind, std::uint64_t new_start) {
  for (Vma& v : vmas_) {
    if (v.kind != kind) continue;
    if (new_start < v.start) {
      v.start = new_start;
      BumpVersion();
    }
    return;
  }
  throw std::logic_error("MemoryMap::ExtendDown: no vma of requested kind");
}

void MemoryMap::ExtendUp(SegmentKind kind, std::uint64_t new_end) {
  for (Vma& v : vmas_) {
    if (v.kind != kind) continue;
    if (new_end > v.end) {
      v.end = new_end;
      BumpVersion();
    }
    return;
  }
  throw std::logic_error("MemoryMap::ExtendUp: no vma of requested kind");
}

std::string MemoryMap::ToString() const {
  std::ostringstream os;
  os << std::hex;
  for (const Vma& v : vmas_) {
    os << "0x" << v.start << "-0x" << v.end << ' ' << SegmentKindName(v.kind) << '\n';
  }
  return os.str();
}

}  // namespace epvf::mem
