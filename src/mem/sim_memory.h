// SimMemory: the simulated process address space.
//
// Backs the interpreter with a sparse paged byte store laid out per
// MemoryLayout, and owns the MemoryMap against which every access is checked
// through the Figure 4 decision logic. It also records the memory-map
// history: the golden (profiling) run snapshots the map at every version
// bump, which is this implementation's equivalent of the paper's
// "/proc probe at each load and store" — CHECK_BOUNDARY later replays the
// snapshot that was current at the time of the access.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "mem/crash_semantics.h"
#include "mem/layout.h"
#include "mem/vma.h"

namespace epvf::mem {

/// One copy-on-write snapshot of a SimMemory: the memory map, the allocation
/// cursors, and a shared reference to every data page live at snapshot time.
/// Pages are never mutated through a snapshot — a SimMemory restored from one
/// clones a page on its first write — so snapshots are cheap to take, hold,
/// and restore regardless of the memory footprint, and one snapshot can seed
/// any number of concurrent runs.
struct MemSnapshot {
  MemoryLayout layout;  ///< identifies the (jittered) layout the pages belong to
  MemoryMap map;
  std::unordered_map<std::uint64_t, std::shared_ptr<std::vector<std::uint8_t>>> pages;
  std::uint64_t data_cursor = 0;
  std::uint64_t brk = 0;
  std::uint64_t esp = 0;
  std::uint64_t bytes_allocated = 0;
};

class SimMemory {
 public:
  explicit SimMemory(const MemoryLayout& layout = MemoryLayout{},
                     const LayoutJitter& jitter = LayoutJitter{});

  // --- setup ----------------------------------------------------------------
  /// Reserves `bytes` in the data segment; returns the base address.
  std::uint64_t AllocateData(std::uint64_t bytes);

  // --- heap -------------------------------------------------------------------
  /// Bump allocation with 16-byte alignment; extends the heap vma to the next
  /// page boundary. Returns the block's base address.
  std::uint64_t Malloc(std::uint64_t bytes);
  /// Free is a no-op on the vma (matching glibc behaviour for small blocks:
  /// freed memory stays mapped), but is tracked for accounting.
  void Free(std::uint64_t addr);

  // --- stack ----------------------------------------------------------------
  [[nodiscard]] std::uint64_t esp() const { return esp_; }
  void SetEsp(std::uint64_t esp) { esp_ = esp; }
  [[nodiscard]] std::uint64_t stack_top() const { return layout_.stack_top; }

  // --- checked access ----------------------------------------------------------
  /// Applies the Figure 4 decision for an access; on "case I" grows the stack
  /// vma (bumping the map version). Returns the fault, kNone if allowed.
  MemFault CheckAccess(std::uint64_t addr, unsigned size);

  // --- fault injection --------------------------------------------------------
  /// XORs bits [bit, bit + count) of the byte at `addr` — the memory-resident
  /// fault primitive. The query against the map is passive (a flip must never
  /// grow the stack vma the way a checked access can), and `addr` must lie
  /// inside a mapped vma: flipping a never-mapped address throws
  /// std::out_of_range. The flip goes through the copy-on-write path, so a
  /// page shared with a live snapshot is cloned first and the snapshot's copy
  /// stays pristine.
  void FlipBits(std::uint64_t addr, unsigned bit, unsigned count);

  // --- raw data access (no checking; call CheckAccess first) -----------------
  void ReadBytes(std::uint64_t addr, std::span<std::uint8_t> out) const;
  void WriteBytes(std::uint64_t addr, std::span<const std::uint8_t> in);
  [[nodiscard]] std::uint64_t LoadScalar(std::uint64_t addr, unsigned size) const;
  void StoreScalar(std::uint64_t addr, unsigned size, std::uint64_t value);

  // --- map & probes ---------------------------------------------------------
  [[nodiscard]] const MemoryMap& map() const { return map_; }
  [[nodiscard]] const MemoryLayout& layout() const { return layout_; }

  /// When enabled, every map version is snapshotted (golden runs only).
  void RecordHistory(bool enable);
  /// Snapshot whose version is `version` (versions are dense from the first
  /// recorded one). Requires RecordHistory(true) from construction time.
  [[nodiscard]] const MemoryMap& Snapshot(std::uint64_t version) const;
  [[nodiscard]] bool HasSnapshots() const { return !history_.empty(); }

  // --- checkpoint / restore -------------------------------------------------
  /// Captures the full mutable state as a copy-on-write snapshot. O(pages) in
  /// shared_ptr copies, no byte copying. Not available while recording map
  /// history (snapshots are a replay-run mechanism; the golden profiling run
  /// records history instead).
  [[nodiscard]] MemSnapshot TakeSnapshot() const;
  /// Overwrites the mutable state from `snapshot`. Pages become shared with
  /// the snapshot; the first write to each clones it (see TouchPage). The
  /// snapshot must come from a SimMemory with the identical (jittered)
  /// layout.
  void RestoreSnapshot(const MemSnapshot& snapshot);

  [[nodiscard]] std::uint64_t heap_brk() const { return brk_; }
  [[nodiscard]] std::uint64_t bytes_allocated() const { return bytes_allocated_; }

 private:
  void MaybeSnapshot();

  static constexpr std::uint64_t kPageBits = 12;
  static constexpr std::uint64_t kPageBytes = 1ull << kPageBits;
  using Page = std::vector<std::uint8_t>;

  [[nodiscard]] const Page* FindPage(std::uint64_t page_index) const;
  Page& TouchPage(std::uint64_t page_index);

  MemoryLayout layout_;
  MemoryMap map_;
  // Pages are shared with any live MemSnapshot; TouchPage clones a shared
  // page before the first local write (copy-on-write).
  std::unordered_map<std::uint64_t, std::shared_ptr<Page>> pages_;
  std::uint64_t data_cursor_ = 0;
  std::uint64_t brk_ = 0;
  std::uint64_t esp_ = 0;
  std::uint64_t bytes_allocated_ = 0;
  bool record_history_ = false;
  std::uint64_t first_recorded_version_ = 0;
  std::vector<MemoryMap> history_;
};

}  // namespace epvf::mem
