// lulesh — mini Lagrangian shock hydrodynamics proxy (paper Table IV:
// Physics Modelling, 3000 LOC; LLNL's DOE proxy app).
//
// A 1-D staggered-grid Sedov-style hydro step at reduced scale, keeping the
// kernel *structure* of LULESH's time step: force from pressure gradient,
// nodal acceleration/velocity/position updates, element volume recompute
// (with a positive-volume assert — LULESH aborts on negative volume, the
// Table I "A" class), then EOS energy/pressure update. Many small kernels
// over several arrays, like the original.
#include "apps/app.h"
#include "apps/kernel_util.h"

namespace epvf::apps {

App BuildLulesh(const AppConfig& config) {
  const std::int64_t elems = 24 + 24 * std::int64_t{static_cast<unsigned>(config.scale)};
  const std::int64_t nodes = elems + 1;
  const std::int64_t steps = 8;
  App app;
  app.name = "lulesh";
  app.domain = "Physics Modelling";
  app.paper_loc = 3000;

  ir::IRBuilder b(app.module);
  KernelBuilder k(b);
  using ir::FCmpPred;
  using ir::Intrinsic;
  using ir::Type;

  const auto e_init = b.DeclareGlobal(
      "e_init", Type::F64(), static_cast<std::uint64_t>(elems),
      PackF64(RandomF64(static_cast<std::size_t>(elems), config.seed ^ 0x10E, 0.5, 1.5)));

  (void)b.CreateFunction("main", Type::Void(), {});
  const auto x = b.MallocArray(Type::F64(), b.I64(nodes), "x");      // node positions
  const auto xd = b.MallocArray(Type::F64(), b.I64(nodes), "xd");    // node velocities
  const auto force = b.MallocArray(Type::F64(), b.I64(nodes), "f");  // nodal force
  const auto energy = b.MallocArray(Type::F64(), b.I64(elems), "e");
  const auto pressure = b.MallocArray(Type::F64(), b.I64(elems), "p");
  const auto volume = b.MallocArray(Type::F64(), b.I64(elems), "v");

  // Mesh: unit spacing; initial energy deposition from the global table;
  // a pressure spike in element 0 (the Sedov point blast).
  k.For(b.I64(0), b.I64(nodes), [&](ir::ValueRef i) {
    k.StoreAt(x, i, b.SIToFP(i, Type::F64(), "xi"));
    k.StoreAt(xd, i, b.F64(0.0));
  }, "nodes");
  k.For(b.I64(0), b.I64(elems), [&](ir::ValueRef e) {
    k.StoreAt(energy, e, k.LoadAt(b.Global(e_init), e, "e0"));
    k.StoreAt(volume, e, b.F64(1.0));
    k.StoreAt(pressure, e, b.F64(0.0));
  }, "elems");
  k.StoreAt(pressure, b.I64(0), b.F64(2.0));

  const ir::ValueRef dt = b.F64(0.01);
  const double gamma = 1.4;

  k.For(b.I64(0), b.I64(steps), [&](ir::ValueRef) {
    // 1. Nodal force from the pressure gradient (staggered grid).
    k.For(b.I64(0), b.I64(nodes), [&](ir::ValueRef i) {
      const ir::ValueRef left_e =
          b.Select(b.ICmp(ir::ICmpPred::kSgt, i, b.I64(0)), b.Sub(i, b.I64(1)), b.I64(0),
                   "le");
      const ir::ValueRef right_e = b.Select(b.ICmp(ir::ICmpPred::kSlt, i, b.I64(elems)), i,
                                            b.I64(elems - 1), "re");
      const ir::ValueRef pl = k.LoadAt(pressure, left_e, "pl");
      const ir::ValueRef pr = k.LoadAt(pressure, right_e, "pr");
      k.StoreAt(force, i, b.FSub(pl, pr, "fi"));
    }, "force");

    // 2. Integrate nodal motion (unit mass).
    k.For(b.I64(0), b.I64(nodes), [&](ir::ValueRef i) {
      const ir::ValueRef v0 = k.LoadAt(xd, i, "v0");
      const ir::ValueRef v1 =
          b.FAdd(v0, b.FMul(k.LoadAt(force, i, "fa"), dt, "dv"), "v1");
      k.StoreAt(xd, i, v1);
      k.StoreAt(x, i, b.FAdd(k.LoadAt(x, i, "x0"), b.FMul(v1, dt, "dx"), "x1"));
    }, "move");

    // 3. Element volumes; LULESH aborts on non-positive volume.
    k.For(b.I64(0), b.I64(elems), [&](ir::ValueRef e) {
      const ir::ValueRef xl = k.LoadAt(x, e, "xl");
      const ir::ValueRef xr = k.LoadAt(x, b.Add(e, b.I64(1)), "xr");
      const ir::ValueRef vol = b.FSub(xr, xl, "vol");
      (void)b.CallIntrinsic(Intrinsic::kAssert,
                            {b.FCmp(FCmpPred::kOgt, vol, b.F64(0.0), "posvol")});
      k.StoreAt(volume, e, vol);
    }, "vol");

    // 4. EOS update: work done, then p = (gamma - 1) * e / v.
    k.For(b.I64(0), b.I64(elems), [&](ir::ValueRef e) {
      const ir::ValueRef vol = k.LoadAt(volume, e, "ve");
      const ir::ValueRef p_old = k.LoadAt(pressure, e, "pe");
      const ir::ValueRef vl = k.LoadAt(xd, e, "vl");
      const ir::ValueRef vr = k.LoadAt(xd, b.Add(e, b.I64(1)), "vr");
      const ir::ValueRef dvol = b.FMul(b.FSub(vr, vl, "dvel"), dt, "dvol");
      const ir::ValueRef work = b.FMul(p_old, dvol, "work");
      const ir::ValueRef e_new =
          b.FSub(k.LoadAt(energy, e, "ee"), work, "e1");
      k.StoreAt(energy, e, e_new);
      k.StoreAt(pressure, e,
                b.FDiv(b.FMul(b.F64(gamma - 1.0), e_new, "ge"), vol, "p1"));
    }, "eos");
  }, "step");

  // Output energies and final node positions.
  k.For(b.I64(0), b.I64(elems), [&](ir::ValueRef e) { b.Output(k.LoadAt(energy, e, "ef")); },
        "oute");
  k.For(b.I64(0), b.I64(nodes), [&](ir::ValueRef i) { b.Output(k.LoadAt(x, i, "xf")); },
        "outx");
  b.RetVoid();
  return app;
}

}  // namespace epvf::apps
