// The benchmark suite (paper Table IV).
//
// Ten HPC kernels authored in our IR via the builder, reproducing the memory
// and compute access patterns of the Rodinia applications + LULESH the paper
// evaluates (the documented substitution for compiling the C sources with
// LLVM): dense linear algebra (mm, lud), grid DP (pathfinder, nw), stencils
// (hotspot, srad), graph traversal (bfs), clustering (kmeans), n-body within
// boxes (lavaMD), sequential Monte-Carlo (particlefilter) and a mini
// hydrodynamics proxy (lulesh). Sizes scale with AppConfig::scale so tests
// run in milliseconds and benches in seconds.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ir/module.h"

namespace epvf::apps {

struct AppConfig {
  /// Generic size knob; each kernel maps it onto its own dimensions.
  int scale = 1;
  /// Seed for the deterministic pseudo-random input data.
  std::uint64_t seed = 0xC0FFEE;
};

struct App {
  std::string name;
  std::string domain;     ///< Table IV "Domain" column
  int paper_loc = 0;      ///< Table IV "LOC" of the original C source
  ir::Module module;
};

/// All registered benchmark names, in Table IV order.
[[nodiscard]] std::vector<std::string> AppNames();

/// Builds (and verifies) the named benchmark. Throws on unknown names.
[[nodiscard]] App BuildApp(std::string_view name, const AppConfig& config = {});

// Individual builders (one translation unit per kernel).
[[nodiscard]] App BuildLulesh(const AppConfig& config);
[[nodiscard]] App BuildParticleFilter(const AppConfig& config);
[[nodiscard]] App BuildSrad(const AppConfig& config);
[[nodiscard]] App BuildNw(const AppConfig& config);
[[nodiscard]] App BuildHotspot(const AppConfig& config);
[[nodiscard]] App BuildLavaMd(const AppConfig& config);
[[nodiscard]] App BuildBfs(const AppConfig& config);
[[nodiscard]] App BuildLud(const AppConfig& config);
[[nodiscard]] App BuildPathfinder(const AppConfig& config);
[[nodiscard]] App BuildMm(const AppConfig& config);
[[nodiscard]] App BuildKmeans(const AppConfig& config);

}  // namespace epvf::apps
