// lavaMD — particle potentials within neighbor boxes (paper Table IV:
// Molecular Dynamics, 218 LOC).
//
// Simplified to one box pair sweep: for every particle, accumulate the
// exp-kernel interaction with every other particle (positions and charges in
// heap arrays), the inner computation lavaMD performs per neighbor box.
// Heavy on sqrt/exp intrinsics and read-modify-write accumulation.
#include "apps/app.h"
#include "apps/kernel_util.h"

namespace epvf::apps {

App BuildLavaMd(const AppConfig& config) {
  const std::int64_t n = 24 + 16 * std::int64_t{static_cast<unsigned>(config.scale)};
  App app;
  app.name = "lavaMD";
  app.domain = "Molecular Dynamics";
  app.paper_loc = 218;

  ir::IRBuilder b(app.module);
  KernelBuilder k(b);
  using ir::Intrinsic;
  using ir::Type;

  const auto pos = b.DeclareGlobal(
      "pos", Type::F64(), static_cast<std::uint64_t>(n * 3),
      PackF64(RandomF64(static_cast<std::size_t>(n * 3), config.seed ^ 0x1A7A, 0.0, 4.0)));
  const auto charge = b.DeclareGlobal(
      "charge", Type::F64(), static_cast<std::uint64_t>(n),
      PackF64(RandomF64(static_cast<std::size_t>(n), config.seed ^ 0xC4A6, 0.1, 1.0)));

  (void)b.CreateFunction("main", Type::Void(), {});
  const auto x = b.MallocArray(Type::F64(), b.I64(n), "x");
  const auto y = b.MallocArray(Type::F64(), b.I64(n), "y");
  const auto z = b.MallocArray(Type::F64(), b.I64(n), "z");
  const auto potential = b.MallocArray(Type::F64(), b.I64(n), "v");

  k.For(b.I64(0), b.I64(n), [&](ir::ValueRef i) {
    const ir::ValueRef base = b.Mul(i, b.I64(3), "pbase");
    k.StoreAt(x, i, k.LoadAt(b.Global(pos), base, "px"));
    k.StoreAt(y, i, k.LoadAt(b.Global(pos), b.Add(base, b.I64(1)), "py"));
    k.StoreAt(z, i, k.LoadAt(b.Global(pos), b.Add(base, b.I64(2)), "pz"));
    k.StoreAt(potential, i, b.F64(0.0));
  }, "init");

  k.For(b.I64(0), b.I64(n), [&](ir::ValueRef i) {
    const ir::ValueRef xi = k.LoadAt(x, i, "xi");
    const ir::ValueRef yi = k.LoadAt(y, i, "yi");
    const ir::ValueRef zi = k.LoadAt(z, i, "zi");
    const ir::ValueRef acc = k.ForAccum(
        b.I64(0), b.I64(n), b.F64(0.0),
        [&](ir::ValueRef j, ir::ValueRef sum) {
          const ir::ValueRef dx = b.FSub(xi, k.LoadAt(x, j, "xj"), "dx");
          const ir::ValueRef dy = b.FSub(yi, k.LoadAt(y, j, "yj"), "dy");
          const ir::ValueRef dz = b.FSub(zi, k.LoadAt(z, j, "zj"), "dz");
          const ir::ValueRef r2 = b.FAdd(
              b.FAdd(b.FMul(dx, dx), b.FMul(dy, dy)),
              b.FAdd(b.FMul(dz, dz), b.F64(0.5)), "r2");  // softened: no self-singularity
          const ir::ValueRef qj = k.LoadAt(b.Global(charge), j, "qj");
          const ir::ValueRef u2 =
              b.CallIntrinsic(Intrinsic::kExp, {b.FMul(b.F64(-0.5), r2, "mr2")}, "u2");
          const ir::ValueRef rinv =
              b.FDiv(b.F64(1.0), b.CallIntrinsic(Intrinsic::kSqrt, {r2}, "r"), "rinv");
          return b.FAdd(sum, b.FMul(qj, b.FMul(u2, rinv, "kern"), "contrib"), "sum");
        },
        "pair");
    k.StoreAt(potential, i, acc);
  }, "outer");

  k.For(b.I64(0), b.I64(n), [&](ir::ValueRef i) { b.Output(k.LoadAt(potential, i, "vf")); },
        "out");
  b.RetVoid();
  return app;
}

}  // namespace epvf::apps
