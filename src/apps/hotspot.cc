// hotspot — thermal stencil simulation (paper Table IV: Physics Simulation,
// 218 LOC).
//
// Iterative 5-point stencil over an N×N temperature grid with a power-density
// source term, double-buffered through pointer phis; borders clamp. The
// paper's section V notes hotspot is control-flow heavy, which the clamped
// index selects reproduce.
#include "apps/app.h"
#include "apps/kernel_util.h"

namespace epvf::apps {

App BuildHotspot(const AppConfig& config) {
  const std::int64_t n = 12 + 6 * std::int64_t{static_cast<unsigned>(config.scale)};
  const std::int64_t steps = 2 + 2 * std::int64_t{static_cast<unsigned>(config.scale)};
  App app;
  app.name = "hotspot";
  app.domain = "Physics Simulation";
  app.paper_loc = 218;

  ir::IRBuilder b(app.module);
  KernelBuilder k(b);
  using ir::ICmpPred;
  using ir::Type;

  const auto temp_init = b.DeclareGlobal(
      "temp_init", Type::F64(), static_cast<std::uint64_t>(n * n),
      PackF64(RandomF64(static_cast<std::size_t>(n * n), config.seed ^ 0x407, 320.0, 340.0)));
  const auto power = b.DeclareGlobal(
      "power", Type::F64(), static_cast<std::uint64_t>(n * n),
      PackF64(RandomF64(static_cast<std::size_t>(n * n), config.seed ^ 0x90E, 0.0, 0.5)));

  (void)b.CreateFunction("main", Type::Void(), {});
  const auto grid_a = b.MallocArray(Type::F64(), b.I64(n * n), "tA");
  const auto grid_b = b.MallocArray(Type::F64(), b.I64(n * n), "tB");

  k.For(b.I64(0), b.I64(n * n),
        [&](ir::ValueRef i) { k.StoreAt(grid_a, i, k.LoadAt(b.Global(temp_init), i, "t0")); },
        "init");

  const std::uint32_t pre = b.CurrentBlock();
  const std::uint32_t header = b.CreateBlock("step.header");
  const std::uint32_t body = b.CreateBlock("step.body");
  const std::uint32_t latch = b.CreateBlock("step.latch");
  const std::uint32_t exit = b.CreateBlock("step.exit");
  b.Br(header);

  b.SetInsertPoint(header);
  const ir::ValueRef step = b.Phi(Type::I64(), {{b.I64(0), pre}}, "step");
  const ir::ValueRef cur = b.Phi(Type::F64().Ptr(), {{grid_a, pre}}, "cur");
  const ir::ValueRef nxt = b.Phi(Type::F64().Ptr(), {{grid_b, pre}}, "nxt");
  b.CondBr(b.ICmp(ICmpPred::kSlt, step, b.I64(steps), "step.cond"), body, exit);

  b.SetInsertPoint(body);
  const ir::ValueRef coeff = b.F64(0.1);
  const ir::ValueRef cap = b.F64(0.05);
  k.For(b.I64(0), b.I64(n), [&](ir::ValueRef i) {
    k.For(b.I64(0), b.I64(n), [&](ir::ValueRef j) {
      auto clamp = [&](ir::ValueRef v) {
        const ir::ValueRef lo =
            b.Select(b.ICmp(ICmpPred::kSlt, v, b.I64(0)), b.I64(0), v);
        return b.Select(b.ICmp(ICmpPred::kSge, lo, b.I64(n)), b.I64(n - 1), lo, "cl");
      };
      const ir::ValueRef center = k.LoadAt(cur, k.Flat(i, j, n), "tc");
      const ir::ValueRef north = k.LoadAt(cur, k.Flat(clamp(b.Sub(i, b.I64(1))), j, n), "tn");
      const ir::ValueRef south = k.LoadAt(cur, k.Flat(clamp(b.Add(i, b.I64(1))), j, n), "ts");
      const ir::ValueRef west = k.LoadAt(cur, k.Flat(i, clamp(b.Sub(j, b.I64(1))), n), "tw");
      const ir::ValueRef east = k.LoadAt(cur, k.Flat(i, clamp(b.Add(j, b.I64(1))), n), "te");
      const ir::ValueRef p = k.LoadAt(b.Global(power), k.Flat(i, j, n), "p");
      // t' = t + coeff*(n + s + w + e - 4t) + cap*p
      const ir::ValueRef lap = b.FSub(
          b.FAdd(b.FAdd(north, south), b.FAdd(west, east), "nbrs"),
          b.FMul(b.F64(4.0), center), "lap");
      const ir::ValueRef updated = b.FAdd(
          b.FAdd(center, b.FMul(coeff, lap), "diffused"), b.FMul(cap, p), "t1");
      k.StoreAt(nxt, k.Flat(i, j, n), updated);
    }, "sj");
  }, "si");
  b.Br(latch);

  b.SetInsertPoint(latch);
  const ir::ValueRef next_step = b.Add(step, b.I64(1), "step.next");
  b.Br(header);
  b.AddPhiIncoming(step, next_step, latch);
  b.AddPhiIncoming(cur, nxt, latch);
  b.AddPhiIncoming(nxt, cur, latch);

  b.SetInsertPoint(exit);
  k.For(b.I64(0), b.I64(n * n), [&](ir::ValueRef i) { b.Output(k.LoadAt(cur, i, "tf")); },
        "out");
  b.RetVoid();
  return app;
}

}  // namespace epvf::apps
