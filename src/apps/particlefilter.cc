// particlefilter — sequential Monte-Carlo tracking (paper Table IV: Medical
// Imaging, 602 LOC).
//
// Per iteration: Gaussian-likelihood weight update against a drifting
// observation, normalization (with a sanity assert — the paper's Table I "A"
// crash class arises from such self-checks), cumulative distribution, and
// systematic resampling whose CDF search makes loads data dependent.
#include "apps/app.h"
#include "apps/kernel_util.h"

namespace epvf::apps {

App BuildParticleFilter(const AppConfig& config) {
  const std::int64_t n = 64 + 64 * std::int64_t{static_cast<unsigned>(config.scale)};
  const std::int64_t iters = 3;
  App app;
  app.name = "particlefilter";
  app.domain = "Medical Imaging";
  app.paper_loc = 602;

  ir::IRBuilder b(app.module);
  KernelBuilder k(b);
  using ir::FCmpPred;
  using ir::ICmpPred;
  using ir::Intrinsic;
  using ir::Type;

  const auto x_init = b.DeclareGlobal(
      "x_init", Type::F64(), static_cast<std::uint64_t>(n),
      PackF64(RandomF64(static_cast<std::size_t>(n), config.seed ^ 0x9F, -2.0, 2.0)));

  (void)b.CreateFunction("main", Type::Void(), {});
  const auto xs = b.MallocArray(Type::F64(), b.I64(n), "xs");
  const auto weights = b.MallocArray(Type::F64(), b.I64(n), "w");
  const auto cdf = b.MallocArray(Type::F64(), b.I64(n), "cdf");
  const auto xs_new = b.MallocArray(Type::F64(), b.I64(n), "xs2");

  k.For(b.I64(0), b.I64(n),
        [&](ir::ValueRef i) { k.StoreAt(xs, i, k.LoadAt(b.Global(x_init), i, "x0")); },
        "init");

  k.For(b.I64(0), b.I64(iters), [&](ir::ValueRef t) {
    // Observation drifts each iteration.
    const ir::ValueRef obs =
        b.FMul(b.SIToFP(t, Type::F64(), "tf"), b.F64(0.25), "obs");

    // Weight update: w[i] = exp(-(x[i]-obs)^2).
    k.For(b.I64(0), b.I64(n), [&](ir::ValueRef i) {
      const ir::ValueRef xi = k.LoadAt(xs, i, "xi");
      const ir::ValueRef d = b.FSub(xi, obs, "d");
      k.StoreAt(weights, i,
                b.CallIntrinsic(Intrinsic::kExp,
                                {b.FMul(b.F64(-1.0), b.FMul(d, d, "d2"), "nd2")}, "wi"));
    }, "wup");

    // Normalize; a degenerate weight sum is a self-detected failure.
    const ir::ValueRef sum = k.ForAccum(
        b.I64(0), b.I64(n), b.F64(0.0),
        [&](ir::ValueRef i, ir::ValueRef acc) { return b.FAdd(acc, k.LoadAt(weights, i, "wv")); },
        "wsum");
    (void)b.CallIntrinsic(Intrinsic::kAssert,
                          {b.FCmp(FCmpPred::kOgt, sum, b.F64(0.0), "possum")});
    k.For(b.I64(0), b.I64(n), [&](ir::ValueRef i) {
      k.StoreAt(weights, i, b.FDiv(k.LoadAt(weights, i, "wn"), sum, "wnorm"));
    }, "norm");

    // Cumulative distribution.
    (void)k.ForAccum(
        b.I64(0), b.I64(n), b.F64(0.0),
        [&](ir::ValueRef i, ir::ValueRef acc) {
          const ir::ValueRef next = b.FAdd(acc, k.LoadAt(weights, i, "wc"), "run");
          k.StoreAt(cdf, i, next);
          return next;
        },
        "cum");

    // Systematic resampling: for each slot, linear CDF search.
    const ir::ValueRef inv_n = b.F64(1.0 / static_cast<double>(n));
    k.For(b.I64(0), b.I64(n), [&](ir::ValueRef i) {
      const ir::ValueRef u = b.FMul(
          b.FAdd(b.SIToFP(i, Type::F64(), "fi"), b.F64(0.5), "iu"), inv_n, "u");
      // find first j with cdf[j] >= u
      const std::uint32_t pre = b.CurrentBlock();
      const std::uint32_t header = b.CreateBlock("find.header");
      const std::uint32_t check = b.CreateBlock("find.check");
      const std::uint32_t bump = b.CreateBlock("find.bump");
      const std::uint32_t found = b.CreateBlock("find.found");
      b.Br(header);
      b.SetInsertPoint(header);
      const ir::ValueRef j = b.Phi(Type::I64(), {{b.I64(0), pre}}, "j");
      b.CondBr(b.ICmp(ICmpPred::kSlt, j, b.I64(n - 1), "inb"), check, found);
      b.SetInsertPoint(check);
      const ir::ValueRef cj = k.LoadAt(cdf, j, "cj");
      b.CondBr(b.FCmp(FCmpPred::kOge, cj, u, "hit"), found, bump);
      b.SetInsertPoint(bump);
      const ir::ValueRef next_j = b.Add(j, b.I64(1), "j.next");
      b.Br(header);
      b.AddPhiIncoming(j, next_j, bump);
      b.SetInsertPoint(found);
      k.StoreAt(xs_new, i, b.FAdd(k.LoadAt(xs, j, "xsel"), b.F64(0.01), "jit"));
    }, "resample");

    k.For(b.I64(0), b.I64(n),
          [&](ir::ValueRef i) { k.StoreAt(xs, i, k.LoadAt(xs_new, i, "xn")); }, "commit");
  }, "iter");

  // Output the particle cloud and its mean.
  const ir::ValueRef total = k.ForAccum(
      b.I64(0), b.I64(n), b.F64(0.0),
      [&](ir::ValueRef i, ir::ValueRef acc) { return b.FAdd(acc, k.LoadAt(xs, i, "xf")); },
      "tot");
  b.Output(b.FDiv(total, b.F64(static_cast<double>(n)), "meanx"));
  k.For(b.I64(0), b.I64(n), [&](ir::ValueRef i) { b.Output(k.LoadAt(xs, i, "xo")); }, "out");
  b.RetVoid();
  return app;
}

}  // namespace epvf::apps
