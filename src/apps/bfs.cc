// bfs — breadth-first search over a CSR graph (paper Table IV: Graph
// Algorithm, 203 LOC).
//
// Rodinia-style level-synchronous BFS: per level, scan all nodes, expand the
// ones on the frontier, updating costs and the next-frontier mask; stop when
// no node was updated. The column-index loads make addresses *data
// dependent*, the pattern that stresses the crash/propagation models most.
#include "apps/app.h"
#include "apps/kernel_util.h"

namespace epvf::apps {

App BuildBfs(const AppConfig& config) {
  const std::int64_t n = 64 + 64 * std::int64_t{static_cast<unsigned>(config.scale)};
  const std::int64_t degree = 4;
  const std::int64_t num_edges = n * degree;
  App app;
  app.name = "bfs";
  app.domain = "Graph Algorithm";
  app.paper_loc = 203;

  ir::IRBuilder b(app.module);
  KernelBuilder k(b);
  using ir::ICmpPred;
  using ir::Type;

  // CSR graph: every node has `degree` edges — a doubling edge for shallow
  // diameter plus random ones.
  Rng rng(config.seed ^ 0xBF5);
  std::vector<std::int32_t> offsets(static_cast<std::size_t>(n + 1));
  std::vector<std::int32_t> columns(static_cast<std::size_t>(num_edges));
  for (std::int64_t v = 0; v <= n; ++v) {
    offsets[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(v * degree);
  }
  for (std::int64_t v = 0; v < n; ++v) {
    columns[static_cast<std::size_t>(v * degree)] =
        static_cast<std::int32_t>((2 * v + 1) % n);
    for (std::int64_t e = 1; e < degree; ++e) {
      columns[static_cast<std::size_t>(v * degree + e)] =
          static_cast<std::int32_t>(rng.Below(static_cast<std::uint64_t>(n)));
    }
  }
  const auto g_offsets =
      b.DeclareGlobal("offsets", Type::I32(), static_cast<std::uint64_t>(n + 1), PackI32(offsets));
  const auto g_columns = b.DeclareGlobal("columns", Type::I32(),
                                         static_cast<std::uint64_t>(num_edges), PackI32(columns));

  (void)b.CreateFunction("main", Type::Void(), {});
  const auto cost = b.MallocArray(Type::I32(), b.I64(n), "cost");
  const auto mask = b.MallocArray(Type::I32(), b.I64(n), "mask");
  const auto next_mask = b.MallocArray(Type::I32(), b.I64(n), "next");
  const auto changed = b.Alloca(Type::I32(), 1, "changed");

  k.For(b.I64(0), b.I64(n), [&](ir::ValueRef v) {
    k.StoreAt(cost, v, b.I32(-1));
    k.StoreAt(mask, v, b.I32(0));
    k.StoreAt(next_mask, v, b.I32(0));
  }, "init");
  k.StoreAt(cost, b.I64(0), b.I32(0));
  k.StoreAt(mask, b.I64(0), b.I32(1));

  // Level-synchronous sweep; bounded by n levels, early-exits when stable.
  const std::uint32_t lvl_header = b.CreateBlock("level.header");
  const std::uint32_t lvl_body = b.CreateBlock("level.body");
  const std::uint32_t lvl_latch = b.CreateBlock("level.latch");
  const std::uint32_t lvl_exit = b.CreateBlock("level.exit");
  const std::uint32_t pre = b.CurrentBlock();
  b.Br(lvl_header);

  b.SetInsertPoint(lvl_header);
  const ir::ValueRef level = b.Phi(Type::I64(), {{b.I64(0), pre}}, "level");
  b.CondBr(b.ICmp(ICmpPred::kSlt, level, b.I64(n), "lvl.cond"), lvl_body, lvl_exit);

  b.SetInsertPoint(lvl_body);
  b.Store(b.I32(0), changed);
  k.For(b.I64(0), b.I64(n), [&](ir::ValueRef v) {
    const ir::ValueRef on_frontier = k.LoadAt(mask, v, "onf");
    const std::uint32_t expand = b.CreateBlock("expand");
    const std::uint32_t skip = b.CreateBlock("skip");
    b.CondBr(b.ICmp(ICmpPred::kNe, on_frontier, b.I32(0), "isf"), expand, skip);

    b.SetInsertPoint(expand);
    k.StoreAt(mask, v, b.I32(0));
    const ir::ValueRef my_cost = k.LoadAt(cost, v, "myc");
    const ir::ValueRef begin =
        b.SExt(k.LoadAt(b.Global(g_offsets), v, "eb"), Type::I64(), "ebeg");
    const ir::ValueRef end = b.SExt(
        k.LoadAt(b.Global(g_offsets), b.Add(v, b.I64(1)), "ee"), Type::I64(), "eend");
    k.For(begin, end, [&](ir::ValueRef e) {
      const ir::ValueRef nbr =
          b.SExt(k.LoadAt(b.Global(g_columns), e, "col"), Type::I64(), "nbr");
      const ir::ValueRef nbr_cost = k.LoadAt(cost, nbr, "nc");
      const std::uint32_t update = b.CreateBlock("update");
      const std::uint32_t done = b.CreateBlock("done");
      b.CondBr(b.ICmp(ICmpPred::kSlt, nbr_cost, b.I32(0), "unseen"), update, done);
      b.SetInsertPoint(update);
      k.StoreAt(cost, nbr, b.Add(my_cost, b.I32(1), "nc1"));
      k.StoreAt(next_mask, nbr, b.I32(1));
      b.Store(b.I32(1), changed);
      b.Br(done);
      b.SetInsertPoint(done);
    }, "edge");
    b.Br(skip);
    b.SetInsertPoint(skip);
  }, "scan");

  // Swap masks: mask <- next_mask; next_mask <- 0.
  k.For(b.I64(0), b.I64(n), [&](ir::ValueRef v) {
    k.StoreAt(mask, v, k.LoadAt(next_mask, v, "nm"));
    k.StoreAt(next_mask, v, b.I32(0));
  }, "swap");
  const ir::ValueRef any = b.Load(changed, "any");
  const std::uint32_t body_end = b.CurrentBlock();
  b.CondBr(b.ICmp(ICmpPred::kNe, any, b.I32(0), "go"), lvl_latch, lvl_exit);

  b.SetInsertPoint(lvl_latch);
  const ir::ValueRef next_level = b.Add(level, b.I64(1), "lvl.next");
  b.Br(lvl_header);
  b.AddPhiIncoming(level, next_level, lvl_latch);
  (void)body_end;

  b.SetInsertPoint(lvl_exit);
  k.For(b.I64(0), b.I64(n), [&](ir::ValueRef v) { b.Output(k.LoadAt(cost, v, "cf")); }, "out");
  b.RetVoid();
  return app;
}

}  // namespace epvf::apps
