// lud — LU decomposition (paper Table IV: Linear Algebra, 174 LOC).
//
// In-place Doolittle factorization of a diagonally dominant N×N matrix on
// the heap; outputs the full factored matrix. Floating-point division by the
// pivot gives the crash-propagation model div-rule coverage.
#include "apps/app.h"
#include "apps/kernel_util.h"

namespace epvf::apps {

App BuildLud(const AppConfig& config) {
  const std::int64_t n = 10 + 6 * std::int64_t{static_cast<unsigned>(config.scale)};
  App app;
  app.name = "lud";
  app.domain = "Linear Algebra";
  app.paper_loc = 174;

  ir::IRBuilder b(app.module);
  KernelBuilder k(b);
  using ir::Type;

  // Diagonally dominant input so no pivoting is needed.
  auto data = RandomF64(static_cast<std::size_t>(n * n), config.seed ^ 0x1CD, -1.0, 1.0);
  for (std::int64_t i = 0; i < n; ++i) {
    data[static_cast<std::size_t>(i * n + i)] += static_cast<double>(n);
  }
  const auto a_init =
      b.DeclareGlobal("a_init", Type::F64(), static_cast<std::uint64_t>(n * n), PackF64(data));

  (void)b.CreateFunction("main", Type::Void(), {});
  const auto mat = b.MallocArray(Type::F64(), b.I64(n * n), "A");
  k.For(b.I64(0), b.I64(n * n),
        [&](ir::ValueRef i) { k.StoreAt(mat, i, k.LoadAt(b.Global(a_init), i, "a0")); },
        "copy");

  k.For(b.I64(0), b.I64(n), [&](ir::ValueRef kk) {
    const ir::ValueRef pivot = k.LoadAt(mat, k.Flat(kk, kk, n), "pivot");
    const ir::ValueRef kp1 = b.Add(kk, b.I64(1), "kp1");
    k.For(kp1, b.I64(n), [&](ir::ValueRef i) {
      const ir::ValueRef lik =
          b.FDiv(k.LoadAt(mat, k.Flat(i, kk, n), "aik"), pivot, "lik");
      k.StoreAt(mat, k.Flat(i, kk, n), lik);
      k.For(kp1, b.I64(n), [&](ir::ValueRef j) {
        const ir::ValueRef aij = k.LoadAt(mat, k.Flat(i, j, n), "aij");
        const ir::ValueRef akj = k.LoadAt(mat, k.Flat(kk, j, n), "akj");
        k.StoreAt(mat, k.Flat(i, j, n), b.FSub(aij, b.FMul(lik, akj, "prod"), "upd"));
      }, "j");
    }, "i");
  }, "k");

  k.For(b.I64(0), b.I64(n * n), [&](ir::ValueRef i) { b.Output(k.LoadAt(mat, i, "lu")); },
        "out");
  b.RetVoid();
  return app;
}

}  // namespace epvf::apps
