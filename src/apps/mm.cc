// mm — dense matrix multiplication (paper Table IV: "Matrix Multiplication",
// Linear Algebra, 100 LOC; the authors' own kernel).
//
// C = A × B over N×N doubles. A is copied to the heap (heap load/store
// traffic), B stays in the data segment (global accesses), C lives on the
// heap; every element of C is emitted as program output, giving the ACE
// analysis N² roots.
#include "apps/app.h"
#include "apps/kernel_util.h"

namespace epvf::apps {

App BuildMm(const AppConfig& config) {
  const std::int64_t n = 10 + 6 * std::int64_t{static_cast<unsigned>(config.scale)};
  App app;
  app.name = "mm";
  app.domain = "Linear Algebra";
  app.paper_loc = 100;

  ir::IRBuilder b(app.module);
  KernelBuilder k(b);
  using ir::Type;

  const auto a_init = b.DeclareGlobal(
      "a_init", Type::F64(), static_cast<std::uint64_t>(n * n),
      PackF64(RandomF64(static_cast<std::size_t>(n * n), config.seed ^ 0xA, -1.0, 1.0)));
  const auto b_data = b.DeclareGlobal(
      "b_data", Type::F64(), static_cast<std::uint64_t>(n * n),
      PackF64(RandomF64(static_cast<std::size_t>(n * n), config.seed ^ 0xB, -1.0, 1.0)));

  (void)b.CreateFunction("main", Type::Void(), {});
  const auto mat_a = b.MallocArray(Type::F64(), b.I64(n * n), "A");
  const auto mat_c = b.MallocArray(Type::F64(), b.I64(n * n), "C");

  // Stage A in the heap.
  k.For(b.I64(0), b.I64(n * n),
        [&](ir::ValueRef i) { k.StoreAt(mat_a, i, k.LoadAt(b.Global(a_init), i, "a")); },
        "copy");

  // C = A × B.
  k.For(b.I64(0), b.I64(n), [&](ir::ValueRef i) {
    k.For(b.I64(0), b.I64(n), [&](ir::ValueRef j) {
      const ir::ValueRef sum = k.ForAccum(
          b.I64(0), b.I64(n), b.F64(0.0),
          [&](ir::ValueRef kk, ir::ValueRef acc) {
            const ir::ValueRef av = k.LoadAt(mat_a, k.Flat(i, kk, n), "av");
            const ir::ValueRef bv = k.LoadAt(b.Global(b_data), k.Flat(kk, j, n), "bv");
            return b.FAdd(acc, b.FMul(av, bv, "prod"), "sum");
          },
          "dot");
      k.StoreAt(mat_c, k.Flat(i, j, n), sum);
    }, "j");
  }, "i");

  // Emit the full result matrix.
  k.For(b.I64(0), b.I64(n * n), [&](ir::ValueRef i) { b.Output(k.LoadAt(mat_c, i, "c")); },
        "out");
  b.RetVoid();
  return app;
}

}  // namespace epvf::apps
