// pathfinder — dynamic programming over a grid (paper Table IV: Grid
// Traversal, 135 LOC; the source of the paper's running example, Figure 3).
//
// Row by row, dst[j] = wall[i][j] + min(prev[j-1], prev[j], prev[j+1]) with
// clamped borders; prev/dst heap buffers swap through pointer phis. The
// final DP row is the program output.
#include "apps/app.h"
#include "apps/kernel_util.h"

namespace epvf::apps {

App BuildPathfinder(const AppConfig& config) {
  const std::int64_t cols = 32 + 24 * std::int64_t{static_cast<unsigned>(config.scale)};
  const std::int64_t rows = 12 + 10 * std::int64_t{static_cast<unsigned>(config.scale)};
  App app;
  app.name = "pathfinder";
  app.domain = "Grid Traversal";
  app.paper_loc = 135;

  ir::IRBuilder b(app.module);
  KernelBuilder k(b);
  using ir::ICmpPred;
  using ir::Type;

  const auto wall = b.DeclareGlobal(
      "wall", Type::I32(), static_cast<std::uint64_t>(rows * cols),
      PackI32(RandomI32(static_cast<std::size_t>(rows * cols), config.seed ^ 0x9A7F, 0, 10)));

  (void)b.CreateFunction("main", Type::Void(), {});
  const auto buf_a = b.MallocArray(Type::I32(), b.I64(cols), "bufA");
  const auto buf_b = b.MallocArray(Type::I32(), b.I64(cols), "bufB");

  // prev = wall[0][*]
  k.For(b.I64(0), b.I64(cols),
        [&](ir::ValueRef j) { k.StoreAt(buf_a, j, k.LoadAt(b.Global(wall), j, "w0")); },
        "init");

  // DP rows with pointer-phi double buffering.
  const std::uint32_t pre = b.CurrentBlock();
  const std::uint32_t header = b.CreateBlock("row.header");
  const std::uint32_t body = b.CreateBlock("row.body");
  const std::uint32_t latch = b.CreateBlock("row.latch");
  const std::uint32_t exit = b.CreateBlock("row.exit");
  b.Br(header);

  b.SetInsertPoint(header);
  const ir::ValueRef row = b.Phi(Type::I64(), {{b.I64(1), pre}}, "row");
  const ir::ValueRef prev = b.Phi(Type::I32().Ptr(), {{buf_a, pre}}, "prev");
  const ir::ValueRef dst = b.Phi(Type::I32().Ptr(), {{buf_b, pre}}, "dst");
  b.CondBr(b.ICmp(ICmpPred::kSlt, row, b.I64(rows), "row.cond"), body, exit);

  b.SetInsertPoint(body);
  k.For(b.I64(0), b.I64(cols), [&](ir::ValueRef j) {
    const ir::ValueRef jm1 = b.Sub(j, b.I64(1), "jm1");
    const ir::ValueRef jp1 = b.Add(j, b.I64(1), "jp1");
    const ir::ValueRef left_idx =
        b.Select(b.ICmp(ICmpPred::kSlt, jm1, b.I64(0)), b.I64(0), jm1, "lidx");
    const ir::ValueRef right_idx =
        b.Select(b.ICmp(ICmpPred::kSge, jp1, b.I64(cols)), b.I64(cols - 1), jp1, "ridx");
    const ir::ValueRef left = k.LoadAt(prev, left_idx, "left");
    const ir::ValueRef center = k.LoadAt(prev, j, "center");
    const ir::ValueRef right = k.LoadAt(prev, right_idx, "right");
    const ir::ValueRef min_lc =
        b.Select(b.ICmp(ICmpPred::kSlt, left, center), left, center, "minlc");
    const ir::ValueRef min3 =
        b.Select(b.ICmp(ICmpPred::kSlt, min_lc, right), min_lc, right, "min3");
    const ir::ValueRef w = k.LoadAt(b.Global(wall), k.Flat(row, j, cols), "w");
    k.StoreAt(dst, j, b.Add(w, min3, "cell"));
  }, "col");
  b.Br(latch);

  b.SetInsertPoint(latch);
  const ir::ValueRef next_row = b.Add(row, b.I64(1), "row.next");
  b.Br(header);
  b.AddPhiIncoming(row, next_row, latch);
  b.AddPhiIncoming(prev, dst, latch);  // swap buffers
  b.AddPhiIncoming(dst, prev, latch);

  b.SetInsertPoint(exit);
  k.For(b.I64(0), b.I64(cols), [&](ir::ValueRef j) { b.Output(k.LoadAt(prev, j, "res")); },
        "out");
  b.RetVoid();
  return app;
}

}  // namespace epvf::apps
