// kmeans — k-means clustering (from Table II's benchmark set; Rodinia).
//
// Lloyd iterations over 2-D points: nearest-centroid assignment (distance
// loop), then centroid update with *data-dependent* accumulation indices —
// the assigned-cluster value computes the store address, so faults in it feed
// straight into the crash model. Integer division by cluster population
// gives a natural arithmetic-error (AE) surface.
#include "apps/app.h"
#include "apps/kernel_util.h"

namespace epvf::apps {

App BuildKmeans(const AppConfig& config) {
  const std::int64_t n = 64 + 48 * std::int64_t{static_cast<unsigned>(config.scale)};
  const std::int64_t kc = 4;   // clusters
  const std::int64_t dim = 2;  // coordinates per point
  const std::int64_t iters = 3;
  App app;
  app.name = "kmeans";
  app.domain = "Data Mining";
  app.paper_loc = 365;

  ir::IRBuilder b(app.module);
  KernelBuilder k(b);
  using ir::FCmpPred;
  using ir::Type;

  const auto points = b.DeclareGlobal(
      "points", Type::F64(), static_cast<std::uint64_t>(n * dim),
      PackF64(RandomF64(static_cast<std::size_t>(n * dim), config.seed ^ 0x3E, 0.0, 10.0)));

  (void)b.CreateFunction("main", Type::Void(), {});
  const auto centroids = b.MallocArray(Type::F64(), b.I64(kc * dim), "cent");
  const auto member = b.MallocArray(Type::I64(), b.I64(n), "member");
  const auto sums = b.MallocArray(Type::F64(), b.I64(kc * dim), "sums");
  const auto counts = b.MallocArray(Type::I64(), b.I64(kc), "counts");

  // Seed the centroids with the first k points.
  k.For(b.I64(0), b.I64(kc * dim),
        [&](ir::ValueRef i) { k.StoreAt(centroids, i, k.LoadAt(b.Global(points), i, "p0")); },
        "seed");

  k.For(b.I64(0), b.I64(iters), [&](ir::ValueRef) {
    // Assignment step.
    k.For(b.I64(0), b.I64(n), [&](ir::ValueRef p) {
      const ir::ValueRef px = k.LoadAt(b.Global(points), b.Mul(p, b.I64(dim)), "px");
      const ir::ValueRef py =
          k.LoadAt(b.Global(points), b.Add(b.Mul(p, b.I64(dim)), b.I64(1)), "py");
      // Scan clusters carrying (best_dist, best_idx) through two phis.
      const std::uint32_t pre = b.CurrentBlock();
      const std::uint32_t header = b.CreateBlock("assign.header");
      const std::uint32_t body = b.CreateBlock("assign.body");
      const std::uint32_t latch = b.CreateBlock("assign.latch");
      const std::uint32_t exit = b.CreateBlock("assign.exit");
      b.Br(header);
      b.SetInsertPoint(header);
      const ir::ValueRef c = b.Phi(Type::I64(), {{b.I64(0), pre}}, "c");
      const ir::ValueRef best_d = b.Phi(Type::F64(), {{b.F64(1e30), pre}}, "bestd");
      const ir::ValueRef best_i = b.Phi(Type::I64(), {{b.I64(0), pre}}, "besti");
      b.CondBr(b.ICmp(ir::ICmpPred::kSlt, c, b.I64(kc), "c.cond"), body, exit);
      b.SetInsertPoint(body);
      const ir::ValueRef cx = k.LoadAt(centroids, b.Mul(c, b.I64(dim)), "cx");
      const ir::ValueRef cy =
          k.LoadAt(centroids, b.Add(b.Mul(c, b.I64(dim)), b.I64(1)), "cy");
      const ir::ValueRef dx = b.FSub(px, cx, "dx");
      const ir::ValueRef dy = b.FSub(py, cy, "dy");
      const ir::ValueRef dist = b.FAdd(b.FMul(dx, dx), b.FMul(dy, dy), "dist");
      const ir::ValueRef closer = b.FCmp(FCmpPred::kOlt, dist, best_d, "closer");
      const ir::ValueRef new_d = b.Select(closer, dist, best_d, "newd");
      const ir::ValueRef new_i = b.Select(closer, c, best_i, "newi");
      b.Br(latch);
      b.SetInsertPoint(latch);
      const ir::ValueRef next_c = b.Add(c, b.I64(1), "c.next");
      b.Br(header);
      b.AddPhiIncoming(c, next_c, latch);
      b.AddPhiIncoming(best_d, new_d, latch);
      b.AddPhiIncoming(best_i, new_i, latch);
      b.SetInsertPoint(exit);
      k.StoreAt(member, p, best_i);
    }, "pt");

    // Update step: zero accumulators, accumulate by membership, divide.
    k.For(b.I64(0), b.I64(kc * dim),
          [&](ir::ValueRef i) { k.StoreAt(sums, i, b.F64(0.0)); }, "zs");
    k.For(b.I64(0), b.I64(kc), [&](ir::ValueRef c) { k.StoreAt(counts, c, b.I64(0)); }, "zc");
    k.For(b.I64(0), b.I64(n), [&](ir::ValueRef p) {
      const ir::ValueRef who = k.LoadAt(member, p, "who");
      const ir::ValueRef sx_idx = b.Mul(who, b.I64(dim), "sx.idx");
      const ir::ValueRef sy_idx = b.Add(sx_idx, b.I64(1), "sy.idx");
      const ir::ValueRef px = k.LoadAt(b.Global(points), b.Mul(p, b.I64(dim)), "apx");
      const ir::ValueRef py =
          k.LoadAt(b.Global(points), b.Add(b.Mul(p, b.I64(dim)), b.I64(1)), "apy");
      k.StoreAt(sums, sx_idx, b.FAdd(k.LoadAt(sums, sx_idx, "sx"), px, "sx1"));
      k.StoreAt(sums, sy_idx, b.FAdd(k.LoadAt(sums, sy_idx, "sy"), py, "sy1"));
      k.StoreAt(counts, who, b.Add(k.LoadAt(counts, who, "cnt"), b.I64(1), "cnt1"));
    }, "acc");
    k.For(b.I64(0), b.I64(kc), [&](ir::ValueRef c) {
      const ir::ValueRef cnt = k.LoadAt(counts, c, "den");
      const std::uint32_t divide = b.CreateBlock("divide");
      const std::uint32_t done = b.CreateBlock("done");
      b.CondBr(b.ICmp(ir::ICmpPred::kSgt, cnt, b.I64(0), "nonzero"), divide, done);
      b.SetInsertPoint(divide);
      const ir::ValueRef fcnt = b.SIToFP(cnt, Type::F64(), "fcnt");
      const ir::ValueRef xi = b.Mul(c, b.I64(dim), "xi");
      const ir::ValueRef yi = b.Add(xi, b.I64(1), "yi");
      k.StoreAt(centroids, xi, b.FDiv(k.LoadAt(sums, xi, "fx"), fcnt, "mx"));
      k.StoreAt(centroids, yi, b.FDiv(k.LoadAt(sums, yi, "fy"), fcnt, "my"));
      b.Br(done);
      b.SetInsertPoint(done);
    }, "upd");
  }, "iter");

  // Output centroids and memberships.
  k.For(b.I64(0), b.I64(kc * dim),
        [&](ir::ValueRef i) { b.Output(k.LoadAt(centroids, i, "cf")); }, "outc");
  k.For(b.I64(0), b.I64(n), [&](ir::ValueRef p) { b.Output(k.LoadAt(member, p, "mf")); },
        "outm");
  b.RetVoid();
  return app;
}

}  // namespace epvf::apps
