// nw — Needleman-Wunsch sequence alignment (paper Table IV: Bioinformatics,
// 272 LOC).
//
// Fills the (N+1)×(N+1) DP score matrix on the heap:
//   F[i][j] = max(F[i-1][j-1] + sim[i][j], F[i-1][j] - penalty,
//                 F[i][j-1] - penalty)
// with the random similarity matrix in the data segment, then outputs the
// last row and column (the alignment frontier).
#include "apps/app.h"
#include "apps/kernel_util.h"

namespace epvf::apps {

App BuildNw(const AppConfig& config) {
  const std::int64_t n = 24 + 16 * std::int64_t{static_cast<unsigned>(config.scale)};
  const std::int64_t m = n + 1;  // DP matrix dimension
  const std::int64_t penalty = 2;
  App app;
  app.name = "nw";
  app.domain = "Bioinformatics";
  app.paper_loc = 272;

  ir::IRBuilder b(app.module);
  KernelBuilder k(b);
  using ir::ICmpPred;
  using ir::Type;

  const auto sim = b.DeclareGlobal(
      "sim", Type::I32(), static_cast<std::uint64_t>(n * n),
      PackI32(RandomI32(static_cast<std::size_t>(n * n), config.seed ^ 0x2A2A, -4, 6)));

  (void)b.CreateFunction("main", Type::Void(), {});
  const auto score = b.MallocArray(Type::I32(), b.I64(m * m), "F");

  // First row/column: gap penalties.
  k.For(b.I64(0), b.I64(m), [&](ir::ValueRef i) {
    const ir::ValueRef gap =
        b.Trunc(b.Mul(i, b.I64(-penalty), "gap64"), Type::I32(), "gap");
    k.StoreAt(score, i, gap);                     // F[0][i]
    k.StoreAt(score, b.Mul(i, b.I64(m)), gap);    // F[i][0]
  }, "borders");

  k.For(b.I64(1), b.I64(m), [&](ir::ValueRef i) {
    k.For(b.I64(1), b.I64(m), [&](ir::ValueRef j) {
      const ir::ValueRef im1 = b.Sub(i, b.I64(1), "im1");
      const ir::ValueRef jm1 = b.Sub(j, b.I64(1), "jm1");
      const ir::ValueRef diag = k.LoadAt(score, k.Flat(im1, jm1, m), "diag");
      const ir::ValueRef up = k.LoadAt(score, k.Flat(im1, j, m), "up");
      const ir::ValueRef left = k.LoadAt(score, k.Flat(i, jm1, m), "left");
      const ir::ValueRef s = k.LoadAt(b.Global(sim), k.Flat(im1, jm1, n), "sim");
      const ir::ValueRef match = b.Add(diag, s, "match");
      const ir::ValueRef del = b.Sub(up, b.I32(static_cast<std::int32_t>(penalty)), "del");
      const ir::ValueRef ins = b.Sub(left, b.I32(static_cast<std::int32_t>(penalty)), "ins");
      const ir::ValueRef max_md =
          b.Select(b.ICmp(ICmpPred::kSgt, match, del), match, del, "maxmd");
      const ir::ValueRef best =
          b.Select(b.ICmp(ICmpPred::kSgt, max_md, ins), max_md, ins, "best");
      k.StoreAt(score, k.Flat(i, j, m), best);
    }, "j");
  }, "i");

  // Output the last row and the last column.
  k.For(b.I64(0), b.I64(m),
        [&](ir::ValueRef j) { b.Output(k.LoadAt(score, k.Flat(b.I64(m - 1), j, m), "row")); },
        "outrow");
  k.For(b.I64(0), b.I64(m),
        [&](ir::ValueRef i) { b.Output(k.LoadAt(score, k.Flat(i, b.I64(m - 1), m), "col")); },
        "outcol");
  b.RetVoid();
  return app;
}

}  // namespace epvf::apps
