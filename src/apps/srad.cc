// srad — Speckle Reducing Anisotropic Diffusion (paper Table IV: Image
// Processing / Biological Informatics, 388/285 LOC).
//
// Rodinia's SRAD main loop at reduced scale: per iteration, compute the image
// mean/variance, per-pixel gradients against clamped neighbors, the
// diffusion coefficient c = 1/(1 + (G²/L - q0)/(1+q0)), then the divergence
// update. Exercises exp/log-style intrinsics (image initialization uses exp)
// and float division chains.
#include "apps/app.h"
#include "apps/kernel_util.h"

namespace epvf::apps {

App BuildSrad(const AppConfig& config) {
  const std::int64_t n = 10 + 6 * std::int64_t{static_cast<unsigned>(config.scale)};
  const std::int64_t iters = 2;
  const double lambda = 0.25;
  App app;
  app.name = "srad";
  app.domain = "Image Processing";
  app.paper_loc = 388;

  ir::IRBuilder b(app.module);
  KernelBuilder k(b);
  using ir::ICmpPred;
  using ir::Intrinsic;
  using ir::Type;

  const auto img_init = b.DeclareGlobal(
      "img_init", Type::F64(), static_cast<std::uint64_t>(n * n),
      PackF64(RandomF64(static_cast<std::size_t>(n * n), config.seed ^ 0x55AD, 0.0, 1.0)));

  (void)b.CreateFunction("main", Type::Void(), {});
  const auto img = b.MallocArray(Type::F64(), b.I64(n * n), "J");
  const auto coef = b.MallocArray(Type::F64(), b.I64(n * n), "c");

  // J = exp(raw image), Rodinia's log-compressed initialization inverted.
  k.For(b.I64(0), b.I64(n * n), [&](ir::ValueRef i) {
    const ir::ValueRef raw = k.LoadAt(b.Global(img_init), i, "raw");
    k.StoreAt(img, i, b.CallIntrinsic(Intrinsic::kExp, {raw}, "J0"));
  }, "init");

  k.For(b.I64(0), b.I64(iters), [&](ir::ValueRef) {
    // Mean and mean-of-squares over the image.
    const ir::ValueRef sum = k.ForAccum(
        b.I64(0), b.I64(n * n), b.F64(0.0),
        [&](ir::ValueRef i, ir::ValueRef acc) { return b.FAdd(acc, k.LoadAt(img, i, "Jv")); },
        "sum");
    const ir::ValueRef sum2 = k.ForAccum(
        b.I64(0), b.I64(n * n), b.F64(0.0),
        [&](ir::ValueRef i, ir::ValueRef acc) {
          const ir::ValueRef v = k.LoadAt(img, i, "Jv2");
          return b.FAdd(acc, b.FMul(v, v));
        },
        "sum2");
    const ir::ValueRef count = b.F64(static_cast<double>(n * n));
    const ir::ValueRef mean = b.FDiv(sum, count, "mean");
    const ir::ValueRef var = b.FSub(b.FDiv(sum2, count), b.FMul(mean, mean), "var");
    const ir::ValueRef q0 = b.FDiv(var, b.FMul(mean, mean), "q0");

    auto clamp = [&](ir::ValueRef v) {
      const ir::ValueRef lo = b.Select(b.ICmp(ICmpPred::kSlt, v, b.I64(0)), b.I64(0), v);
      return b.Select(b.ICmp(ICmpPred::kSge, lo, b.I64(n)), b.I64(n - 1), lo, "cl");
    };

    // Diffusion coefficient per pixel.
    k.For(b.I64(0), b.I64(n), [&](ir::ValueRef i) {
      k.For(b.I64(0), b.I64(n), [&](ir::ValueRef j) {
        const ir::ValueRef jc = k.LoadAt(img, k.Flat(i, j, n), "Jc");
        const ir::ValueRef dn =
            b.FSub(k.LoadAt(img, k.Flat(clamp(b.Sub(i, b.I64(1))), j, n), "Jn"), jc, "dN");
        const ir::ValueRef ds =
            b.FSub(k.LoadAt(img, k.Flat(clamp(b.Add(i, b.I64(1))), j, n), "Js"), jc, "dS");
        const ir::ValueRef dw =
            b.FSub(k.LoadAt(img, k.Flat(i, clamp(b.Sub(j, b.I64(1))), n), "Jw"), jc, "dW");
        const ir::ValueRef de =
            b.FSub(k.LoadAt(img, k.Flat(i, clamp(b.Add(j, b.I64(1))), n), "Je"), jc, "dE");
        const ir::ValueRef g2 = b.FDiv(
            b.FAdd(b.FAdd(b.FMul(dn, dn), b.FMul(ds, ds)),
                   b.FAdd(b.FMul(dw, dw), b.FMul(de, de)), "grad2"),
            b.FMul(jc, jc), "G2");
        const ir::ValueRef l =
            b.FDiv(b.FAdd(b.FAdd(dn, ds), b.FAdd(dw, de), "lapsum"), jc, "L");
        const ir::ValueRef num =
            b.FSub(b.FMul(b.F64(0.5), g2),
                   b.FMul(b.F64(1.0 / 16.0), b.FMul(l, l)), "num");
        const ir::ValueRef den1 = b.FAdd(b.F64(1.0), b.FMul(b.F64(0.25), l), "den1");
        const ir::ValueRef qsq = b.FDiv(num, b.FMul(den1, den1), "qsq");
        const ir::ValueRef qdiff = b.FDiv(b.FSub(qsq, q0), b.FMul(q0, b.FAdd(b.F64(1.0), q0)),
                                          "qdiff");
        const ir::ValueRef c = b.FDiv(b.F64(1.0), b.FAdd(b.F64(1.0), qdiff), "cden");
        // Clamp c to [0, 1].
        const ir::ValueRef c_lo =
            b.Select(b.FCmp(ir::FCmpPred::kOlt, c, b.F64(0.0)), b.F64(0.0), c, "clo");
        const ir::ValueRef c_cl =
            b.Select(b.FCmp(ir::FCmpPred::kOgt, c_lo, b.F64(1.0)), b.F64(1.0), c_lo, "ccl");
        k.StoreAt(coef, k.Flat(i, j, n), c_cl);
      }, "cj");
    }, "ci");

    // Divergence update.
    k.For(b.I64(0), b.I64(n), [&](ir::ValueRef i) {
      k.For(b.I64(0), b.I64(n), [&](ir::ValueRef j) {
        const ir::ValueRef jc = k.LoadAt(img, k.Flat(i, j, n), "Jc2");
        const ir::ValueRef cc = k.LoadAt(coef, k.Flat(i, j, n), "cC");
        const ir::ValueRef cs = k.LoadAt(coef, k.Flat(clamp(b.Add(i, b.I64(1))), j, n), "cS");
        const ir::ValueRef ce = k.LoadAt(coef, k.Flat(i, clamp(b.Add(j, b.I64(1))), n), "cE");
        const ir::ValueRef js = k.LoadAt(img, k.Flat(clamp(b.Add(i, b.I64(1))), j, n), "JS");
        const ir::ValueRef je = k.LoadAt(img, k.Flat(i, clamp(b.Add(j, b.I64(1))), n), "JE");
        const ir::ValueRef jn = k.LoadAt(img, k.Flat(clamp(b.Sub(i, b.I64(1))), j, n), "JN");
        const ir::ValueRef jw = k.LoadAt(img, k.Flat(i, clamp(b.Sub(j, b.I64(1))), n), "JW");
        const ir::ValueRef div = b.FAdd(
            b.FAdd(b.FMul(cs, b.FSub(js, jc)), b.FMul(ce, b.FSub(je, jc)), "divA"),
            b.FAdd(b.FMul(cc, b.FSub(jn, jc)), b.FMul(cc, b.FSub(jw, jc)), "divB"), "div");
        k.StoreAt(img, k.Flat(i, j, n),
                  b.FAdd(jc, b.FMul(b.F64(lambda * 0.25), div), "J1"));
      }, "uj");
    }, "ui");
  }, "iter");

  k.For(b.I64(0), b.I64(n * n), [&](ir::ValueRef i) { b.Output(k.LoadAt(img, i, "Jf")); },
        "out");
  b.RetVoid();
  return app;
}

}  // namespace epvf::apps
