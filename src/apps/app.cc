#include "apps/app.h"

#include <stdexcept>

#include "ir/verifier.h"
#include "obs/trace.h"

namespace epvf::apps {

namespace {

struct Entry {
  std::string_view name;
  App (*build)(const AppConfig&);
};

// Table IV order (kmeans appears in the Table II crash-frequency study).
constexpr Entry kRegistry[] = {
    {"lulesh", BuildLulesh},
    {"particlefilter", BuildParticleFilter},
    {"srad", BuildSrad},
    {"nw", BuildNw},
    {"hotspot", BuildHotspot},
    {"lavaMD", BuildLavaMd},
    {"bfs", BuildBfs},
    {"lud", BuildLud},
    {"pathfinder", BuildPathfinder},
    {"mm", BuildMm},
    {"kmeans", BuildKmeans},
};

}  // namespace

std::vector<std::string> AppNames() {
  std::vector<std::string> names;
  names.reserve(std::size(kRegistry));
  for (const Entry& entry : kRegistry) names.emplace_back(entry.name);
  return names;
}

App BuildApp(std::string_view name, const AppConfig& config) {
  for (const Entry& entry : kRegistry) {
    if (entry.name == name) {
      const obs::TraceSpan span("parse", "build-app");
      App app = entry.build(config);
      ir::VerifyModuleOrThrow(app.module);
      return app;
    }
  }
  throw std::invalid_argument("BuildApp: unknown benchmark '" + std::string(name) + "'");
}

}  // namespace epvf::apps
