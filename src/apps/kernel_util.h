// Shared helpers for authoring kernels against the IRBuilder.
#pragma once

#include <cstring>
#include <functional>
#include <vector>

#include "ir/builder.h"
#include "support/rng.h"

namespace epvf::apps {

/// Structured-loop emitter: builds the canonical header/body/latch/exit CFG
/// with a phi induction variable, the shape an LLVM frontend produces for a
/// counted `for` loop.
class KernelBuilder {
 public:
  explicit KernelBuilder(ir::IRBuilder& b) : b_(b) {}

  /// for (i64 i = begin; i < end; i += 1) body(i).
  /// On return the insertion point is the loop's exit block.
  void For(ir::ValueRef begin, ir::ValueRef end,
           const std::function<void(ir::ValueRef iv)>& body, const std::string& tag = "i") {
    ForStep(begin, end, b_.I64(1), body, tag);
  }

  void ForStep(ir::ValueRef begin, ir::ValueRef end, ir::ValueRef step,
               const std::function<void(ir::ValueRef iv)>& body, const std::string& tag = "i") {
    const std::uint32_t pre = b_.CurrentBlock();
    const std::uint32_t header = b_.CreateBlock(tag + ".header");
    const std::uint32_t body_bb = b_.CreateBlock(tag + ".body");
    const std::uint32_t latch = b_.CreateBlock(tag + ".latch");
    const std::uint32_t exit = b_.CreateBlock(tag + ".exit");

    b_.Br(header);
    b_.SetInsertPoint(header);
    const ir::ValueRef iv = b_.Phi(ir::Type::I64(), {{begin, pre}}, tag);
    const ir::ValueRef cond = b_.ICmp(ir::ICmpPred::kSlt, iv, end, tag + ".cond");
    b_.CondBr(cond, body_bb, exit);

    b_.SetInsertPoint(body_bb);
    body(iv);
    b_.Br(latch);

    b_.SetInsertPoint(latch);
    const ir::ValueRef next = b_.Add(iv, step, tag + ".next");
    b_.Br(header);
    b_.AddPhiIncoming(iv, next, latch);

    b_.SetInsertPoint(exit);
  }

  /// Loop carrying one accumulator: returns the final value after the loop.
  /// `body(iv, acc)` returns the next accumulator value.
  ir::ValueRef ForAccum(ir::ValueRef begin, ir::ValueRef end, ir::ValueRef init,
                        const std::function<ir::ValueRef(ir::ValueRef, ir::ValueRef)>& body,
                        const std::string& tag = "acc") {
    const std::uint32_t pre = b_.CurrentBlock();
    const std::uint32_t header = b_.CreateBlock(tag + ".header");
    const std::uint32_t body_bb = b_.CreateBlock(tag + ".body");
    const std::uint32_t latch = b_.CreateBlock(tag + ".latch");
    const std::uint32_t exit = b_.CreateBlock(tag + ".exit");

    b_.Br(header);
    b_.SetInsertPoint(header);
    const ir::ValueRef iv = b_.Phi(ir::Type::I64(), {{begin, pre}}, tag + ".i");
    const ir::ValueRef acc = b_.Phi(b_.TypeOf(init), {{init, pre}}, tag);
    const ir::ValueRef cond = b_.ICmp(ir::ICmpPred::kSlt, iv, end, tag + ".cond");
    b_.CondBr(cond, body_bb, exit);

    b_.SetInsertPoint(body_bb);
    const ir::ValueRef next_acc = body(iv, acc);
    b_.Br(latch);
    const std::uint32_t body_end = b_.CurrentBlock();

    b_.SetInsertPoint(latch);
    const ir::ValueRef next_iv = b_.Add(iv, b_.I64(1), tag + ".next");
    b_.Br(header);
    b_.AddPhiIncoming(iv, next_iv, latch);
    b_.AddPhiIncoming(acc, next_acc, latch);
    (void)body_end;

    b_.SetInsertPoint(exit);
    return acc;
  }

  /// p[i] for typed pointers: gep + load.
  ir::ValueRef LoadAt(ir::ValueRef ptr, ir::ValueRef index, const std::string& tag = {}) {
    return b_.Load(b_.Gep(ptr, index, tag.empty() ? std::string{} : tag + ".addr"), tag);
  }
  void StoreAt(ir::ValueRef ptr, ir::ValueRef index, ir::ValueRef value) {
    b_.Store(value, b_.Gep(ptr, index));
  }

  /// i * n + j as i64.
  ir::ValueRef Flat(ir::ValueRef i, ir::ValueRef j, std::int64_t n) {
    return b_.Add(b_.Mul(i, b_.I64(n)), j);
  }

  ir::IRBuilder& b() { return b_; }

 private:
  ir::IRBuilder& b_;
};

/// Deterministic input-data helpers: pack host-computed values into global
/// initializer bytes.
[[nodiscard]] inline std::vector<std::uint8_t> PackF64(const std::vector<double>& xs) {
  std::vector<std::uint8_t> bytes(xs.size() * 8);
  std::memcpy(bytes.data(), xs.data(), bytes.size());
  return bytes;
}

[[nodiscard]] inline std::vector<std::uint8_t> PackI32(const std::vector<std::int32_t>& xs) {
  std::vector<std::uint8_t> bytes(xs.size() * 4);
  std::memcpy(bytes.data(), xs.data(), bytes.size());
  return bytes;
}

/// Uniform doubles in [lo, hi) from the app seed.
[[nodiscard]] inline std::vector<double> RandomF64(std::size_t n, std::uint64_t seed, double lo,
                                                   double hi) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = lo + (hi - lo) * rng.NextDouble();
  return xs;
}

[[nodiscard]] inline std::vector<std::int32_t> RandomI32(std::size_t n, std::uint64_t seed,
                                                         std::int32_t lo, std::int32_t hi) {
  Rng rng(seed);
  std::vector<std::int32_t> xs(n);
  for (auto& x : xs) {
    x = lo + static_cast<std::int32_t>(rng.Below(static_cast<std::uint64_t>(hi - lo)));
  }
  return xs;
}

}  // namespace epvf::apps
