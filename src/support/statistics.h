// Small statistics toolbox for the evaluation harness.
//
// The paper reports every fault-injection-derived rate with a 95% confidence
// interval (error bars in Figures 5-9 and 13) and summarizes the protection
// case study with a geometric mean. These helpers compute exactly those
// quantities so the bench binaries can print paper-style rows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace epvf {

/// A proportion estimate with a symmetric normal-approximation confidence
/// interval, the standard presentation for fault-injection outcome rates.
struct ProportionCI {
  double rate = 0.0;       ///< successes / trials
  double half_width = 0.0; ///< z * sqrt(p(1-p)/n)
  std::uint64_t successes = 0;
  std::uint64_t trials = 0;

  [[nodiscard]] double Low() const noexcept;
  [[nodiscard]] double High() const noexcept;
};

/// 95% (z = 1.96) normal-approximation CI for a binomial proportion.
[[nodiscard]] ProportionCI BinomialCI95(std::uint64_t successes, std::uint64_t trials) noexcept;

/// Wilson score interval — better behaved for rates near 0 or 1 and the small
/// per-benchmark campaign sizes used in tests.
[[nodiscard]] ProportionCI WilsonCI95(std::uint64_t successes, std::uint64_t trials) noexcept;

/// Half-width of the 95% Wilson score interval over real-valued counts. The
/// stratified campaign planner blends fractional model pseudo-counts into its
/// per-stratum stopping statistic, so this overload accepts doubles where
/// WilsonCI95 requires integers.
[[nodiscard]] double WilsonHalfWidth95(double successes, double trials) noexcept;

[[nodiscard]] double Mean(std::span<const double> xs) noexcept;
[[nodiscard]] double Variance(std::span<const double> xs) noexcept;  ///< sample variance
[[nodiscard]] double StdDev(std::span<const double> xs) noexcept;

/// Geometric mean; zero entries are clamped to `floor` so a single perfectly
/// protected benchmark does not zero out the aggregate (paper Figure 13 style).
[[nodiscard]] double GeometricMean(std::span<const double> xs, double floor = 1e-6) noexcept;

/// Coefficient-of-variation style normalized variance used by the paper's
/// ACE-graph-sampling applicability probe (section IV-E): variance of the
/// subsample estimates normalized by the squared mean.
[[nodiscard]] double NormalizedVariance(std::span<const double> xs) noexcept;

/// Pearson correlation, used to verify the "analysis time correlates with ACE
/// graph size" claim around Table V.
[[nodiscard]] double PearsonCorrelation(std::span<const double> xs,
                                        std::span<const double> ys) noexcept;

/// Simple accumulator for streaming outcome counts.
class Counter {
 public:
  void Add(bool success) noexcept {
    ++trials_;
    if (success) ++successes_;
  }
  [[nodiscard]] std::uint64_t successes() const noexcept { return successes_; }
  [[nodiscard]] std::uint64_t trials() const noexcept { return trials_; }
  [[nodiscard]] ProportionCI CI95() const noexcept { return BinomialCI95(successes_, trials_); }

 private:
  std::uint64_t successes_ = 0;
  std::uint64_t trials_ = 0;
};

}  // namespace epvf
