// Monotonic wall-clock stopwatch used for Table V / Figure 10 timing rows.
#pragma once

#include <chrono>

namespace epvf {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  [[nodiscard]] double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace epvf
