// Deterministic, seedable random number generator (xoshiro256**).
//
// Fault-injection campaigns must be reproducible run-to-run (the paper reports
// 95% confidence intervals over thousands of injections; reproducing a
// specific failing injection requires replaying the exact fault site), so we
// avoid std::random_device / unseeded engines and use a small, fast, fully
// deterministic generator.
#pragma once

#include <cstdint>
#include <limits>

namespace epvf {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, adapted). Passes BigCrush; plenty for workload sampling.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept { Seed(seed); }

  /// Re-seeds the generator via SplitMix64 so that nearby seeds produce
  /// uncorrelated streams.
  void Seed(std::uint64_t seed) noexcept {
    auto splitmix = [&seed]() noexcept {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = splitmix();
  }

  [[nodiscard]] std::uint64_t Next() noexcept {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be nonzero. Uses Lemire's
  /// multiply-shift rejection to avoid modulo bias.
  [[nodiscard]] std::uint64_t Below(std::uint64_t bound) noexcept {
    // Lemire multiply-shift with rejection of the biased low fringe.
    const std::uint64_t threshold = (std::uint64_t{0} - bound) % bound;
    while (true) {
      const auto m = static_cast<__uint128_t>(Next()) * static_cast<__uint128_t>(bound);
      if (static_cast<std::uint64_t>(m) >= threshold) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double NextDouble() noexcept {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace epvf
