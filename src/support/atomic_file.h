// Crash-safe whole-file writes.
//
// The artifact store and the BenchJson emitter both publish files that other
// processes (or the next run) read back; a process killed mid-write must
// never leave a torn file behind. AtomicWriteFile gives the POSIX guarantee:
// the data lands in a unique temp file in the same directory, is fsynced,
// and then rename(2)d over the target — readers see either the old complete
// file or the new complete file, never a prefix. Concurrent writers race
// safely (last rename wins).
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace epvf {

/// Atomically replaces `path` with `data`. Returns false (after logging a
/// warning and removing any temp file) if the directory is unwritable, the
/// disk fills, or the rename fails. The parent directory must exist.
bool AtomicWriteFile(const std::string& path, std::string_view data);

/// Reads the entire file at `path`; std::nullopt if it cannot be opened or
/// read (not logged — absent files are an expected cache miss).
[[nodiscard]] std::optional<std::string> ReadWholeFile(const std::string& path);

}  // namespace epvf
