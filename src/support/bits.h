// Bit-level helpers shared by the ACE, crash-bit and fault-injection layers.
//
// The whole ePVF methodology is phrased in terms of single-bit flips of
// register values (the fault model of the paper, section II-E), so these tiny
// helpers are used pervasively: the fault injector flips a bit of an operand,
// the crash model asks "which bit flips of this value leave the allowed
// address interval", and the ACE accounting sums bit widths.
#pragma once

#include <bit>
#include <cstdint>

namespace epvf {

/// Returns `value` with bit `bit` (0 = LSB) inverted. Bits >= 64 are invalid.
[[nodiscard]] constexpr std::uint64_t FlipBit(std::uint64_t value, unsigned bit) noexcept {
  return value ^ (std::uint64_t{1} << bit);
}

/// Returns `value` with `count` adjacent bits starting at `bit` inverted —
/// the burst model for multi-bit upsets (paper section II-E notes the
/// methodology "can be easily extended to multiple-bit flips").
[[nodiscard]] constexpr std::uint64_t FlipBits(std::uint64_t value, unsigned bit,
                                               unsigned count) noexcept {
  const std::uint64_t mask = count >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << count) - 1);
  return value ^ (mask << bit);
}

/// True if bit `bit` of `value` is set.
[[nodiscard]] constexpr bool TestBit(std::uint64_t value, unsigned bit) noexcept {
  return ((value >> bit) & 1u) != 0;
}

/// Mask covering the low `bits` bits; `bits` == 64 yields all-ones.
[[nodiscard]] constexpr std::uint64_t LowMask(unsigned bits) noexcept {
  return bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
}

/// Truncates `value` to its low `bits` bits.
[[nodiscard]] constexpr std::uint64_t TruncateTo(std::uint64_t value, unsigned bits) noexcept {
  return value & LowMask(bits);
}

/// Sign-extends the low `bits` bits of `value` to 64 bits.
[[nodiscard]] constexpr std::uint64_t SignExtendFrom(std::uint64_t value, unsigned bits) noexcept {
  if (bits == 0 || bits >= 64) return value;
  const std::uint64_t sign = std::uint64_t{1} << (bits - 1);
  value &= LowMask(bits);
  return (value ^ sign) - sign;
}

/// Number of set bits.
[[nodiscard]] constexpr unsigned PopCount(std::uint64_t value) noexcept {
  return static_cast<unsigned>(std::popcount(value));
}

}  // namespace epvf
