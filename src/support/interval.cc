#include "support/interval.h"

#include <sstream>

namespace epvf {

std::string Interval::ToString() const {
  if (IsEmpty()) return "[empty]";
  std::ostringstream os;
  os << "[0x" << std::hex << lo << ", 0x" << hi << "]";
  return os.str();
}

namespace interval_ops {

std::uint64_t SatAdd(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t s = a + b;
  return s < a ? ~std::uint64_t{0} : s;
}

std::uint64_t SatSub(std::uint64_t a, std::uint64_t b) noexcept {
  return a < b ? 0 : a - b;
}

std::uint64_t SatMul(std::uint64_t a, std::uint64_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  const auto wide = static_cast<__uint128_t>(a) * static_cast<__uint128_t>(b);
  if (wide > static_cast<__uint128_t>(~std::uint64_t{0})) return ~std::uint64_t{0};
  return static_cast<std::uint64_t>(wide);
}

Interval InverseAddConst(Interval d, std::uint64_t c) noexcept {
  if (d.IsEmpty()) return Interval::Empty();
  // op = dest - c. Destinations below c are unreachable for a non-negative op,
  // so the effective destination interval is d ∩ [c, +inf).
  if (d.hi < c) return Interval::Empty();
  const std::uint64_t lo = SatSub(d.lo, c);
  const std::uint64_t hi = d.hi - c;
  return Interval{lo, hi};
}

Interval InverseSubLeft(Interval d, std::uint64_t c) noexcept {
  if (d.IsEmpty()) return Interval::Empty();
  // op = dest + c. If even the smallest allowed dest pushes op past the top of
  // the domain, no operand value qualifies.
  const std::uint64_t lo = d.lo + c;
  if (lo < d.lo) return Interval::Empty();  // overflowed
  const std::uint64_t hi = SatAdd(d.hi, c);
  return Interval{lo, hi};
}

Interval InverseSubRight(Interval d, std::uint64_t a) noexcept {
  if (d.IsEmpty()) return Interval::Empty();
  // op = a - dest, valid only while dest <= a (unsigned semantics).
  if (d.lo > a) return Interval::Empty();
  const std::uint64_t hi_dest = d.hi < a ? d.hi : a;  // clamp dest to [d.lo, a]
  return Interval{a - hi_dest, a - d.lo};
}

Interval InverseMulConst(Interval d, std::uint64_t c) noexcept {
  if (d.IsEmpty()) return Interval::Empty();
  if (c == 0) return d.Contains(0) ? Interval::Full() : Interval::Empty();
  // op = dest / c, rounding the lower bound up and the upper bound down.
  const std::uint64_t lo = d.lo / c + (d.lo % c != 0 ? 1 : 0);
  const std::uint64_t hi = d.hi / c;
  if (lo > hi) return Interval::Empty();
  return Interval{lo, hi};
}

Interval InverseDivConst(Interval d, std::uint64_t c) noexcept {
  if (d.IsEmpty()) return Interval::Empty();
  if (c == 0) return Interval::Full();  // division by zero traps elsewhere
  // dest = op / c  =>  op in [dest*c, dest*c + c - 1] for each dest.
  const std::uint64_t lo = SatMul(d.lo, c);
  const std::uint64_t hi = SatAdd(SatMul(d.hi, c), c - 1);
  return Interval{lo, hi};
}

}  // namespace interval_ops

}  // namespace epvf
