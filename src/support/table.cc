#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace epvf {

AsciiTable::AsciiTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void AsciiTable::Print(std::ostream& os) const { os << ToString(); }

std::string AsciiTable::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  if (!footnote_.empty()) os << "note: " << footnote_ << '\n';
  return os.str();
}

std::string AsciiTable::Num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string AsciiTable::Pct(double proportion, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, proportion * 100.0);
  return buf;
}

std::string AsciiTable::PctCI(double rate, double half, int digits) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f%% ± %.*f%%", digits, rate * 100.0, digits, half * 100.0);
  return buf;
}

}  // namespace epvf
