#include "support/logging.h"

#include <cstdio>

namespace epvf {

namespace {
LogLevel g_level = LogLevel::kQuiet;
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogInfo(const std::string& message) {
  if (g_level >= LogLevel::kInfo) std::fprintf(stderr, "[epvf] %s\n", message.c_str());
}

void LogDebug(const std::string& message) {
  if (g_level >= LogLevel::kDebug) std::fprintf(stderr, "[epvf:debug] %s\n", message.c_str());
}

void LogWarn(const std::string& message) {
  std::fprintf(stderr, "[epvf:warn] %s\n", message.c_str());
}

}  // namespace epvf
