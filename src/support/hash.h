// FNV-1a hashing, shared by the artifact store's content addressing and the
// compositional analysis' boundary digests.
#pragma once

#include <cstdint>
#include <string_view>

namespace epvf::support {

inline constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x00000100000001B3ull;

[[nodiscard]] inline std::uint64_t Fnv1a64(std::string_view data,
                                           std::uint64_t seed = kFnvOffset) {
  std::uint64_t hash = seed;
  for (const char c : data) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// Streaming FNV-1a over typed scalar fields — the digest primitive for
/// boundary summaries. Field order is part of the digest; callers that need
/// order-independence sort before folding.
class Hasher {
 public:
  Hasher& Mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (i * 8)) & 0xFF;
      hash_ *= kFnvPrime;
    }
    return *this;
  }
  Hasher& Mix(std::string_view s) {
    hash_ = Fnv1a64(s, hash_);
    return Mix(s.size());  // length-delimit to avoid concatenation collisions
  }
  [[nodiscard]] std::uint64_t Digest() const { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffset;
};

}  // namespace epvf::support
