#include "support/thread_pool.h"

#include "obs/trace.h"

namespace epvf {

namespace {
thread_local bool tls_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(unsigned max_workers)
    : max_workers_(std::min(max_workers, kMaxThreads)) {}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool;
  return pool;
}

unsigned ThreadPool::HardwareJobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

unsigned ThreadPool::ResolveJobs(int jobs) {
  const unsigned resolved = jobs <= 0 ? HardwareJobs() : static_cast<unsigned>(jobs);
  return std::clamp(resolved, 1u, kMaxThreads);
}

bool ThreadPool::OnWorkerThread() { return tls_pool_worker; }

void ThreadPool::EnsureWorkersLocked(unsigned count) {
  count = std::min(count, max_workers_);
  while (workers_.size() < count) {
    try {
      workers_.emplace_back([this] { WorkerLoop(); });
    } catch (...) {
      // Thread creation failed (resource exhaustion): run with what we have.
      break;
    }
  }
}

unsigned ThreadPool::PrepareParticipants(unsigned participants) {
  if (participants <= 1 || OnWorkerThread()) return 1;
  const std::lock_guard<std::mutex> run_lock(run_mutex_);
  EnsureWorkersLocked(participants - 1);
  return std::min<unsigned>(static_cast<unsigned>(workers_.size()) + 1, participants);
}

void ThreadPool::Run(unsigned participants, const std::function<void(unsigned)>& fn) {
  if (participants <= 1 || OnWorkerThread()) {
    fn(0);
    return;
  }
  const std::lock_guard<std::mutex> run_lock(run_mutex_);
  EnsureWorkersLocked(participants - 1);
  const unsigned helpers =
      std::min<unsigned>(static_cast<unsigned>(workers_.size()), participants - 1);
  if (helpers == 0) {
    fn(0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    pending_slots_ = helpers;
    next_participant_ = 1;
  }
  work_cv_.notify_all();
  // The caller counts as a pool participant while it runs its share: a
  // nested Run from inside fn must degrade to inline execution instead of
  // re-entering run_mutex_ on this same thread (self-deadlock). Helpers are
  // always waited for, even on a throw — they hold a reference to fn.
  tls_pool_worker = true;
  std::exception_ptr error;
  try {
    const obs::TraceSpan span("pool", "task");
    fn(0);
  } catch (...) {
    error = std::current_exception();
  }
  tls_pool_worker = false;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_slots_ == 0 && running_ == 0; });
    job_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::WorkerLoop() {
  tls_pool_worker = true;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || pending_slots_ > 0; });
    if (stop_) return;
    --pending_slots_;
    const unsigned participant = next_participant_++;
    const std::function<void(unsigned)>* job = job_;
    ++running_;
    lock.unlock();
    {
      const obs::TraceSpan span("pool", "task");
      (*job)(participant);
    }
    lock.lock();
    --running_;
    if (pending_slots_ == 0 && running_ == 0) done_cv_.notify_one();
  }
}

}  // namespace epvf
