// ASCII table rendering for the bench binaries.
//
// Every bench target regenerates one table or figure from the paper as rows
// on stdout; this helper keeps the formatting consistent (aligned columns,
// optional title and footnote) without each bench reinventing printf layouts.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace epvf {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Adds one row; the row is padded or truncated to the header width.
  void AddRow(std::vector<std::string> cells);

  void SetTitle(std::string title) { title_ = std::move(title); }
  void SetFootnote(std::string footnote) { footnote_ = std::move(footnote); }

  /// Renders with a box-drawing-free layout that is stable under `tee`.
  void Print(std::ostream& os) const;

  [[nodiscard]] std::string ToString() const;

  /// Formats a double with `digits` fractional digits.
  [[nodiscard]] static std::string Num(double value, int digits = 3);
  /// Formats a proportion as a percentage string, e.g. "63.1%".
  [[nodiscard]] static std::string Pct(double proportion, int digits = 1);
  /// Formats "rate ± half" as percentages, the paper's error-bar style.
  [[nodiscard]] static std::string PctCI(double rate, double half, int digits = 1);

 private:
  std::string title_;
  std::string footnote_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace epvf
