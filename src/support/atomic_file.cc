#include "support/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "support/logging.h"

namespace epvf {

bool AtomicWriteFile(const std::string& path, std::string_view data) {
  // The temp file must live in the target's directory: rename(2) is atomic
  // only within one filesystem.
  std::string temp = path + ".tmpXXXXXX";
  std::vector<char> temp_buf(temp.begin(), temp.end());
  temp_buf.push_back('\0');
  const int fd = ::mkstemp(temp_buf.data());
  if (fd < 0) {
    LogWarn("AtomicWriteFile: mkstemp for " + path + " failed: " + std::strerror(errno));
    return false;
  }
  temp.assign(temp_buf.data());

  bool ok = true;
  std::size_t written = 0;
  while (written < data.size()) {
    const ::ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      LogWarn("AtomicWriteFile: write to " + temp + " failed: " + std::strerror(errno));
      ok = false;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: otherwise a crash can promote an empty inode to the
  // final name, which is exactly the torn file this helper exists to prevent.
  if (ok && ::fsync(fd) != 0) {
    LogWarn("AtomicWriteFile: fsync of " + temp + " failed: " + std::strerror(errno));
    ok = false;
  }
  ::close(fd);
  if (ok && ::rename(temp.c_str(), path.c_str()) != 0) {
    LogWarn("AtomicWriteFile: rename to " + path + " failed: " + std::strerror(errno));
    ok = false;
  }
  if (!ok) ::unlink(temp.c_str());
  return ok;
}

std::optional<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return std::move(buffer).str();
}

}  // namespace epvf
