// Child-process spawning with non-blocking reaping — the supervisor layer
// under sharded campaigns.
//
// A sharded campaign runs each shard in its own worker process, and the
// supervisor must observe three distinct endings: a clean exit, a death (a
// nonzero exit or a signal like SIGKILL from the OOM killer), and a hang
// (no progress until a deadline passes). Subprocess wraps the POSIX
// fork/execve/waitpid triple behind that contract: Spawn never blocks, Poll
// reaps without waiting, and Kill + Wait tear a wedged child down. Extra
// environment variables and stdout/stderr redirection cover the worker
// plumbing (per-shard log files, progress-snapshot paths) without touching
// the parent's streams.
#pragma once

#include <sys/types.h>

#include <optional>
#include <string>
#include <vector>

namespace epvf {

/// How a child ended.
struct ExitStatus {
  bool exited = false;  ///< true = normal exit (code), false = killed by signal
  int code = -1;        ///< exit code when `exited`
  int signal = 0;       ///< terminating signal when `!exited`

  [[nodiscard]] bool Success() const { return exited && code == 0; }
  /// "exit 3" or "signal 9" — for diagnostics.
  [[nodiscard]] std::string Describe() const;
};

struct SubprocessOptions {
  std::vector<std::string> argv;  ///< argv[0] is the executable path
  /// Extra NAME=VALUE pairs appended to the parent's environment (later
  /// entries win over inherited ones for most libcs' getenv).
  std::vector<std::string> env;
  /// Redirection targets (created/truncated). Empty = inherit the parent's
  /// stream. Both may name the same file (they then share one descriptor,
  /// so writes interleave without clobbering).
  std::string stdout_path;
  std::string stderr_path;
};

class Subprocess {
 public:
  /// Forks and execs. std::nullopt (after a logged warning) if the fork or a
  /// redirection file fails; an exec failure surfaces as exit code 127 from
  /// Poll/Wait.
  [[nodiscard]] static std::optional<Subprocess> Spawn(const SubprocessOptions& options);

  Subprocess(Subprocess&& other) noexcept;
  Subprocess& operator=(Subprocess&& other) noexcept;
  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;
  /// An unreaped child is killed and reaped — destruction never leaks a
  /// zombie or leaves a stray worker running.
  ~Subprocess();

  /// Non-blocking reap: std::nullopt while the child runs, the final status
  /// once it ended (idempotent afterwards).
  [[nodiscard]] std::optional<ExitStatus> Poll();

  /// Poll with a real readiness wait: blocks until the child ends or
  /// `timeout_seconds` elapse, whichever comes first, then reaps like Poll.
  /// Uses pidfd_open + poll(2) so the wait ends the instant the child exits
  /// (no sleep quantum); on kernels without pidfd support it degrades to a
  /// bounded sleep-poll loop. timeout_seconds <= 0 behaves like Poll().
  [[nodiscard]] std::optional<ExitStatus> PollWithDeadline(double timeout_seconds);

  /// Waits until at least one of `children` is ready to reap or the timeout
  /// elapses. Returns the index of a ready child (its Poll will not return
  /// nullopt), or -1 on timeout / when every child is already reaped. Null
  /// and already-reaped entries are skipped — callers can pass their full
  /// roster each round. One poll(2) over pidfds; same sleep-poll fallback.
  [[nodiscard]] static int WaitAnyReady(const std::vector<Subprocess*>& children,
                                        double timeout_seconds);

  /// Blocks until the child ends.
  ExitStatus Wait();

  /// Sends `signal` (default SIGKILL). The child still must be reaped via
  /// Poll/Wait. No-op after the child was reaped.
  void Kill(int signal = 9);

  [[nodiscard]] pid_t pid() const { return pid_; }
  [[nodiscard]] bool reaped() const { return status_.has_value(); }

 private:
  Subprocess() = default;

  pid_t pid_ = -1;
  std::optional<ExitStatus> status_;
};

}  // namespace epvf
