// Minimal leveled logging. The analysis pipeline is library code, so it never
// prints by default; benches and examples may raise the level for progress
// visibility. Not thread-safe by design — the pipeline is single-threaded and
// the parallel backward-slice exploration (paper section VI-A) shards work
// without shared logging.
#pragma once

#include <string>

namespace epvf {

enum class LogLevel { kQuiet = 0, kInfo = 1, kDebug = 2 };

void SetLogLevel(LogLevel level);
[[nodiscard]] LogLevel GetLogLevel();

void LogInfo(const std::string& message);
void LogDebug(const std::string& message);

/// Warnings are exceptional conditions the user should see even at the
/// default quiet level (e.g. a corrupted cache artifact being discarded), so
/// they always print to stderr.
void LogWarn(const std::string& message);

}  // namespace epvf
