#include "support/statistics.h"

#include <algorithm>
#include <cmath>

namespace epvf {

namespace {
constexpr double kZ95 = 1.959963984540054;
}  // namespace

double ProportionCI::Low() const noexcept { return std::max(0.0, rate - half_width); }
double ProportionCI::High() const noexcept { return std::min(1.0, rate + half_width); }

ProportionCI BinomialCI95(std::uint64_t successes, std::uint64_t trials) noexcept {
  ProportionCI ci;
  ci.successes = successes;
  ci.trials = trials;
  if (trials == 0) return ci;
  const double p = static_cast<double>(successes) / static_cast<double>(trials);
  ci.rate = p;
  ci.half_width = kZ95 * std::sqrt(p * (1.0 - p) / static_cast<double>(trials));
  return ci;
}

ProportionCI WilsonCI95(std::uint64_t successes, std::uint64_t trials) noexcept {
  ProportionCI ci;
  ci.successes = successes;
  ci.trials = trials;
  if (trials == 0) return ci;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = kZ95 * kZ95;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half = (kZ95 * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))) / denom;
  ci.rate = center;
  ci.half_width = half;
  return ci;
}

double WilsonHalfWidth95(double successes, double trials) noexcept {
  if (trials <= 0.0) return 1.0;
  const double p = successes / trials;
  const double z2 = kZ95 * kZ95;
  const double denom = 1.0 + z2 / trials;
  return (kZ95 * std::sqrt(p * (1.0 - p) / trials + z2 / (4.0 * trials * trials))) / denom;
}

double Mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size() - 1);
}

double StdDev(std::span<const double> xs) noexcept { return std::sqrt(Variance(xs)); }

double GeometricMean(std::span<const double> xs, double floor) noexcept {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(std::max(x, floor));
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double NormalizedVariance(std::span<const double> xs) noexcept {
  const double mu = Mean(xs);
  if (mu == 0.0) return 0.0;
  return Variance(xs) / (mu * mu);
}

double PearsonCorrelation(std::span<const double> xs, std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace epvf
