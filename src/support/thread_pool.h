// Shared thread pool and data-parallel primitives for the analysis engine.
//
// The ePVF pipeline's selling point over brute-force fault injection is
// analysis time (paper Table V / Figure 10), and its hot loops — the
// crash-bit mask sweep, the per-use activation walks behind the crash-rate
// estimate, the ACE bit accounting, and the injection campaigns themselves —
// are all embarrassingly parallel. This header provides the one pool every
// stage shares plus two primitives built on it:
//
//   ParallelFor     dynamic chunking via an atomic cursor: workers grab the
//                   next chunk when they finish the last, so early-exiting
//                   items (a campaign's crash runs) never leave a straggler
//                   holding a statically assigned tail.
//   ParallelReduce  chunked map + an ordered serial fold. The chunk width is
//                   a pure function of the range size — never of the thread
//                   count — so partials combine in the same order at every
//                   `jobs` setting and results (including floating point) are
//                   bit-identical across thread counts.
//
// Determinism contract: any computation expressed through these primitives
// with index-addressed writes (ParallelFor) or chunk-ordered folds
// (ParallelReduce) produces identical results at 1, 2 or N threads. The
// analysis stages and campaigns rely on this; tests assert it.
//
// The pool over-subscribes on request: asking for 8 jobs on a 2-core box
// spawns 8 true threads (they time-slice). This keeps the determinism tests
// meaningful on small machines and costs nothing when `jobs` ≤ cores.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace epvf {

class ThreadPool {
 public:
  /// Hard cap on pool workers; larger jobs requests are clamped.
  static constexpr unsigned kMaxThreads = 64;

  explicit ThreadPool(unsigned max_workers = kMaxThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool shared by every analysis stage and campaign.
  /// Workers are spawned lazily, only up to what calls actually request.
  [[nodiscard]] static ThreadPool& Shared();

  /// max(1, std::thread::hardware_concurrency()).
  [[nodiscard]] static unsigned HardwareJobs();

  /// Resolves a user-facing jobs knob: <= 0 means "one job per hardware
  /// core"; the result is clamped to [1, kMaxThreads].
  [[nodiscard]] static unsigned ResolveJobs(int jobs);

  /// True when called from one of this process's pool workers.
  [[nodiscard]] static bool OnWorkerThread();

  /// Invokes `fn(participant)` exactly once for each participant in
  /// [0, participants): participant 0 on the calling thread, the rest on
  /// pool workers. Returns after every participant has finished. Calls from
  /// inside a pool worker degrade to `fn(0)` inline — nested submission is
  /// safe and never deadlocks.
  void Run(unsigned participants, const std::function<void(unsigned)>& fn);

  /// Spawns workers for a `Run(participants, ...)` call and returns how many
  /// participants it will actually use (≤ participants). Use this when the
  /// work must be partitioned per participant before the call.
  [[nodiscard]] unsigned PrepareParticipants(unsigned participants);

 private:
  void WorkerLoop();
  /// Grows the worker set to `count` (capped at max_workers_). Caller must
  /// hold run_mutex_.
  void EnsureWorkersLocked(unsigned count);

  const unsigned max_workers_;
  std::mutex run_mutex_;  ///< serializes Run() calls from distinct threads
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(unsigned)>* job_ = nullptr;
  unsigned pending_slots_ = 0;  ///< helpers yet to pick up the current job
  unsigned next_participant_ = 0;
  unsigned running_ = 0;
  bool stop_ = false;
};

struct ParallelOptions {
  int jobs = 0;           ///< worker threads; <= 0 = one per hardware core
  std::size_t grain = 0;  ///< items per scheduling chunk; 0 = auto
};

namespace parallel_detail {

/// Chunk width for ParallelFor's dynamic scheduler. May depend on `jobs`
/// because per-index writes are order-independent.
inline std::size_t ForGrain(std::size_t count, unsigned jobs, std::size_t requested) {
  if (requested > 0) return requested;
  return std::clamp<std::size_t>(count / (std::size_t{jobs} * 8), 1, 4096);
}

/// Chunk width for ParallelReduce. A pure function of `count` — never of the
/// thread count — so the fold order (and thus any floating-point result) is
/// identical at every `jobs` setting.
inline std::size_t ReduceGrain(std::size_t count, std::size_t requested) {
  if (requested > 0) return requested;
  return std::clamp<std::size_t>(count / 64, 1, 8192);
}

}  // namespace parallel_detail

/// Calls `fn(i)` for every i in [begin, end) across up to `options.jobs`
/// threads, chunks dynamically claimed from an atomic cursor. The first
/// exception thrown by `fn` cancels the remaining chunks and is rethrown on
/// the caller (in-flight chunks still finish).
template <typename Fn>
void ParallelFor(std::size_t begin, std::size_t end, const ParallelOptions& options, Fn&& fn) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  unsigned jobs = ThreadPool::ResolveJobs(options.jobs);
  if (std::size_t{jobs} > count) jobs = static_cast<unsigned>(count);
  if (jobs <= 1 || ThreadPool::OnWorkerThread()) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  const std::size_t grain = parallel_detail::ForGrain(count, jobs, options.grain);
  std::atomic<std::size_t> cursor{begin};
  std::atomic<bool> cancelled{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  const std::function<void(unsigned)> body = [&](unsigned) {
    while (!cancelled.load(std::memory_order_relaxed)) {
      const std::size_t chunk = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (chunk >= end) return;
      const std::size_t chunk_end = std::min(end, chunk + grain);
      try {
        for (std::size_t i = chunk; i < chunk_end; ++i) fn(i);
      } catch (...) {
        cancelled.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        return;
      }
    }
  };
  ThreadPool::Shared().Run(jobs, body);
  if (error) std::rethrow_exception(error);
}

/// Chunked reduction: `map(chunk_begin, chunk_end) -> T` runs in parallel per
/// chunk, then the partials are folded with `combine(acc, partial)` serially
/// in chunk order. Chunking depends only on the range size, so the result is
/// bit-identical across thread counts even for non-associative (floating
/// point) combines.
template <typename T, typename MapFn, typename CombineFn>
[[nodiscard]] T ParallelReduce(std::size_t begin, std::size_t end, T identity, MapFn&& map,
                               CombineFn&& combine, const ParallelOptions& options = {}) {
  if (begin >= end) return identity;
  const std::size_t count = end - begin;
  const std::size_t grain = parallel_detail::ReduceGrain(count, options.grain);
  const std::size_t num_chunks = (count + grain - 1) / grain;
  std::vector<T> partials(num_chunks, identity);
  ParallelFor(0, num_chunks, ParallelOptions{.jobs = options.jobs, .grain = 1},
              [&](std::size_t c) {
                const std::size_t chunk_begin = begin + c * grain;
                partials[c] = map(chunk_begin, std::min(end, chunk_begin + grain));
              });
  T result = std::move(identity);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    result = combine(std::move(result), partials[c]);
  }
  return result;
}

}  // namespace epvf
