// Closed intervals over the unsigned 64-bit address/value domain, with the
// *inverse* arithmetic the ePVF propagation model needs.
//
// The crash model (paper section III-D) yields, for every memory access, the
// interval of addresses that do NOT raise a segmentation fault. The
// propagation model (section III-C, Table III) then walks the backward slice
// of the address computation and, at each instruction `dest = op1 <op> op2`,
// derives the interval of values each operand may take while keeping `dest`
// inside its allowed interval — i.e. the inverse image of the destination
// interval under the instruction semantics, with the other operand fixed at
// its observed run-time value. These helpers implement those inverse images
// with saturation at the domain boundaries, mirroring the paper's assumption
// that address-slice values behave as non-negative integers.
#pragma once

#include <cstdint>
#include <string>

namespace epvf {

/// A closed interval [lo, hi] of std::uint64_t values. An empty interval is
/// canonically represented as lo == 1, hi == 0.
struct Interval {
  std::uint64_t lo = 0;
  std::uint64_t hi = ~std::uint64_t{0};

  /// The full domain [0, 2^64-1] — "no constraint".
  [[nodiscard]] static constexpr Interval Full() noexcept { return Interval{}; }

  /// The empty interval — "every value violates the constraint".
  [[nodiscard]] static constexpr Interval Empty() noexcept { return Interval{1, 0}; }

  /// Interval holding exactly one value.
  [[nodiscard]] static constexpr Interval Singleton(std::uint64_t v) noexcept {
    return Interval{v, v};
  }

  [[nodiscard]] constexpr bool IsEmpty() const noexcept { return lo > hi; }
  [[nodiscard]] constexpr bool IsFull() const noexcept {
    return lo == 0 && hi == ~std::uint64_t{0};
  }
  [[nodiscard]] constexpr bool Contains(std::uint64_t v) const noexcept {
    return lo <= v && v <= hi;
  }

  /// Intersection; intersecting with an empty interval yields empty.
  [[nodiscard]] constexpr Interval Intersect(Interval other) const noexcept {
    if (IsEmpty() || other.IsEmpty()) return Empty();
    const std::uint64_t nlo = lo > other.lo ? lo : other.lo;
    const std::uint64_t nhi = hi < other.hi ? hi : other.hi;
    if (nlo > nhi) return Empty();
    return Interval{nlo, nhi};
  }

  constexpr bool operator==(const Interval&) const noexcept = default;

  [[nodiscard]] std::string ToString() const;
};

/// Inverse images of `dest`'s allowed interval for each Table III row.
/// All functions answer: "which values of the unknown operand keep `dest`
/// inside `d`, given the other operand's observed value?" An empty result
/// means no value of the operand satisfies the constraint (so every bit of it
/// is crash-causing); a full result means the constraint says nothing.
namespace interval_ops {

/// dest = op + c  =>  op in [d.lo - c, d.hi - c]   (Table III row 1)
[[nodiscard]] Interval InverseAddConst(Interval d, std::uint64_t c) noexcept;

/// dest = op - c  =>  op in [d.lo + c, d.hi + c]   (Table III row 2, op1)
[[nodiscard]] Interval InverseSubLeft(Interval d, std::uint64_t c) noexcept;

/// dest = a - op  =>  op in [a - d.hi, a - d.lo]   (Table III row 2, op2)
[[nodiscard]] Interval InverseSubRight(Interval d, std::uint64_t a) noexcept;

/// dest = op * c  =>  op in [ceil(d.lo/c), floor(d.hi/c)]   (Table III row 3)
/// c == 0 makes dest identically 0: returns Full if 0 is allowed, else Empty.
[[nodiscard]] Interval InverseMulConst(Interval d, std::uint64_t c) noexcept;

/// dest = op / c (unsigned) =>  op in [d.lo*c, d.hi*c + c - 1]  (Table III row 4)
[[nodiscard]] Interval InverseDivConst(Interval d, std::uint64_t c) noexcept;

/// Saturating helpers used by the inverse images above.
[[nodiscard]] std::uint64_t SatAdd(std::uint64_t a, std::uint64_t b) noexcept;
[[nodiscard]] std::uint64_t SatSub(std::uint64_t a, std::uint64_t b) noexcept;
[[nodiscard]] std::uint64_t SatMul(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace interval_ops

}  // namespace epvf
