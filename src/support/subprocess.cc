#include "support/subprocess.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "support/logging.h"

extern char** environ;

namespace epvf {

std::string ExitStatus::Describe() const {
  if (exited) return "exit " + std::to_string(code);
  return "signal " + std::to_string(signal);
}

namespace {

ExitStatus FromWaitStatus(int status) {
  ExitStatus out;
  if (WIFEXITED(status)) {
    out.exited = true;
    out.code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    out.exited = false;
    out.signal = WTERMSIG(status);
  } else {
    // Stopped/continued never reaches us (no WUNTRACED); treat anything
    // unexpected as an abnormal end.
    out.exited = true;
    out.code = -1;
  }
  return out;
}

/// pidfd_open(2) via syscall(2) — glibc grew the wrapper late, and the raw
/// call degrades cleanly (-1/ENOSYS) on pre-5.3 kernels. A pidfd on an
/// unreaped child (even a zombie) polls readable once the child exits, which
/// is exactly the readiness signal a supervisor loop wants.
int OpenPidFd(pid_t pid) {
#ifdef SYS_pidfd_open
  return static_cast<int>(::syscall(SYS_pidfd_open, pid, 0u));
#else
  errno = ENOSYS;
  return -1;
#endif
}

/// Sleep-poll fallback for kernels without pidfd_open: checks each child with
/// WNOHANG at a 10 ms cadence until one is ready or the deadline passes.
/// Returns a ready index or -1.
int WaitAnySleepPoll(const std::vector<Subprocess*>& children, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_seconds));
  while (true) {
    for (std::size_t i = 0; i < children.size(); ++i) {
      Subprocess* child = children[i];
      if (child == nullptr || child->reaped() || child->pid() < 0) continue;
      int status = 0;
      // WNOWAIT keeps the child reapable for the caller's own Poll().
      siginfo_t info;
      info.si_pid = 0;
      if (::waitid(P_PID, static_cast<id_t>(child->pid()), &info, WEXITED | WNOHANG | WNOWAIT) ==
              0 &&
          info.si_pid != 0) {
        return static_cast<int>(i);
      }
      (void)status;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return -1;
    const auto step = std::min(deadline - now, std::chrono::steady_clock::duration(
                                                   std::chrono::milliseconds(10)));
    std::this_thread::sleep_for(step);
  }
}

}  // namespace

std::optional<Subprocess> Subprocess::Spawn(const SubprocessOptions& options) {
  if (options.argv.empty()) {
    LogWarn("Subprocess: empty argv");
    return std::nullopt;
  }

  // Everything the child needs is materialized before fork(): between fork
  // and execve only async-signal-safe calls (open/dup2/execve/_exit) run, so
  // spawning from a process with live threads (the shared pool) is safe.
  std::vector<char*> argv;
  argv.reserve(options.argv.size() + 1);
  for (const std::string& arg : options.argv) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);

  std::vector<std::string> env_storage;
  std::vector<char*> envp;
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) envp.push_back(*e);
  env_storage.reserve(options.env.size());
  for (const std::string& extra : options.env) {
    env_storage.push_back(extra);
    envp.push_back(const_cast<char*>(env_storage.back().c_str()));
  }
  envp.push_back(nullptr);

  // Open redirection targets in the parent so a bad path fails loudly here
  // instead of as a silent exit-127 child.
  int stdout_fd = -1;
  int stderr_fd = -1;
  if (!options.stdout_path.empty()) {
    stdout_fd = ::open(options.stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (stdout_fd < 0) {
      LogWarn("Subprocess: cannot open " + options.stdout_path + ": " + std::strerror(errno));
      return std::nullopt;
    }
  }
  if (!options.stderr_path.empty()) {
    if (options.stderr_path == options.stdout_path) {
      stderr_fd = stdout_fd;
    } else {
      stderr_fd = ::open(options.stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (stderr_fd < 0) {
        LogWarn("Subprocess: cannot open " + options.stderr_path + ": " + std::strerror(errno));
        ::close(stdout_fd);
        return std::nullopt;
      }
    }
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    LogWarn(std::string("Subprocess: fork failed: ") + std::strerror(errno));
    if (stdout_fd >= 0) ::close(stdout_fd);
    if (stderr_fd >= 0 && stderr_fd != stdout_fd) ::close(stderr_fd);
    return std::nullopt;
  }
  if (pid == 0) {
    if (stdout_fd >= 0) ::dup2(stdout_fd, STDOUT_FILENO);
    if (stderr_fd >= 0) ::dup2(stderr_fd, STDERR_FILENO);
    ::execve(argv[0], argv.data(), envp.data());
    _exit(127);  // exec failed — the conventional shell "command not found" code
  }
  if (stdout_fd >= 0) ::close(stdout_fd);
  if (stderr_fd >= 0 && stderr_fd != stdout_fd) ::close(stderr_fd);

  Subprocess child;
  child.pid_ = pid;
  return child;
}

Subprocess::Subprocess(Subprocess&& other) noexcept
    : pid_(other.pid_), status_(std::move(other.status_)) {
  other.pid_ = -1;
  other.status_.reset();
}

Subprocess& Subprocess::operator=(Subprocess&& other) noexcept {
  if (this == &other) return *this;
  if (pid_ >= 0 && !status_.has_value()) {
    Kill();
    Wait();
  }
  pid_ = other.pid_;
  status_ = std::move(other.status_);
  other.pid_ = -1;
  other.status_.reset();
  return *this;
}

Subprocess::~Subprocess() {
  if (pid_ < 0 || status_.has_value()) return;
  Kill();
  Wait();
}

std::optional<ExitStatus> Subprocess::Poll() {
  if (status_.has_value()) return status_;
  if (pid_ < 0) return std::nullopt;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r == 0) return std::nullopt;  // still running
  if (r < 0) {
    // ECHILD etc. — the child is gone but unobservable; report abnormal end.
    status_ = ExitStatus{.exited = true, .code = -1, .signal = 0};
    return status_;
  }
  status_ = FromWaitStatus(status);
  return status_;
}

std::optional<ExitStatus> Subprocess::PollWithDeadline(double timeout_seconds) {
  if (status_.has_value() || pid_ < 0 || timeout_seconds <= 0) return Poll();
  std::vector<Subprocess*> self{this};
  if (WaitAnyReady(self, timeout_seconds) == 0) return Poll();
  return Poll();  // timeout — one last non-blocking check closes the race
}

int Subprocess::WaitAnyReady(const std::vector<Subprocess*>& children, double timeout_seconds) {
  std::vector<struct pollfd> fds;
  std::vector<int> index_of_fd;
  fds.reserve(children.size());
  bool pidfd_ok = true;
  for (std::size_t i = 0; i < children.size(); ++i) {
    const Subprocess* child = children[i];
    if (child == nullptr || child->reaped() || child->pid() < 0) continue;
    const int fd = OpenPidFd(child->pid());
    if (fd < 0) {
      // ENOSYS (old kernel) or EMFILE: tear down what we opened and fall
      // back to the sleep-poll loop for the whole roster.
      pidfd_ok = false;
      break;
    }
    fds.push_back({.fd = fd, .events = POLLIN, .revents = 0});
    index_of_fd.push_back(static_cast<int>(i));
  }

  int ready = -1;
  if (pidfd_ok) {
    if (!fds.empty()) {
      const int timeout_ms =
          timeout_seconds <= 0
              ? 0
              : static_cast<int>(std::min(timeout_seconds * 1000.0, 2147483000.0));
      int r;
      do {
        r = ::poll(fds.data(), fds.size(), timeout_ms);
      } while (r < 0 && errno == EINTR);
      if (r > 0) {
        for (std::size_t i = 0; i < fds.size(); ++i) {
          if (fds[i].revents != 0) {
            ready = index_of_fd[i];
            break;
          }
        }
      }
    }
    for (const struct pollfd& p : fds) ::close(p.fd);
    return ready;
  }
  for (const struct pollfd& p : fds) ::close(p.fd);
  return WaitAnySleepPoll(children, timeout_seconds);
}

ExitStatus Subprocess::Wait() {
  if (status_.has_value()) return *status_;
  int status = 0;
  while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
  }
  status_ = FromWaitStatus(status);
  return *status_;
}

void Subprocess::Kill(int signal) {
  if (pid_ < 0 || status_.has_value()) return;
  ::kill(pid_, signal);
}

}  // namespace epvf
