// GraphBuilder: constructs the DDG online while the interpreter runs.
//
// Implements the construction rules of paper section III-A as a TraceSink:
// one register node per dynamic def, one memory node per store ("we create
// new DDG nodes for each newly written memory address"), interned nodes for
// constants and global addresses, data edges from source operands, and
// virtual edges linking memory accesses to their addressing registers.
// Calls/returns alias rather than copy: a callee's parameter registers map to
// the caller's argument nodes and a call's result register maps to the
// callee's returned node, so slices flow through function boundaries without
// inflating the register bit totals.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ddg/graph.h"
#include "vm/trace.h"

namespace epvf::ddg {

class GraphBuilder final : public vm::TraceSink {
 public:
  explicit GraphBuilder(const ir::Module& module);

  /// Moves the finished graph out; the builder must not be reused after.
  [[nodiscard]] Graph Take() { return std::move(graph_); }
  [[nodiscard]] const Graph& graph() const { return graph_; }

  // --- vm::TraceSink ---------------------------------------------------------
  void OnInstruction(const vm::DynContext& ctx) override;
  void OnEnterFunction(std::uint32_t function_index) override;
  void OnExitFunction(bool has_value) override;

 private:
  struct ShadowFrame {
    std::vector<NodeId> reg_nodes;
  };
  struct PendingCall {
    std::uint32_t result_reg = ir::kInvalidIndex;
  };

  NodeId ConstantNode(std::uint32_t constant_index, std::uint64_t value, std::uint8_t width);
  NodeId GlobalNode(std::uint32_t global_index, std::uint64_t value);
  NodeId OperandNode(const vm::DynContext& ctx, std::size_t slot);

  const ir::Module& module_;
  Graph graph_;
  std::vector<ShadowFrame> shadows_;
  std::vector<PendingCall> call_stack_;
  std::vector<NodeId> pending_args_;
  NodeId pending_ret_node_ = kNoNode;
  std::unordered_map<std::uint64_t, NodeId> memory_writer_;  ///< byte addr -> memory node
  std::unordered_map<std::uint32_t, NodeId> constant_nodes_;
  std::unordered_map<std::uint32_t, NodeId> global_nodes_;
};

}  // namespace epvf::ddg
