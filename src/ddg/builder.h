// GraphBuilder: constructs the DDG online while the interpreter runs.
//
// Implements the construction rules of paper section III-A as a TraceSink:
// one register node per dynamic def, one memory node per store ("we create
// new DDG nodes for each newly written memory address"), interned nodes for
// constants and global addresses, data edges from source operands, and
// virtual edges linking memory accesses to their addressing registers.
// Calls/returns alias rather than copy: a callee's parameter registers map to
// the caller's argument nodes and a call's result register maps to the
// callee's returned node, so slices flow through function boundaries without
// inflating the register bit totals.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ddg/graph.h"
#include "vm/trace.h"

namespace epvf::ddg {

/// Byte-granular shadow of memory mapping each address to the node of its
/// last writer. Keyed by 4 KiB page with a dense NodeId array per page: the
/// DDG build touches every load/store byte, so per-byte hashing (the old
/// `unordered_map<addr, NodeId>`) dominated construction — a paged array
/// costs one hash per page (usually amortized away by the MRU cache) and a
/// plain indexed store per byte.
class WriterShadow {
 public:
  static constexpr std::uint64_t kPageBits = 12;
  static constexpr std::uint64_t kPageBytes = 1ull << kPageBits;

  /// The last writer of `addr`, or kNoNode.
  [[nodiscard]] NodeId Lookup(std::uint64_t addr) const {
    const Page* page = FindPage(addr >> kPageBits);
    return page == nullptr ? kNoNode : (*page)[addr & (kPageBytes - 1)];
  }

  /// Records `node` as the writer of `size` bytes at `addr`.
  void Record(std::uint64_t addr, std::uint64_t size, NodeId node) {
    while (size > 0) {
      Page& page = TouchPage(addr >> kPageBits);
      std::uint64_t offset = addr & (kPageBytes - 1);
      const std::uint64_t chunk = std::min(size, kPageBytes - offset);
      for (std::uint64_t b = 0; b < chunk; ++b) page[offset + b] = node;
      addr += chunk;
      size -= chunk;
    }
  }

 private:
  using Page = std::vector<NodeId>;

  [[nodiscard]] const Page* FindPage(std::uint64_t page_index) const;
  Page& TouchPage(std::uint64_t page_index);

  // Pages are owned by the map; the MRU cache stays valid across rehashes
  // because it points at the heap-allocated page storage, not into the map.
  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages_;
  mutable std::uint64_t cached_index_ = ~std::uint64_t{0};
  mutable Page* cached_page_ = nullptr;
};

class GraphBuilder final : public vm::TraceSink {
 public:
  explicit GraphBuilder(const ir::Module& module);

  /// Moves the finished graph out; the builder must not be reused after.
  [[nodiscard]] Graph Take() { return std::move(graph_); }
  [[nodiscard]] const Graph& graph() const { return graph_; }

  // --- vm::TraceSink ---------------------------------------------------------
  void OnInstruction(const vm::DynContext& ctx) override;
  void OnEnterFunction(std::uint32_t function_index) override;
  void OnExitFunction(bool has_value) override;

 private:
  struct ShadowFrame {
    std::vector<NodeId> reg_nodes;
  };
  struct PendingCall {
    std::uint32_t result_reg = ir::kInvalidIndex;
  };

  NodeId ConstantNode(std::uint32_t constant_index, std::uint64_t value, std::uint8_t width);
  NodeId GlobalNode(std::uint32_t global_index, std::uint64_t value);
  NodeId OperandNode(const vm::DynContext& ctx, std::size_t slot);

  const ir::Module& module_;
  Graph graph_;
  std::vector<ShadowFrame> shadows_;
  std::vector<PendingCall> call_stack_;
  std::vector<NodeId> pending_args_;
  NodeId pending_ret_node_ = kNoNode;
  WriterShadow memory_writer_;  ///< byte addr -> last-writing memory node
  std::unordered_map<std::uint32_t, NodeId> constant_nodes_;
  std::unordered_map<std::uint32_t, NodeId> global_nodes_;
};

}  // namespace epvf::ddg
