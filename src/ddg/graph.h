// The Dynamic Dependency Graph (DDG).
//
// Paper section III-A: "the DDG is a representation of data flow in the
// program, and is constructed based on the program's dynamic instruction
// trace. In the DDG, a vertex can be a register, a memory address or even a
// constant value. An edge records the instruction and links source
// operand(s) to destination operand(s)." We add the paper's *virtual edges*
// between memory nodes / loads and the registers used to address them, which
// is what lets the ACE traversal retain addressing registers and lets the
// crash model find the backward slice of every address computation.
//
// Storage is pooled and index-based: graphs routinely hold one node per
// executed instruction, so nodes and edge lists live in flat vectors rather
// than per-node allocations (the paper's Python prototype took hours on
// ~1M-node graphs; section VI-A explicitly calls for a tuned C++
// implementation, which this is).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ir/module.h"

namespace epvf::ddg {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = 0xFFFFFFFFu;
inline constexpr std::uint32_t kNoDyn = 0xFFFFFFFFu;

enum class NodeKind : std::uint8_t {
  kRegister,  ///< an SSA register instance (one per dynamic def)
  kMemory,    ///< one memory version (created by each store)
  kConstant,  ///< interned constant operand
  kGlobal,    ///< interned global-address operand
};

struct Node {
  NodeKind kind = NodeKind::kRegister;
  std::uint8_t width = 0;          ///< bit width for ACE accounting
  std::uint32_t dyn_index = kNoDyn;  ///< producing dynamic instruction
  std::uint64_t value = 0;         ///< observed payload in the golden run
};

/// Predecessor list of a node; bit i of `virtual_mask` marks pred i as a
/// virtual (addressing) edge rather than a data edge.
struct PredRange {
  std::uint32_t offset = 0;
  std::uint8_t count = 0;
  std::uint8_t virtual_mask = 0;
};

/// Per-dynamic-instruction record: identity, operand provenance and values.
struct DynInstr {
  ir::StaticInstrId sid;
  NodeId result_node = kNoNode;  ///< register node, or memory node for stores
  std::uint32_t operands_offset = 0;
  std::uint8_t num_operands = 0;
  std::uint8_t selected_operand = 0xFF;  ///< phi: taken incoming slot
};

/// One load/store event with its probe data (paper section III-D): the
/// memory-map version and ESP captured at the access, from which
/// CHECK_BOUNDARY recovers the segment boundaries of that moment.
struct AccessRecord {
  std::uint32_t dyn_index = 0;
  NodeId addr_node = kNoNode;
  std::uint64_t addr = 0;
  std::uint32_t size = 0;
  std::uint64_t map_version = 0;
  std::uint64_t esp = 0;
  bool is_store = false;
};

class Graph {
 public:
  explicit Graph(const ir::Module* module = nullptr) : module_(module) {}

  [[nodiscard]] const ir::Module& module() const { return *module_; }

  // --- nodes -----------------------------------------------------------------
  [[nodiscard]] std::size_t NumNodes() const { return nodes_.size(); }
  [[nodiscard]] const Node& GetNode(NodeId id) const { return nodes_[id]; }

  [[nodiscard]] std::span<const NodeId> Preds(NodeId id) const {
    const PredRange& r = pred_ranges_[id];
    return {pred_pool_.data() + r.offset, r.count};
  }
  [[nodiscard]] bool PredIsVirtual(NodeId id, unsigned pred_index) const {
    return (pred_ranges_[id].virtual_mask >> pred_index) & 1u;
  }

  /// Creates a node whose preds are `preds`; bit i of `virtual_mask` marks
  /// pred i as virtual. Returns the new id.
  NodeId AddNode(const Node& node, std::span<const NodeId> preds, std::uint8_t virtual_mask = 0);

  // --- dynamic instructions ------------------------------------------------
  [[nodiscard]] std::size_t NumDynInstrs() const { return dyn_.size(); }
  [[nodiscard]] const DynInstr& GetDyn(std::uint32_t dyn_index) const { return dyn_[dyn_index]; }

  [[nodiscard]] std::span<const NodeId> OperandNodes(std::uint32_t dyn_index) const {
    const DynInstr& d = dyn_[dyn_index];
    return {operand_node_pool_.data() + d.operands_offset, d.num_operands};
  }
  [[nodiscard]] std::span<const std::uint64_t> OperandValues(std::uint32_t dyn_index) const {
    const DynInstr& d = dyn_[dyn_index];
    return {operand_value_pool_.data() + d.operands_offset, d.num_operands};
  }

  /// The static instruction a dynamic instruction executes.
  [[nodiscard]] const ir::Instruction& InstructionOf(const DynInstr& d) const {
    return module_->functions[d.sid.function].blocks[d.sid.block].instructions[d.sid.instr];
  }
  [[nodiscard]] const ir::Instruction& InstructionAt(std::uint32_t dyn_index) const {
    return InstructionOf(dyn_[dyn_index]);
  }

  void AddDynInstr(const DynInstr& header, std::span<const NodeId> operand_nodes,
                   std::span<const std::uint64_t> operand_values);

  // --- accesses & roots -------------------------------------------------------
  [[nodiscard]] const std::vector<AccessRecord>& accesses() const { return accesses_; }
  void AddAccess(const AccessRecord& access) { accesses_.push_back(access); }

  /// Output roots: the operand nodes of output-intrinsic calls, in program
  /// order (the ordering matters for the ACE-graph sampling of section IV-E).
  [[nodiscard]] const std::vector<NodeId>& output_roots() const { return output_roots_; }
  void AddOutputRoot(NodeId node) { output_roots_.push_back(node); }

  /// Control roots: conditional-branch condition nodes. The paper's model
  /// conservatively treats every branch as SDC-prone when flipped ("the ePVF
  /// analysis assumes that all branches lead to SDCs", section VI-B), so
  /// branch conditions root the ACE analysis alongside the outputs.
  [[nodiscard]] const std::vector<NodeId>& control_roots() const { return control_roots_; }
  void AddControlRoot(NodeId node) { control_roots_.push_back(node); }

  /// Output + control roots merged in trace order and de-duplicated — the
  /// root population the sampling estimator draws from.
  [[nodiscard]] std::vector<NodeId> OrderedAceRoots() const;

  /// Total ACE-accountable bits: the sum of widths of all register nodes —
  /// the denominator of Eq. 1/2 for the "used registers" resource.
  [[nodiscard]] std::uint64_t TotalRegisterBits() const;
  [[nodiscard]] std::uint64_t NumRegisterNodes() const;

  // --- artifact-store access ---------------------------------------------------
  /// The complete flat storage of a graph — what the binary artifact store
  /// (src/store) persists and restores. The arrays are exactly the private
  /// members below; a Storage rebuilt from a verified artifact plus the
  /// module it was traced from reproduces the graph bit for bit.
  struct Storage {
    std::vector<Node> nodes;
    std::vector<PredRange> pred_ranges;
    std::vector<NodeId> pred_pool;
    std::vector<DynInstr> dyn;
    std::vector<NodeId> operand_node_pool;
    std::vector<std::uint64_t> operand_value_pool;
    std::vector<AccessRecord> accesses;
    std::vector<NodeId> output_roots;
    std::vector<NodeId> control_roots;
    std::uint64_t dropped_load_preds = 0;
  };

  // Read-only views of the flat arrays, for serialization.
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<PredRange>& pred_ranges() const { return pred_ranges_; }
  [[nodiscard]] const std::vector<NodeId>& pred_pool() const { return pred_pool_; }
  [[nodiscard]] const std::vector<DynInstr>& dyn_instrs() const { return dyn_; }
  [[nodiscard]] const std::vector<NodeId>& operand_node_pool() const {
    return operand_node_pool_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& operand_value_pool() const {
    return operand_value_pool_;
  }

  /// Rebuilds a graph by adopting deserialized storage. `module` must be the
  /// module the graph was originally built from (the cache key fingerprints
  /// it) and the arrays mutually consistent — ValidateStorage checks the
  /// structural invariants a loader should enforce before adopting.
  [[nodiscard]] static Graph FromStorage(const ir::Module* module, Storage storage);

  /// Structural consistency of deserialized storage against `module`: array
  /// sizes agree, pool ranges and node/dyn references are in bounds, and
  /// every static instruction id resolves. Cheap (single pass), so loaders
  /// can run it on every cache hit.
  [[nodiscard]] static bool ValidateStorage(const ir::Module& module, const Storage& storage);

  // --- construction diagnostics ----------------------------------------------
  /// Distinct memory-version predecessors a load had to drop because its pred
  /// list was full (the 8-slot PredRange keeps 7 data slots + the virtual
  /// addressing edge). Nonzero means some loads under-report their slices —
  /// previously this happened silently.
  [[nodiscard]] std::uint64_t dropped_load_preds() const { return dropped_load_preds_; }
  void NoteDroppedLoadPred() { dropped_load_preds_ += 1; }

 private:
  const ir::Module* module_;
  std::vector<Node> nodes_;
  std::vector<PredRange> pred_ranges_;
  std::vector<NodeId> pred_pool_;
  std::vector<DynInstr> dyn_;
  std::vector<NodeId> operand_node_pool_;
  std::vector<std::uint64_t> operand_value_pool_;
  std::vector<AccessRecord> accesses_;
  std::vector<NodeId> output_roots_;
  std::vector<NodeId> control_roots_;
  std::uint64_t dropped_load_preds_ = 0;
};

}  // namespace epvf::ddg
