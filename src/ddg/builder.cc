#include "ddg/builder.h"

#include <array>
#include <stdexcept>

namespace epvf::ddg {

namespace {
using ir::Opcode;
}  // namespace

const WriterShadow::Page* WriterShadow::FindPage(std::uint64_t page_index) const {
  if (page_index == cached_index_) return cached_page_;
  const auto it = pages_.find(page_index);
  if (it == pages_.end()) return nullptr;
  cached_index_ = page_index;
  cached_page_ = it->second.get();
  return cached_page_;
}

WriterShadow::Page& WriterShadow::TouchPage(std::uint64_t page_index) {
  if (page_index == cached_index_) return *cached_page_;
  std::unique_ptr<Page>& slot = pages_[page_index];
  if (slot == nullptr) slot = std::make_unique<Page>(kPageBytes, kNoNode);
  cached_index_ = page_index;
  cached_page_ = slot.get();
  return *slot;
}

GraphBuilder::GraphBuilder(const ir::Module& module) : module_(module), graph_(&module) {}

NodeId GraphBuilder::ConstantNode(std::uint32_t constant_index, std::uint64_t value,
                                  std::uint8_t width) {
  const auto it = constant_nodes_.find(constant_index);
  if (it != constant_nodes_.end()) return it->second;
  Node node;
  node.kind = NodeKind::kConstant;
  node.width = width;
  node.value = value;
  const NodeId id = graph_.AddNode(node, {});
  constant_nodes_.emplace(constant_index, id);
  return id;
}

NodeId GraphBuilder::GlobalNode(std::uint32_t global_index, std::uint64_t value) {
  const auto it = global_nodes_.find(global_index);
  if (it != global_nodes_.end()) return it->second;
  Node node;
  node.kind = NodeKind::kGlobal;
  node.width = 64;
  node.value = value;
  const NodeId id = graph_.AddNode(node, {});
  global_nodes_.emplace(global_index, id);
  return id;
}

NodeId GraphBuilder::OperandNode(const vm::DynContext& ctx, std::size_t slot) {
  const ir::ValueRef ref = ctx.inst->operands[slot];
  switch (ref.kind) {
    case ir::ValueKind::kRegister:
      return shadows_.back().reg_nodes[ref.index];
    case ir::ValueKind::kConstant: {
      const ir::Constant& c = module_.GetConstant(ref.index);
      return ConstantNode(ref.index, ctx.operand_values[slot],
                          static_cast<std::uint8_t>(c.type.BitWidth()));
    }
    case ir::ValueKind::kGlobal:
      return GlobalNode(ref.index, ctx.operand_values[slot]);
    case ir::ValueKind::kNone:
      break;
  }
  throw std::logic_error("GraphBuilder: bad operand reference");
}

void GraphBuilder::OnEnterFunction(std::uint32_t function_index) {
  const ir::Function& fn = module_.functions[function_index];
  ShadowFrame frame;
  frame.reg_nodes.assign(fn.registers.size(), kNoNode);
  // Parameters alias the caller's argument nodes (no new defs).
  for (std::uint32_t i = 0; i < fn.num_params && i < pending_args_.size(); ++i) {
    frame.reg_nodes[i] = pending_args_[i];
  }
  pending_args_.clear();
  shadows_.push_back(std::move(frame));
}

void GraphBuilder::OnExitFunction(bool has_value) {
  shadows_.pop_back();
  if (call_stack_.empty()) return;  // entry-function exit
  const PendingCall call = call_stack_.back();
  call_stack_.pop_back();
  if (has_value && call.result_reg != ir::kInvalidIndex && !shadows_.empty()) {
    shadows_.back().reg_nodes[call.result_reg] = pending_ret_node_;
  }
  pending_ret_node_ = kNoNode;
}

void GraphBuilder::OnInstruction(const vm::DynContext& ctx) {
  const ir::Instruction& inst = *ctx.inst;
  const auto dyn_index = static_cast<std::uint32_t>(ctx.dyn_index);

  // --- operand provenance ---------------------------------------------------
  std::array<NodeId, 8> op_nodes{};
  std::array<std::uint64_t, 8> op_values{};
  const std::size_t num_ops = inst.operands.size();
  if (num_ops > op_nodes.size()) {
    throw std::logic_error("GraphBuilder: instruction with more than 8 operands");
  }
  for (std::size_t i = 0; i < num_ops; ++i) {
    const bool is_phi_unselected = inst.op == Opcode::kPhi && i != ctx.selected_operand;
    op_nodes[i] = is_phi_unselected ? kNoNode : OperandNode(ctx, i);
    op_values[i] = ctx.operand_values[i];
  }

  DynInstr header;
  header.sid = ctx.sid;
  header.selected_operand = inst.op == Opcode::kPhi
                                ? static_cast<std::uint8_t>(ctx.selected_operand)
                                : static_cast<std::uint8_t>(0xFF);

  // --- result node construction ----------------------------------------------
  auto make_register_node = [&](std::span<const NodeId> preds, std::uint8_t virtual_mask) {
    Node node;
    node.kind = NodeKind::kRegister;
    node.width = static_cast<std::uint8_t>(inst.type.BitWidth());
    node.dyn_index = dyn_index;
    node.value = ctx.result_bits;
    return graph_.AddNode(node, preds, virtual_mask);
  };

  switch (inst.op) {
    case Opcode::kStore: {
      // One new memory node per store ("newly written memory address").
      const NodeId value_node = op_nodes[0];
      const NodeId addr_node = op_nodes[1];
      Node node;
      node.kind = NodeKind::kMemory;
      node.width = static_cast<std::uint8_t>(
          module_.TypeOf(*ctx.fn, inst.operands[0]).BitWidth());
      node.dyn_index = dyn_index;
      node.value = ctx.operand_values[0];
      // Data edge from the stored value, virtual edge from the address
      // register (paper: "we create an edge in the DDG to link the memory
      // address used and the register... this edge is virtual").
      const std::array<NodeId, 2> preds = {value_node, addr_node};
      const NodeId mem_node = graph_.AddNode(node, preds, /*virtual_mask=*/0b10);
      memory_writer_.Record(ctx.mem_addr, ctx.mem_size, mem_node);
      header.result_node = mem_node;
      graph_.AddAccess(AccessRecord{dyn_index, addr_node, ctx.mem_addr, ctx.mem_size,
                                    ctx.map_version, ctx.esp, /*is_store=*/true});
      break;
    }
    case Opcode::kLoad: {
      const NodeId addr_node = op_nodes[0];
      // Collect the distinct memory versions this load reads. The PredRange
      // keeps at most 7 data slots (+ the virtual addressing edge); versions
      // beyond that are dropped, but now counted into a graph stat instead of
      // vanishing silently (surfaced by bench_structure_report).
      std::array<NodeId, 8> preds{};
      std::uint8_t count = 0;
      for (std::uint64_t b = 0; b < ctx.mem_size; ++b) {
        const NodeId writer = memory_writer_.Lookup(ctx.mem_addr + b);
        if (writer == kNoNode) continue;
        bool seen = false;
        for (std::uint8_t k = 0; k < count; ++k) {
          seen = seen || preds[k] == writer;
        }
        if (seen) continue;
        if (count < 7) {
          preds[count++] = writer;
        } else {
          graph_.NoteDroppedLoadPred();
        }
      }
      preds[count] = addr_node;
      const auto virtual_mask = static_cast<std::uint8_t>(1u << count);
      header.result_node =
          make_register_node(std::span<const NodeId>(preds.data(), count + 1), virtual_mask);
      graph_.AddAccess(AccessRecord{dyn_index, addr_node, ctx.mem_addr, ctx.mem_size,
                                    ctx.map_version, ctx.esp, /*is_store=*/false});
      break;
    }
    case Opcode::kPhi: {
      const std::array<NodeId, 1> preds = {op_nodes[ctx.selected_operand]};
      header.result_node = make_register_node(preds, 0);
      break;
    }
    case Opcode::kSelect: {
      // Dynamic dependencies: the condition and the chosen value.
      const NodeId chosen = (ctx.operand_values[0] & 1) != 0 ? op_nodes[1] : op_nodes[2];
      const std::array<NodeId, 2> preds = {op_nodes[0], chosen};
      header.result_node = make_register_node(preds, 0);
      break;
    }
    case Opcode::kBr:
    case Opcode::kCondBr:
    case Opcode::kRet: {
      if (inst.op == Opcode::kCondBr && op_nodes[0] != kNoNode &&
          inst.operands[0].IsRegister()) {
        graph_.AddControlRoot(op_nodes[0]);
      }
      if (inst.op == Opcode::kRet && !inst.operands.empty()) {
        pending_ret_node_ = op_nodes[0];
      }
      break;  // no node
    }
    case Opcode::kCall: {
      if (inst.is_intrinsic) {
        if (ir::IsOutputIntrinsic(inst.intrinsic)) {
          graph_.AddOutputRoot(op_nodes[0]);
          break;
        }
        if (inst.DefinesValue()) {
          header.result_node = make_register_node(
              std::span<const NodeId>(op_nodes.data(), num_ops), 0);
        }
        break;
      }
      // User call: remember argument nodes for OnEnterFunction and where the
      // result lands for OnExitFunction.
      pending_args_.assign(op_nodes.begin(), op_nodes.begin() + num_ops);
      call_stack_.push_back(
          PendingCall{inst.DefinesValue() ? inst.result : ir::kInvalidIndex});
      break;
    }
    default: {
      if (inst.DefinesValue()) {
        header.result_node =
            make_register_node(std::span<const NodeId>(op_nodes.data(), num_ops), 0);
      }
      break;
    }
  }

  // Update the shadow map for plain register defs (calls are handled at
  // OnExitFunction, stores define memory not registers).
  if (inst.DefinesValue() && inst.op != Opcode::kCall) {
    shadows_.back().reg_nodes[inst.result] = header.result_node;
  }
  if (inst.op == Opcode::kCall && inst.is_intrinsic && inst.DefinesValue()) {
    shadows_.back().reg_nodes[inst.result] = header.result_node;
  }

  graph_.AddDynInstr(header, std::span<const NodeId>(op_nodes.data(), num_ops),
                     std::span<const std::uint64_t>(op_values.data(), num_ops));
}

}  // namespace epvf::ddg
