// ACE analysis over the DDG (paper section III-A).
//
// From each output root, a reverse breadth-first search collects every node
// the output transitively depends on — the ACE graph. ACE bits are the summed
// widths of the *register* nodes in that graph; divided by the width sum of
// all register nodes in the trace this yields the PVF of the "used registers"
// resource (Eq. 1), reproducing the paper's running example
// (352 / 416 = 0.846 for the pathfinder fragment of Figure 3).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ddg/graph.h"

namespace epvf::ddg {

struct AceResult {
  /// Per-node membership in the ACE graph.
  std::vector<std::uint8_t> in_ace;
  std::uint64_t ace_bits = 0;        ///< Σ widths of register nodes in the ACE graph
  std::uint64_t total_bits = 0;      ///< Σ widths of all register nodes in the trace
  std::uint64_t ace_node_count = 0;  ///< all node kinds, for Table V's "ACE nodes"
  std::uint64_t ace_register_nodes = 0;

  [[nodiscard]] double Pvf() const {
    return total_bits == 0 ? 0.0 : static_cast<double>(ace_bits) / static_cast<double>(total_bits);
  }
  [[nodiscard]] bool Contains(NodeId id) const { return in_ace[id] != 0; }
};

/// ACE analysis rooted at all output roots of the graph. The reverse BFS is
/// inherently sequential; the bit-accounting sweep over the marked nodes runs
/// on `jobs` threads (<= 0 = one per hardware core), bit-identical at every
/// thread count.
[[nodiscard]] AceResult ComputeAce(const Graph& graph, int jobs = 0);

/// ACE analysis rooted at an arbitrary subset of roots — the primitive behind
/// the ACE-graph sampling estimator of section IV-E.
[[nodiscard]] AceResult ComputeAceFromRoots(const Graph& graph, std::span<const NodeId> roots,
                                            int jobs = 0);

/// Reusable visited set for repeated graph traversals. Membership is an
/// epoch stamp per node, so Reset() is O(1) — bump the epoch — instead of
/// refilling an O(NumNodes) byte vector for every slice (the stamp array is
/// (re)allocated only when the graph grows or the 32-bit epoch wraps).
class SliceVisited {
 public:
  /// Clears the set and sizes it for `num_nodes` nodes.
  void Reset(std::size_t num_nodes) {
    ++epoch_;
    if (stamps_.size() != num_nodes || epoch_ == 0) {
      epoch_ = 1;
      stamps_.assign(num_nodes, 0);
    }
  }
  /// Marks `id`; returns true if it was newly inserted.
  bool Insert(NodeId id) {
    if (stamps_[id] == epoch_) return false;
    stamps_[id] = epoch_;
    return true;
  }
  [[nodiscard]] bool Contains(NodeId id) const { return stamps_[id] == epoch_; }

 private:
  std::vector<std::uint32_t> stamps_;
  std::uint32_t epoch_ = 0;
};

/// Backward slice of `start`: every node reachable through predecessor edges
/// (data and, optionally, virtual addressing edges), including `start`.
/// Repeated slicing (propagation diagnostics, protect/transform planning)
/// should pass a reusable `visited` buffer to avoid reallocating an
/// O(NumNodes) vector per call; with nullptr a scratch buffer is used.
[[nodiscard]] std::vector<NodeId> BackwardSlice(const Graph& graph, NodeId start,
                                                bool follow_virtual = true,
                                                SliceVisited* visited = nullptr);

}  // namespace epvf::ddg
