#include "ddg/graph.h"

#include <algorithm>
#include <stdexcept>

namespace epvf::ddg {

NodeId Graph::AddNode(const Node& node, std::span<const NodeId> preds,
                      std::uint8_t virtual_mask) {
  if (preds.size() > 8) throw std::invalid_argument("Graph::AddNode: too many preds");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  PredRange range;
  range.offset = static_cast<std::uint32_t>(pred_pool_.size());
  range.count = static_cast<std::uint8_t>(preds.size());
  range.virtual_mask = virtual_mask;
  pred_ranges_.push_back(range);
  pred_pool_.insert(pred_pool_.end(), preds.begin(), preds.end());
  return id;
}

void Graph::AddDynInstr(const DynInstr& header, std::span<const NodeId> operand_nodes,
                        std::span<const std::uint64_t> operand_values) {
  if (operand_nodes.size() != operand_values.size()) {
    throw std::invalid_argument("Graph::AddDynInstr: operand arity mismatch");
  }
  DynInstr d = header;
  d.operands_offset = static_cast<std::uint32_t>(operand_node_pool_.size());
  d.num_operands = static_cast<std::uint8_t>(operand_nodes.size());
  operand_node_pool_.insert(operand_node_pool_.end(), operand_nodes.begin(), operand_nodes.end());
  operand_value_pool_.insert(operand_value_pool_.end(), operand_values.begin(),
                             operand_values.end());
  dyn_.push_back(d);
}

std::vector<NodeId> Graph::OrderedAceRoots() const {
  std::vector<NodeId> roots;
  roots.reserve(output_roots_.size() + control_roots_.size());
  roots.insert(roots.end(), output_roots_.begin(), output_roots_.end());
  roots.insert(roots.end(), control_roots_.begin(), control_roots_.end());
  // Node ids increase with trace time, so sorting restores temporal order.
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  return roots;
}

std::uint64_t Graph::TotalRegisterBits() const {
  std::uint64_t total = 0;
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::kRegister) total += n.width;
  }
  return total;
}

std::uint64_t Graph::NumRegisterNodes() const {
  std::uint64_t count = 0;
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::kRegister) ++count;
  }
  return count;
}

}  // namespace epvf::ddg
