#include "ddg/graph.h"

#include <algorithm>
#include <stdexcept>

namespace epvf::ddg {

NodeId Graph::AddNode(const Node& node, std::span<const NodeId> preds,
                      std::uint8_t virtual_mask) {
  if (preds.size() > 8) throw std::invalid_argument("Graph::AddNode: too many preds");
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(node);
  PredRange range;
  range.offset = static_cast<std::uint32_t>(pred_pool_.size());
  range.count = static_cast<std::uint8_t>(preds.size());
  range.virtual_mask = virtual_mask;
  pred_ranges_.push_back(range);
  pred_pool_.insert(pred_pool_.end(), preds.begin(), preds.end());
  return id;
}

void Graph::AddDynInstr(const DynInstr& header, std::span<const NodeId> operand_nodes,
                        std::span<const std::uint64_t> operand_values) {
  if (operand_nodes.size() != operand_values.size()) {
    throw std::invalid_argument("Graph::AddDynInstr: operand arity mismatch");
  }
  DynInstr d = header;
  d.operands_offset = static_cast<std::uint32_t>(operand_node_pool_.size());
  d.num_operands = static_cast<std::uint8_t>(operand_nodes.size());
  operand_node_pool_.insert(operand_node_pool_.end(), operand_nodes.begin(), operand_nodes.end());
  operand_value_pool_.insert(operand_value_pool_.end(), operand_values.begin(),
                             operand_values.end());
  dyn_.push_back(d);
}

Graph Graph::FromStorage(const ir::Module* module, Storage storage) {
  Graph graph(module);
  graph.nodes_ = std::move(storage.nodes);
  graph.pred_ranges_ = std::move(storage.pred_ranges);
  graph.pred_pool_ = std::move(storage.pred_pool);
  graph.dyn_ = std::move(storage.dyn);
  graph.operand_node_pool_ = std::move(storage.operand_node_pool);
  graph.operand_value_pool_ = std::move(storage.operand_value_pool);
  graph.accesses_ = std::move(storage.accesses);
  graph.output_roots_ = std::move(storage.output_roots);
  graph.control_roots_ = std::move(storage.control_roots);
  graph.dropped_load_preds_ = storage.dropped_load_preds;
  return graph;
}

bool Graph::ValidateStorage(const ir::Module& module, const Storage& storage) {
  const std::size_t num_nodes = storage.nodes.size();
  if (storage.pred_ranges.size() != num_nodes) return false;
  const auto node_in_range = [&](NodeId id) { return id == kNoNode || id < num_nodes; };
  for (const PredRange& r : storage.pred_ranges) {
    if (r.count > 8) return false;
    if (std::uint64_t{r.offset} + r.count > storage.pred_pool.size()) return false;
  }
  for (const NodeId id : storage.pred_pool) {
    if (!node_in_range(id)) return false;
  }
  if (storage.operand_node_pool.size() != storage.operand_value_pool.size()) return false;
  for (const DynInstr& d : storage.dyn) {
    if (!node_in_range(d.result_node)) return false;
    if (std::uint64_t{d.operands_offset} + d.num_operands > storage.operand_node_pool.size()) {
      return false;
    }
    if (d.sid.function >= module.functions.size()) return false;
    const ir::Function& fn = module.functions[d.sid.function];
    if (d.sid.block >= fn.blocks.size()) return false;
    if (d.sid.instr >= fn.blocks[d.sid.block].instructions.size()) return false;
  }
  for (const NodeId id : storage.operand_node_pool) {
    if (!node_in_range(id)) return false;
  }
  for (const AccessRecord& a : storage.accesses) {
    if (!node_in_range(a.addr_node)) return false;
    if (a.dyn_index >= storage.dyn.size()) return false;
  }
  for (const NodeId id : storage.output_roots) {
    if (id == kNoNode || id >= num_nodes) return false;
  }
  for (const NodeId id : storage.control_roots) {
    if (id == kNoNode || id >= num_nodes) return false;
  }
  return true;
}

std::vector<NodeId> Graph::OrderedAceRoots() const {
  std::vector<NodeId> roots;
  roots.reserve(output_roots_.size() + control_roots_.size());
  roots.insert(roots.end(), output_roots_.begin(), output_roots_.end());
  roots.insert(roots.end(), control_roots_.begin(), control_roots_.end());
  // Node ids increase with trace time, so sorting restores temporal order.
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  return roots;
}

std::uint64_t Graph::TotalRegisterBits() const {
  std::uint64_t total = 0;
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::kRegister) total += n.width;
  }
  return total;
}

std::uint64_t Graph::NumRegisterNodes() const {
  std::uint64_t count = 0;
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::kRegister) ++count;
  }
  return count;
}

}  // namespace epvf::ddg
