#include "ddg/ace.h"

#include <deque>

#include "obs/trace.h"
#include "support/thread_pool.h"

namespace epvf::ddg {

AceResult ComputeAceFromRoots(const Graph& graph, std::span<const NodeId> roots, int jobs) {
  const obs::TraceSpan span("ace", "compute-ace");
  AceResult result;
  result.in_ace.assign(graph.NumNodes(), 0);
  result.total_bits = graph.TotalRegisterBits();

  // Reverse BFS over predecessor edges (paper: "we run a reverse
  // breadth-first search on the DDG").
  std::deque<NodeId> frontier;
  for (const NodeId root : roots) {
    if (root != kNoNode && !result.in_ace[root]) {
      result.in_ace[root] = 1;
      frontier.push_back(root);
    }
  }
  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop_front();
    for (const NodeId pred : graph.Preds(id)) {
      if (pred == kNoNode || result.in_ace[pred]) continue;
      result.in_ace[pred] = 1;
      frontier.push_back(pred);
    }
  }

  // Bit accounting over the marked nodes: per-node independent reads, so the
  // sweep is data-parallel with a chunk-ordered (thread-count-invariant) fold.
  struct Totals {
    std::uint64_t nodes = 0;
    std::uint64_t register_nodes = 0;
    std::uint64_t bits = 0;
  };
  const Totals totals = ParallelReduce(
      std::size_t{0}, graph.NumNodes(), Totals{},
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        Totals part;
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const NodeId id = static_cast<NodeId>(i);
          if (!result.in_ace[id]) continue;
          ++part.nodes;
          const Node& node = graph.GetNode(id);
          if (node.kind == NodeKind::kRegister) {
            part.bits += node.width;
            ++part.register_nodes;
          }
        }
        return part;
      },
      [](Totals acc, const Totals& part) {
        acc.nodes += part.nodes;
        acc.register_nodes += part.register_nodes;
        acc.bits += part.bits;
        return acc;
      },
      ParallelOptions{.jobs = jobs});
  result.ace_node_count = totals.nodes;
  result.ace_register_nodes = totals.register_nodes;
  result.ace_bits = totals.bits;
  return result;
}

AceResult ComputeAce(const Graph& graph, int jobs) {
  const std::vector<NodeId> roots = graph.OrderedAceRoots();
  return ComputeAceFromRoots(graph, roots, jobs);
}

std::vector<NodeId> BackwardSlice(const Graph& graph, NodeId start, bool follow_virtual,
                                  SliceVisited* visited) {
  std::vector<NodeId> slice;
  if (start == kNoNode) return slice;
  SliceVisited scratch;
  SliceVisited& seen = visited != nullptr ? *visited : scratch;
  seen.Reset(graph.NumNodes());
  std::deque<NodeId> frontier{start};
  seen.Insert(start);
  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop_front();
    slice.push_back(id);
    const auto preds = graph.Preds(id);
    for (unsigned i = 0; i < preds.size(); ++i) {
      const NodeId pred = preds[i];
      if (pred == kNoNode) continue;
      if (!follow_virtual && graph.PredIsVirtual(id, i)) continue;
      if (seen.Insert(pred)) frontier.push_back(pred);
    }
  }
  return slice;
}

}  // namespace epvf::ddg
