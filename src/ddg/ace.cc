#include "ddg/ace.h"

#include <deque>

namespace epvf::ddg {

AceResult ComputeAceFromRoots(const Graph& graph, std::span<const NodeId> roots) {
  AceResult result;
  result.in_ace.assign(graph.NumNodes(), 0);
  result.total_bits = graph.TotalRegisterBits();

  // Reverse BFS over predecessor edges (paper: "we run a reverse
  // breadth-first search on the DDG").
  std::deque<NodeId> frontier;
  for (const NodeId root : roots) {
    if (root != kNoNode && !result.in_ace[root]) {
      result.in_ace[root] = 1;
      frontier.push_back(root);
    }
  }
  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop_front();
    for (const NodeId pred : graph.Preds(id)) {
      if (pred == kNoNode || result.in_ace[pred]) continue;
      result.in_ace[pred] = 1;
      frontier.push_back(pred);
    }
  }

  for (NodeId id = 0; id < graph.NumNodes(); ++id) {
    if (!result.in_ace[id]) continue;
    ++result.ace_node_count;
    const Node& node = graph.GetNode(id);
    if (node.kind == NodeKind::kRegister) {
      result.ace_bits += node.width;
      ++result.ace_register_nodes;
    }
  }
  return result;
}

AceResult ComputeAce(const Graph& graph) {
  const std::vector<NodeId> roots = graph.OrderedAceRoots();
  return ComputeAceFromRoots(graph, roots);
}

std::vector<NodeId> BackwardSlice(const Graph& graph, NodeId start, bool follow_virtual) {
  std::vector<NodeId> slice;
  if (start == kNoNode) return slice;
  std::vector<std::uint8_t> seen(graph.NumNodes(), 0);
  std::deque<NodeId> frontier{start};
  seen[start] = 1;
  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop_front();
    slice.push_back(id);
    const auto preds = graph.Preds(id);
    for (unsigned i = 0; i < preds.size(); ++i) {
      const NodeId pred = preds[i];
      if (pred == kNoNode || seen[pred]) continue;
      if (!follow_virtual && graph.PredIsVirtual(id, i)) continue;
      seen[pred] = 1;
      frontier.push_back(pred);
    }
  }
  return slice;
}

}  // namespace epvf::ddg
