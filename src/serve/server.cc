#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "apps/app.h"
#include "epvf/analysis.h"
#include "epvf/compose.h"
#include "epvf/reexec.h"
#include "fi/supervisor.h"
#include "ir/parser.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "serve/render.h"
#include "serve/wire.h"
#include "store/cache.h"
#include "store/units_store.h"
#include "support/subprocess.h"

namespace epvf::serve {

namespace {

/// One accepted socket. Job threads and the reader thread both write frames,
/// so every send serializes on the write mutex; a failed send (including one
/// that hits the socket's bounded send timeout — a peer that stops reading)
/// latches the connection closed. The fd is owned by the write mutex too:
/// Close() nulls it under the lock, so no send can race a close or write to
/// a recycled descriptor number.
struct Connection {
  int fd = -1;  ///< −1 once closed; mutated only under write_mutex
  std::uint64_t id = 0;
  std::mutex write_mutex;
  std::atomic<bool> open{true};

  /// Send with write_mutex already held (see HandleRun's admission ack).
  bool SendLocked(FrameType type, std::string_view payload) {
    if (fd < 0 || !open.load(std::memory_order_relaxed)) return false;
    if (!WriteFrame(fd, type, payload)) {
      open.store(false, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  bool Send(FrameType type, std::string_view payload) {
    const std::lock_guard<std::mutex> lock(write_mutex);
    return SendLocked(type, payload);
  }

  void Close() {
    open.store(false);
    const std::lock_guard<std::mutex> lock(write_mutex);
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }

  bool SendError(ErrorCode code, std::string message, std::uint32_t retry_after_ms = 0) {
    return Send(FrameType::kError, EncodeErrorReply(ErrorReply{
                                       .code = code,
                                       .retry_after_ms = retry_after_ms,
                                       .message = std::move(message)}));
  }
};

struct Job {
  std::uint64_t id = 0;
  std::uint32_t priority = 0;
  std::shared_ptr<Connection> conn;
  std::vector<std::string> args;  ///< {command, target, --flag, value, ...}
  std::atomic<bool> cancel{false};
  bool running = false;  ///< under the scheduler mutex
};

/// How an executed job ended; ExecutorLoop turns this into exactly one
/// counter increment (completed or cancelled) after the job finishes.
enum class JobOutcome { kCompleted, kCancelled };

/// A benchmark target keeps its module and analysis resident; the analysis
/// holds pointers into the module, so the module lives at a stable address in
/// the same entry. Construction runs (or cache-restores) the analysis — with
/// guaranteed elision the result is built in place, never moved.
struct Resident {
  std::unique_ptr<ir::Module> module;
  core::Analysis analysis;

  Resident(std::unique_ptr<ir::Module> owned, const core::AnalysisOptions& opts,
           const store::AnalysisKey& key, store::ArtifactCache& cache)
      : module(std::move(owned)), analysis(store::RunAnalysisCached(*module, opts, key, cache)) {}
};

/// The resident compositional state behind `analyze --incremental`: the
/// latest analyzed module plus its per-unit slices, kept warm across
/// requests so an edited module usually costs one unit replay instead of a
/// whole-program run. The slices hold pointers into `module`, which
/// therefore lives at a stable address in the same entry.
struct ResidentUnits {
  std::unique_ptr<ir::Module> module;
  core::ProgramSlices slices;
};

/// Per-command flag vocabulary the daemon accepts. Cache, observability, and
/// client plumbing flags are deliberately absent: the daemon owns the cache
/// directory and its own sinks, and a request carrying them is malformed.
const std::map<std::string, std::set<std::string>>& WorkerFlags() {
  static const std::map<std::string, std::set<std::string>> allowed = {
      {"analyze", {"scale", "jobs", "engine", "incremental"}},
      {"inject",
       {"scale", "runs", "jitter", "burst", "seed", "jobs", "checkpoints", "engine", "plan",
        "ci-target", "max-runs", "scenario"}},
      {"campaign",
       {"scale", "runs", "jitter", "burst", "seed", "jobs", "checkpoints", "engine", "plan",
        "ci-target", "max-runs", "shards", "shard-timeout", "shard-retries", "scenario"}},
  };
  return allowed;
}

std::string JoinArgs(const std::vector<std::string>& args) {
  std::string out;
  for (const std::string& arg : args) {
    if (!out.empty()) out += ' ';
    out += arg;
  }
  return out;
}

std::string ReadFileText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions opts) : options(std::move(opts)) {}

  ServerOptions options;
  std::string cache_dir;
  bool private_cache_dir = false;
  std::string jobs_dir;
  int listen_fd = -1;
  std::optional<store::ArtifactCache> cache;

  std::atomic<bool> stop{false};
  std::atomic<bool> stop_requested{false};
  bool started = false;
  bool stopped = false;

  std::thread accept_thread;
  std::vector<std::thread> executors;

  std::mutex conn_mutex;
  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<std::thread> readers;
  std::uint64_t next_client_id = 1;

  // Scheduler state — everything below sched_mutex.
  std::mutex sched_mutex;
  std::condition_variable sched_cv;
  std::deque<std::shared_ptr<Job>> queue;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs;  ///< queued + running, by id
  std::uint64_t next_job_id = 1;
  std::uint64_t last_client_served = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rejected = 0;

  // Resident analyses keyed by store::CacheId(AnalysisKey) — the key covers
  // the module fingerprint, so an edited .ir target lands in a fresh entry.
  std::mutex resident_mutex;
  std::map<std::string, std::unique_ptr<Resident>> resident;

  // Resident compositional states keyed by store::CacheId(ManifestKey) — the
  // module fingerprint is deliberately absent from that key, so an edited .ir
  // target lands on its *existing* entry and replays incrementally against it.
  std::mutex units_mutex;
  std::map<std::string, std::unique_ptr<ResidentUnits>> resident_units;

  void Emit(const std::string& message) {
    if (options.on_event) options.on_event(message);
  }

  // --- request admission (reader threads) ---------------------------------

  void HandleRun(const std::shared_ptr<Connection>& conn, const Frame& frame) {
    obs::GetCounter("serve.requests.run").Add();
    const std::optional<RunRequest> request = DecodeRunRequest(frame.payload);
    if (!request.has_value()) {
      conn->SendError(ErrorCode::kBadRequest, "malformed run payload");
      return;
    }
    if (request->args.size() < 2 || request->args[1].empty() || request->args[1][0] == '-') {
      conn->SendError(ErrorCode::kBadRequest, "run needs a command and a target");
      return;
    }
    const auto allowed = WorkerFlags().find(request->args[0]);
    if (allowed == WorkerFlags().end()) {
      conn->SendError(ErrorCode::kBadRequest, "unsupported command '" + request->args[0] + "'");
      return;
    }
    for (std::size_t i = 2; i < request->args.size(); i += 2) {
      const std::string& flag = request->args[i];
      if (flag.rfind("--", 0) != 0 || allowed->second.count(flag.substr(2)) == 0) {
        conn->SendError(ErrorCode::kBadRequest,
                        "flag '" + flag + "' is not accepted for '" + request->args[0] +
                            "' over the wire");
        return;
      }
      if (i + 1 >= request->args.size()) {
        conn->SendError(ErrorCode::kBadRequest, "flag '" + flag + "' is missing its value");
        return;
      }
    }

    auto job = std::make_shared<Job>();
    job->priority = request->priority;
    job->conn = conn;
    job->args = request->args;
    std::optional<ErrorReply> reject;
    {
      // Ack-before-results ordering without a socket write under sched_mutex:
      // the connection's write lock is held across admission, sched_mutex is
      // released, and only then is the ack written. Executors serialize their
      // result frames on the same write lock, so none can precede the ack —
      // and a peer that stops reading stalls only its own connection, never
      // the scheduler. Lock order is write_mutex → sched_mutex everywhere.
      const std::lock_guard<std::mutex> write_lock(conn->write_mutex);
      {
        const std::lock_guard<std::mutex> lock(sched_mutex);
        if (stop.load()) {
          reject = ErrorReply{.code = ErrorCode::kShuttingDown,
                              .retry_after_ms = 0,
                              .message = "daemon is shutting down"};
        } else if (queue.size() >= static_cast<std::size_t>(options.queue_limit)) {
          // Backpressure: reject with a hint proportional to the backlog so a
          // polite client's retries spread out as the queue deepens.
          rejected += 1;
          obs::GetCounter("serve.rejected.busy").Add();
          reject = ErrorReply{
              .code = ErrorCode::kBusy,
              .retry_after_ms = static_cast<std::uint32_t>(100 * (1 + queue.size())),
              .message = "queue full (" + std::to_string(queue.size()) + " jobs)"};
        } else {
          job->id = next_job_id++;
          queue.push_back(job);
          jobs[job->id] = job;
        }
      }
      if (reject.has_value()) {
        conn->SendLocked(FrameType::kError, EncodeErrorReply(*reject));
        return;
      }
      // A failed ack latches the connection closed; the orphan sweep in
      // PickJobLocked reaps the job instead of running it for nobody.
      conn->SendLocked(FrameType::kAck, EncodeU64(job->id));
    }
    sched_cv.notify_one();
  }

  void HandleCancel(const std::shared_ptr<Connection>& conn, const Frame& frame) {
    obs::GetCounter("serve.requests.cancel").Add();
    const std::optional<std::uint64_t> id = DecodeU64(frame.payload);
    if (!id.has_value()) {
      conn->SendError(ErrorCode::kBadRequest, "malformed cancel payload");
      return;
    }
    bool found = false;
    std::shared_ptr<Job> victim;  // keeps the Job alive past the map erase
    {
      const std::lock_guard<std::mutex> lock(sched_mutex);
      const auto it = jobs.find(*id);
      if (it != jobs.end()) {
        found = true;
        const std::shared_ptr<Job> job = it->second;
        job->cancel.store(true);
        // A queued job dies right here; a running one is reaped by its
        // executor once the supervisor observes the flag and kills the
        // worker (the executor sends the terminal kError to the owner).
        if (!job->running) {
          DropQueuedLocked(job);
          victim = job;
        }
      }
    }
    if (victim != nullptr) SendJobError(*victim, ErrorCode::kCancelled);
    if (found) {
      conn->Send(FrameType::kDone, EncodeU64(0));
    } else {
      conn->SendError(ErrorCode::kUnknownJob, "no job " + std::to_string(*id));
    }
  }

  void HandleStatus(const std::shared_ptr<Connection>& conn) {
    obs::GetCounter("serve.requests.status").Add();
    std::ostringstream out;
    {
      const std::lock_guard<std::mutex> lock(sched_mutex);
      out << "serve: " << options.socket_path << "\n"
          << "slots " << options.slots << " | queued " << queue.size() << "/"
          << options.queue_limit << " | completed " << completed << " | cancelled " << cancelled
          << " | rejected " << rejected << "\n";
      for (const auto& [id, job] : jobs) {
        out << "job " << id << " " << (job->running ? "running" : "queued") << " priority "
            << job->priority << " client " << job->conn->id << " | " << JoinArgs(job->args)
            << "\n";
      }
    }
    conn->Send(FrameType::kStatusReport, out.str());
  }

  void HandleMetrics(const std::shared_ptr<Connection>& conn) {
    obs::GetCounter("serve.requests.metrics").Add();
    conn->Send(FrameType::kMetricsReport, obs::MetricsRegistry::Global().ToJson());
  }

  void HandleShutdown(const std::shared_ptr<Connection>& conn) {
    Emit("shutdown requested by client " + std::to_string(conn->id));
    conn->Send(FrameType::kDone, EncodeU64(0));
    stop_requested.store(true);
    sched_cv.notify_all();
  }

  // --- connection lifecycle -----------------------------------------------

  void ReaderLoop(const std::shared_ptr<Connection>& conn) {
    while (!stop.load()) {
      Frame frame;
      const ReadStatus status = ReadFrame(conn->fd, &frame);
      if (status == ReadStatus::kClosed) break;
      if (status != ReadStatus::kOk) {
        // Malformed framing: name the violation in an error frame (best
        // effort — the peer may already be gone) and drop the connection.
        // The daemon itself never crashes on hostile bytes.
        obs::GetCounter("serve.protocol_errors").Add();
        Emit("client " + std::to_string(conn->id) + ": " + std::string(ReadStatusName(status)));
        if (status != ReadStatus::kIoError) {
          conn->SendError(ErrorCode::kBadRequest, std::string(ReadStatusName(status)));
        }
        break;
      }
      switch (frame.type) {
        case FrameType::kRun: HandleRun(conn, frame); break;
        case FrameType::kCancel: HandleCancel(conn, frame); break;
        case FrameType::kStatus: HandleStatus(conn); break;
        case FrameType::kMetrics: HandleMetrics(conn); break;
        case FrameType::kShutdown: HandleShutdown(conn); break;
        default:
          obs::GetCounter("serve.protocol_errors").Add();
          conn->SendError(ErrorCode::kBadRequest,
                          "unknown frame type " +
                              std::to_string(static_cast<std::uint32_t>(frame.type)));
          break;
      }
    }
    conn->open.store(false);
    // A vanished client implicitly cancels its outstanding jobs: there is
    // nobody left to stream results to.
    {
      const std::lock_guard<std::mutex> lock(sched_mutex);
      for (auto& [id, job] : jobs) {
        if (job->conn == conn) job->cancel.store(true);
      }
    }
    // Close under the write mutex (inside Close): an executor mid-Send on
    // this fd finishes or times out first, so the descriptor number can
    // never be recycled under a concurrent WriteFrame.
    conn->Close();
  }

  void AcceptLoop() {
    while (!stop.load()) {
      struct pollfd pfd = {.fd = listen_fd, .events = POLLIN, .revents = 0};
      const int r = ::poll(&pfd, 1, 100);
      if (r <= 0) continue;
      const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) continue;
      // Bounded sends: a peer that stops reading makes its next send fail
      // after the timeout (WriteFrame treats EAGAIN as fatal), latching that
      // one connection closed instead of wedging whichever thread holds its
      // write mutex forever.
      struct timeval send_timeout;
      send_timeout.tv_sec = static_cast<time_t>(options.send_timeout_seconds);
      send_timeout.tv_usec = 0;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout, sizeof send_timeout);
      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      {
        const std::lock_guard<std::mutex> lock(conn_mutex);
        conn->id = next_client_id++;
        connections.push_back(conn);
        readers.emplace_back([this, conn] { ReaderLoop(conn); });
      }
      obs::GetCounter("serve.connections").Add();
    }
  }

  // --- scheduling (executor threads) --------------------------------------

  /// Forgets a still-queued job and counts it cancelled. Caller holds
  /// sched_mutex, keeps its own shared_ptr (erasing here drops the queue's
  /// and the map's references), and sends the terminal error via SendJobError
  /// only after releasing the lock — the scheduler never blocks on a socket.
  void DropQueuedLocked(const std::shared_ptr<Job>& job) {
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if ((*it)->id != job->id) continue;
      queue.erase(it);
      break;
    }
    jobs.erase(job->id);
    cancelled += 1;
    obs::GetCounter("serve.jobs.cancelled").Add();
  }

  /// The terminal error frame for a job that never ran. Caller must NOT hold
  /// sched_mutex (the send can block on a slow peer until the send timeout).
  static void SendJobError(const Job& job, ErrorCode code) {
    if (!job.conn->open.load()) return;
    job.conn->SendError(code, "job " + std::to_string(job.id) + " " +
                                  (code == ErrorCode::kCancelled ? "cancelled" : "dropped"));
  }

  /// Highest priority wins; ties rotate round-robin across clients (FIFO
  /// within a client, the queue is in admission order). Cancelled and
  /// orphaned jobs are dropped into `dead` for the caller to fail once the
  /// lock is released. Caller holds sched_mutex.
  std::shared_ptr<Job> PickJobLocked(std::vector<std::shared_ptr<Job>>* dead) {
    for (auto it = queue.begin(); it != queue.end();) {
      if ((*it)->cancel.load() || !(*it)->conn->open.load()) {
        std::shared_ptr<Job> job = *it;
        it = queue.erase(it);
        jobs.erase(job->id);
        cancelled += 1;
        obs::GetCounter("serve.jobs.cancelled").Add();
        dead->push_back(std::move(job));
        continue;
      }
      ++it;
    }
    if (queue.empty()) return nullptr;

    std::uint32_t best = 0;
    for (const auto& job : queue) best = std::max(best, job->priority);
    std::map<std::uint64_t, std::size_t> earliest;  // client id -> queue index
    for (std::size_t i = 0; i < queue.size(); ++i) {
      if (queue[i]->priority != best) continue;
      earliest.emplace(queue[i]->conn->id, i);  // first hit = earliest (FIFO order)
    }
    auto pick = earliest.upper_bound(last_client_served);
    if (pick == earliest.end()) pick = earliest.begin();
    last_client_served = pick->first;
    std::shared_ptr<Job> job = queue[pick->second];
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick->second));
    job->running = true;
    return job;
  }

  void ExecutorLoop() {
    while (true) {
      std::shared_ptr<Job> job;
      std::vector<std::shared_ptr<Job>> dead;
      {
        std::unique_lock<std::mutex> lock(sched_mutex);
        sched_cv.wait(lock, [this] { return stop.load() || !queue.empty(); });
        if (stop.load()) break;
        job = PickJobLocked(&dead);
      }
      for (const std::shared_ptr<Job>& d : dead) SendJobError(*d, ErrorCode::kCancelled);
      if (job == nullptr) continue;
      const JobOutcome outcome = Execute(*job);
      // All completion accounting lands here, after the job finished, so a
      // concurrent status request never sees a half-updated counter and each
      // executed job increments exactly one of completed/cancelled.
      {
        const std::lock_guard<std::mutex> lock(sched_mutex);
        jobs.erase(job->id);
        if (outcome == JobOutcome::kCancelled) {
          cancelled += 1;
        } else {
          completed += 1;
        }
      }
      obs::GetCounter(outcome == JobOutcome::kCancelled ? "serve.jobs.cancelled"
                                                        : "serve.jobs.completed")
          .Add();
    }
  }

  // --- job execution ------------------------------------------------------

  static std::string FlagValue(const std::vector<std::string>& args, const std::string& flag,
                               const std::string& fallback) {
    for (std::size_t i = 2; i + 1 < args.size(); i += 2) {
      if (args[i] == "--" + flag) return args[i + 1];
    }
    return fallback;
  }

  /// Loads a benchmark by name or parses a textual-IR file — the CLI's
  /// loader, on the daemon side. Throws on an unknown benchmark or an
  /// unreadable file.
  static std::unique_ptr<ir::Module> LoadModule(const std::string& target, int scale) {
    return std::make_unique<ir::Module>([&] {
      const bool looks_like_path =
          target.find('.') != std::string::npos || target.find('/') != std::string::npos;
      if (!looks_like_path) {
        apps::AppConfig config;
        config.scale = scale;
        return apps::BuildApp(target, config).module;
      }
      std::ifstream in(target);
      if (!in) throw std::runtime_error("cannot open " + target);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      return ir::ParseModuleOrThrow(buffer.str());
    }());
  }

  /// The resident entry for (target, scale) — built (and persisted to the
  /// shared cache, warming it for workers) on first use. Throws on an
  /// unknown benchmark / unreadable file, like the CLI's loader.
  Resident& EnsureResident(const std::string& target, int scale, int jobs, bool* hit) {
    std::unique_ptr<ir::Module> module = LoadModule(target, scale);

    core::AnalysisOptions opts;
    opts.jobs = jobs;
    store::AnalysisKey key;
    key.app = target;
    key.config = "scale=" + std::to_string(scale);
    key.module_fingerprint = store::ModuleFingerprint(*module);
    key.options = opts;
    const std::string id = store::CacheId(key);

    const std::lock_guard<std::mutex> lock(resident_mutex);
    const auto it = resident.find(id);
    if (it != resident.end()) {
      *hit = true;
      obs::GetCounter("serve.analyze.resident_hits").Add();
      return *it->second;
    }
    *hit = false;
    obs::GetCounter("serve.analyze.resident_misses").Add();
    auto entry = std::make_unique<Resident>(std::move(module), opts, key, *cache);
    return *resident.emplace(id, std::move(entry)).first->second;
  }

  JobOutcome Execute(Job& job) {
    if (job.cancel.load() || !job.conn->open.load()) {
      if (job.conn->open.load()) {
        job.conn->SendError(ErrorCode::kCancelled,
                            "job " + std::to_string(job.id) + " cancelled");
      }
      return JobOutcome::kCancelled;
    }
    if (job.args[0] == "analyze") {
      ExecuteAnalyze(job);
      return JobOutcome::kCompleted;
    }
    return ExecuteWorker(job);
  }

  void ExecuteAnalyze(Job& job) {
    const int scale = std::atoi(FlagValue(job.args, "scale", "1").c_str());
    const int jobs_flag = std::atoi(FlagValue(job.args, "jobs", "0").c_str());
    if (FlagValue(job.args, "incremental", "0") != "0") {
      ExecuteAnalyzeIncremental(job, scale, jobs_flag);
      return;
    }
    try {
      bool hit = false;
      const auto start = std::chrono::steady_clock::now();
      Resident& entry = EnsureResident(job.args[1], scale, jobs_flag, &hit);
      std::ostringstream out;
      RenderAnalyzeReport(entry.analysis, out);
      const double ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
              .count();
      char note[160];
      std::snprintf(note, sizeof note, "serve: analysis %s (%s, %.2f ms)\n",
                    job.args[1].c_str(), hit ? "resident" : "computed", ms);
      job.conn->Send(FrameType::kStdout, out.str());
      job.conn->Send(FrameType::kStderr, note);
      job.conn->Send(FrameType::kDone, EncodeU64(0));
    } catch (const std::exception& error) {
      job.conn->SendError(ErrorCode::kBadRequest, error.what());
    }
  }

  /// `analyze --incremental` on the daemon: re-analyze against the resident
  /// unit map. An unchanged or one-unit-edited module is served by replay
  /// against the in-memory state (no parse-to-pipeline round trip); any
  /// fallback rebuilds through the per-unit disk cache. Stdout is rendered
  /// from the composed stats, so it is byte-identical to a local
  /// `epvf analyze --incremental` — and to a plain `epvf analyze`.
  void ExecuteAnalyzeIncremental(Job& job, int scale, int jobs_flag) {
    try {
      const auto start = std::chrono::steady_clock::now();
      std::unique_ptr<ir::Module> module = LoadModule(job.args[1], scale);
      core::AnalysisOptions opts;
      opts.jobs = jobs_flag;
      store::AnalysisKey key;
      key.app = job.args[1];
      key.config = "scale=" + std::to_string(scale);
      key.module_fingerprint = store::ModuleFingerprint(*module);
      key.options = opts;
      const std::string id = store::CacheId(store::ManifestKey{key});

      const std::lock_guard<std::mutex> lock(units_mutex);
      std::unique_ptr<ResidentUnits>& slot = resident_units[id];
      const char* mode = "cold";
      std::uint32_t replayed = 0;
      std::uint32_t total = 0;
      if (slot != nullptr) {
        const core::IncrementalOutcome outcome =
            core::ReanalyzeIncremental(slot->slices, *module, jobs_flag);
        total = outcome.units_total;
        if (outcome.used_fast_path) {
          // The slices now describe the new module — adopt it (the old one
          // dies with the swap; unchanged units never referenced it by
          // pointer, only the slices' module field does).
          slot->module = std::move(module);
          replayed = outcome.units_replayed;
          mode = replayed == 0 ? "resident warm" : "resident replay";
          obs::GetCounter("serve.analyze.incremental_fast_path").Add();
          // Keep the disk cache tracking the resident state, so a daemon
          // restart (or a local CLI against the same cache) starts warm.
          store::PersistCompositionalState(slot->slices, *slot->module, key, *cache);
        } else {
          obs::GetCounter("serve.analyze.incremental_fallbacks").Add();
          slot = nullptr;  // stale state — rebuild below
        }
      }
      if (slot == nullptr) {
        auto entry = std::make_unique<ResidentUnits>();
        entry->module = std::move(module);
        store::IncrementalResult result =
            store::RunAnalysisIncremental(*entry->module, opts, key, *cache);
        entry->slices = std::move(result.slices);
        total = result.stats.units_total;
        replayed = result.stats.unit_misses;
        if (!result.stats.cold_rebuild) mode = "disk cache";
        obs::GetCounter("serve.analyze.incremental_rebuilds").Add();
        slot = std::move(entry);
      }

      std::ostringstream out;
      RenderAnalyzeReport(core::ComposeProgram(slot->slices), out);
      const double ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
              .count();
      char note[200];
      std::snprintf(note, sizeof note,
                    "serve: incremental analysis %s (%s, %u of %u units recomputed, %.2f ms)\n",
                    job.args[1].c_str(), mode, replayed, total, ms);
      job.conn->Send(FrameType::kStdout, out.str());
      job.conn->Send(FrameType::kStderr, note);
      job.conn->Send(FrameType::kDone, EncodeU64(0));
    } catch (const std::exception& error) {
      job.conn->SendError(ErrorCode::kBadRequest, error.what());
    }
  }

  JobOutcome ExecuteWorker(Job& job) {
    // Warm the shared cache first: the worker then restores the analysis
    // artifact instead of re-running parse + golden run + DDG — the resident
    // map is what makes daemon-side injections start hot. A bad target fails
    // here, cheaply, instead of through worker relaunch exhaustion.
    try {
      const int scale = std::atoi(FlagValue(job.args, "scale", "1").c_str());
      bool hit = false;
      EnsureResident(job.args[1], scale, /*jobs=*/0, &hit);
    } catch (const std::exception& error) {
      job.conn->SendError(ErrorCode::kBadRequest, error.what());
      return JobOutcome::kCompleted;
    }

    const std::string base = jobs_dir + "/job-" + std::to_string(job.id);
    const std::string out_path = base + ".out";
    const std::string err_path = base + ".err";
    const std::string progress_path = base + ".progress";

    fi::SupervisorOptions sup;
    sup.shards = 1;
    sup.retries = options.retries;
    sup.command = [&](int) {
      SubprocessOptions cmd;
      cmd.argv.push_back(options.exe_path);
      for (const std::string& arg : job.args) cmd.argv.push_back(arg);
      cmd.argv.push_back("--cache-dir");
      cmd.argv.push_back(cache_dir);
      cmd.env = {"EPVF_PROGRESS=0", "EPVF_PROGRESS_FILE=" + progress_path, "EPVF_TRACE=0",
                 "EPVF_CACHE_DIR="};
      cmd.stdout_path = out_path;
      cmd.stderr_path = err_path;
      return cmd;
    };
    sup.on_event = [&](const std::string& message) {
      Emit("job " + std::to_string(job.id) + ": " + message);
    };
    sup.cancelled = [&] { return stop.load() || job.cancel.load(); };

    // Progress pump: forward the worker's epvf-progress-v1 snapshots as
    // kProgress frames whenever the published file changes.
    std::string last_progress;
    auto last_pump = std::chrono::steady_clock::now();
    sup.on_poll = [&] {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_pump).count() <
          options.progress_interval_seconds) {
        return;
      }
      last_pump = now;
      std::string text = ReadFileText(progress_path);
      if (text.empty() || text == last_progress) return;
      if (!obs::ParseProgressSnapshot(text).has_value()) return;
      last_progress = std::move(text);
      job.conn->Send(FrameType::kProgress, last_progress);
    };

    const fi::SupervisorResult result = fi::RunShardSupervisor(sup);
    if (result.cancelled) {
      job.conn->SendError(ErrorCode::kCancelled, "job " + std::to_string(job.id) + " cancelled");
    } else {
      const fi::ShardOutcome& outcome = result.shards[0];
      const std::string out_text = ReadFileText(out_path);
      const std::string err_text = ReadFileText(err_path);
      if (!out_text.empty()) job.conn->Send(FrameType::kStdout, out_text);
      if (!err_text.empty()) job.conn->Send(FrameType::kStderr, err_text);
      const std::uint64_t code =
          outcome.succeeded ? 0 : (outcome.last_status.exited ? outcome.last_status.code : 1);
      job.conn->Send(FrameType::kDone, EncodeU64(code));
    }
    std::error_code ec;
    for (const std::string& path : {out_path, err_path, progress_path}) {
      std::filesystem::remove(path, ec);
    }
    return result.cancelled ? JobOutcome::kCancelled : JobOutcome::kCompleted;
  }
};

Server::Server(ServerOptions options) : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { Stop(); }

const std::string& Server::cache_dir() const { return impl_->cache_dir; }
const std::string& Server::socket_path() const { return impl_->options.socket_path; }

bool Server::Start() {
  Impl& im = *impl_;
  if (im.started) return false;

  im.cache_dir = im.options.cache_dir;
  if (im.cache_dir.empty()) {
    std::string pattern = (std::filesystem::temp_directory_path() / "epvf-serve-XXXXXX").string();
    char* made = ::mkdtemp(pattern.data());
    if (made == nullptr) {
      im.Emit("cannot create a private cache directory");
      return false;
    }
    im.cache_dir = made;
    im.private_cache_dir = true;
  }
  {
    std::string pattern =
        (std::filesystem::temp_directory_path() / "epvf-serve-jobs-XXXXXX").string();
    char* made = ::mkdtemp(pattern.data());
    if (made == nullptr) {
      im.Emit("cannot create a job spool directory");
      return false;
    }
    im.jobs_dir = made;
  }
  im.cache.emplace(im.cache_dir);
  if (!im.cache->enabled()) {
    im.Emit("cache directory " + im.cache_dir + " is unusable");
    return false;
  }

  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (im.options.socket_path.size() >= sizeof addr.sun_path) {
    im.Emit("socket path too long: " + im.options.socket_path);
    return false;
  }
  std::strncpy(addr.sun_path, im.options.socket_path.c_str(), sizeof addr.sun_path - 1);

  im.listen_fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (im.listen_fd < 0) {
    im.Emit("cannot create socket");
    return false;
  }
  ::unlink(im.options.socket_path.c_str());
  if (::bind(im.listen_fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(im.listen_fd, 64) != 0) {
    im.Emit("cannot bind " + im.options.socket_path + ": " + std::strerror(errno));
    ::close(im.listen_fd);
    im.listen_fd = -1;
    return false;
  }

  im.started = true;
  im.accept_thread = std::thread([&im] { im.AcceptLoop(); });
  const int slots = std::max(1, im.options.slots);
  im.executors.reserve(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    im.executors.emplace_back([&im] { im.ExecutorLoop(); });
  }
  return true;
}

void Server::Wait() {
  Impl& im = *impl_;
  // Polling wait (100 ms) so RequestStop stays async-signal-safe: a SIGTERM
  // handler only does one atomic store, never touches a mutex or cv.
  while (!im.stop_requested.load() && !im.stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

void Server::RequestStop() { impl_->stop_requested.store(true); }

void Server::Stop() {
  Impl& im = *impl_;
  if (!im.started || im.stopped) return;
  im.stopped = true;
  im.stop.store(true);
  im.stop_requested.store(true);

  // Fail everything still queued; running jobs see the stop flag through
  // their supervisor's cancelled predicate and wind down. The terminal
  // errors go out after sched_mutex is released, like every other send.
  std::vector<std::shared_ptr<Job>> dropped;
  {
    const std::lock_guard<std::mutex> lock(im.sched_mutex);
    while (!im.queue.empty()) {
      std::shared_ptr<Job> job = im.queue.front();
      im.DropQueuedLocked(job);
      dropped.push_back(std::move(job));
    }
  }
  for (const std::shared_ptr<Job>& job : dropped) {
    Impl::SendJobError(*job, ErrorCode::kShuttingDown);
  }
  im.sched_cv.notify_all();
  for (std::thread& t : im.executors) t.join();
  im.executors.clear();

  if (im.accept_thread.joinable()) im.accept_thread.join();
  if (im.listen_fd >= 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
  }
  ::unlink(im.options.socket_path.c_str());

  {
    const std::lock_guard<std::mutex> lock(im.conn_mutex);
    for (const auto& conn : im.connections) {
      // Under the write mutex so the fd cannot be closed (and its number
      // recycled) between the check and the shutdown. This wakes readers
      // blocked in recv; any send in flight fails and latches the
      // connection, bounded by the socket send timeout.
      const std::lock_guard<std::mutex> write_lock(conn->write_mutex);
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : im.readers) t.join();
  {
    const std::lock_guard<std::mutex> lock(im.conn_mutex);
    im.readers.clear();
    im.connections.clear();
  }

  // The cache destructor persists its lifetime counters into the directory,
  // so it must run before a private directory is removed.
  im.cache.reset();
  std::error_code ec;
  if (im.private_cache_dir) std::filesystem::remove_all(im.cache_dir, ec);
  if (!im.jobs_dir.empty()) std::filesystem::remove_all(im.jobs_dir, ec);
  im.Emit("stopped");
}

}  // namespace epvf::serve
