// epvfd — the resident analysis daemon behind `epvf serve`.
//
// A Server listens on a Unix-domain socket, speaks epvf-wire-v1 (wire.h,
// docs/SERVE_PROTOCOL.md), and turns the one-shot CLI into a service: parsed
// ir modules and their core::Analysis results stay resident in memory across
// requests, and every job shares one artifact-store cache directory, so a
// warm `analyze` request skips parse + golden run + DDG entirely and an
// `inject` worker starts from a hot analysis artifact.
//
// Execution model:
//   - `analyze` runs in-process against the resident map and renders its
//     report through the same code as the local CLI (serve/render.h), so the
//     reply's stdout bytes are identical to a local run.
//   - `inject` / `campaign` re-exec the epvf binary as a supervised worker
//     (fi::RunShardSupervisor with one shard): a worker that dies is
//     relaunched and resumes from the shared cache's completion masks, so
//     daemon jobs keep the PR-5 crash-tolerance story. The worker's progress
//     snapshots are pumped to the client as kProgress frames while it runs;
//     its stdout/stderr are streamed back afterwards, then kDone.
//
// Scheduling: one bounded queue feeds `slots` executor threads. Admission
// past the bound is rejected with kError/kBusy + retry_after_ms
// (backpressure, never an unbounded queue). Among queued jobs the highest
// priority wins; ties rotate round-robin across client connections (one
// chatty client cannot starve the rest), FIFO within a client. Cancellation
// removes a queued job or kills a running job's worker; a client that
// disconnects implicitly cancels its jobs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace epvf::serve {

struct ServerOptions {
  std::string socket_path;
  /// Artifact-store directory shared by in-process analyses and worker
  /// processes. Empty = a private mkdtemp directory, removed on Stop.
  std::string cache_dir;
  /// Executor threads — jobs running concurrently (this container has one
  /// core, so the default is serial).
  int slots = 1;
  /// Queued-job bound; admissions beyond it get kError/kBusy.
  int queue_limit = 16;
  /// Worker relaunch budget per inject/campaign job.
  int retries = 2;
  /// Cadence of kProgress frames while a worker runs.
  double progress_interval_seconds = 0.25;
  /// SO_SNDTIMEO on accepted sockets: a client that stops reading fails its
  /// next frame after this bound and is latched closed, so a hostile peer
  /// can stall only its own connection, never a daemon thread.
  int send_timeout_seconds = 10;
  /// The epvf binary to re-exec for inject/campaign workers.
  std::string exe_path;
  /// Optional one-line diagnostics sink (connection lifecycle, job events).
  std::function<void(const std::string& message)> on_event;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  /// Stops (see Stop) if still running.
  ~Server();

  /// Binds the socket and starts the accept/executor threads. False (with a
  /// message via on_event) when the socket or cache directory cannot be set
  /// up.
  [[nodiscard]] bool Start();

  /// Blocks until a kShutdown request or RequestStop. Does not tear down —
  /// call Stop afterwards (the split keeps Stop off the reader threads,
  /// which Stop joins).
  void Wait();

  /// Async-signal-safe shutdown trigger: unblocks Wait. Safe from a signal
  /// handler (one atomic store).
  void RequestStop();

  /// Full teardown: closes the socket, fails queued jobs with
  /// kShuttingDown, kills running workers (their partial state stays in the
  /// cache, so resubmitted campaigns resume), joins every thread, removes a
  /// private cache directory. Idempotent.
  void Stop();

  [[nodiscard]] const std::string& cache_dir() const;
  [[nodiscard]] const std::string& socket_path() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace epvf::serve
