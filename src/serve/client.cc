#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace epvf::serve {

std::optional<ServeClient> ServeClient::Connect(const std::string& socket_path) {
  struct sockaddr_un addr;
  if (socket_path.size() >= sizeof addr.sun_path) return std::nullopt;
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return std::nullopt;
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  ServeClient client;
  client.fd_ = fd;
  return client;
}

ServeClient::ServeClient(ServeClient&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

ServeClient::RunResult ServeClient::Run(const RunRequest& request,
                                        const std::function<void(std::string_view)>& on_stdout,
                                        const std::function<void(std::string_view)>& on_stderr,
                                        const std::function<void(std::string_view)>& on_progress) {
  RunResult result;
  if (!WriteFrame(fd_, FrameType::kRun, EncodeRunRequest(request))) return result;
  while (true) {
    Frame frame;
    if (ReadFrame(fd_, &frame) != ReadStatus::kOk) return result;
    switch (frame.type) {
      case FrameType::kAck:
        result.job_id = DecodeU64(frame.payload).value_or(0);
        break;
      case FrameType::kStdout:
        if (on_stdout) on_stdout(frame.payload);
        break;
      case FrameType::kStderr:
        if (on_stderr) on_stderr(frame.payload);
        break;
      case FrameType::kProgress:
        if (on_progress) on_progress(frame.payload);
        break;
      case FrameType::kDone: {
        const std::optional<std::uint64_t> code = DecodeU64(frame.payload);
        if (!code.has_value()) return result;
        result.exit_code = *code;
        result.transport_ok = true;
        return result;
      }
      case FrameType::kError: {
        std::optional<ErrorReply> error = DecodeErrorReply(frame.payload);
        if (!error.has_value()) return result;
        result.error = std::move(error);
        result.transport_ok = true;
        return result;
      }
      default:
        // Unknown server frame within the same protocol version: skip it —
        // forward compatibility for additive stream frames.
        break;
    }
  }
}

std::optional<std::string> ServeClient::SimpleRequest(FrameType request, FrameType reply) {
  if (!WriteFrame(fd_, request, {})) return std::nullopt;
  Frame frame;
  if (ReadFrame(fd_, &frame) != ReadStatus::kOk) return std::nullopt;
  if (frame.type != reply) return std::nullopt;
  return std::move(frame.payload);
}

std::optional<std::string> ServeClient::Status() {
  return SimpleRequest(FrameType::kStatus, FrameType::kStatusReport);
}

std::optional<std::string> ServeClient::Metrics() {
  return SimpleRequest(FrameType::kMetrics, FrameType::kMetricsReport);
}

bool ServeClient::Cancel(std::uint64_t job_id, ErrorReply* error_out) {
  if (!WriteFrame(fd_, FrameType::kCancel, EncodeU64(job_id))) return false;
  Frame frame;
  if (ReadFrame(fd_, &frame) != ReadStatus::kOk) return false;
  if (frame.type == FrameType::kDone) return true;
  if (frame.type == FrameType::kError && error_out != nullptr) {
    if (std::optional<ErrorReply> error = DecodeErrorReply(frame.payload)) {
      *error_out = std::move(*error);
    }
  }
  return false;
}

bool ServeClient::Shutdown() {
  if (!WriteFrame(fd_, FrameType::kShutdown, {})) return false;
  Frame frame;
  return ReadFrame(fd_, &frame) == ReadStatus::kOk && frame.type == FrameType::kDone;
}

}  // namespace epvf::serve
