// epvf-wire-v1 — the daemon's length-prefixed frame protocol.
//
// Every message on the Unix-domain socket is one frame: a fixed 16-byte
// header (magic "EPVW", format version, frame type, payload length, all
// little-endian u32) followed by the payload bytes. The header is validated
// before a single payload byte is read, so a malformed peer costs the server
// one bounded read, never memory or a crash: bad magic, an unknown version,
// and an oversized length each map to a distinct ReadStatus the server
// answers with an error frame before closing the connection. Payloads are
// encoded with the store layer's bounds-checked little-endian primitives
// (ByteWriter/ByteReader) — decoding garbage degrades to std::nullopt.
//
// The full request/response vocabulary, framing rules, and versioning policy
// are documented in docs/SERVE_PROTOCOL.md.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace epvf::serve {

/// "EPVW" as a little-endian u32 ('E' is the lowest byte on the wire).
inline constexpr std::uint32_t kWireMagic = 0x57565045u;
inline constexpr std::uint32_t kWireVersion = 1;
/// Hard payload bound; a length above this is rejected before any payload
/// read. The largest legitimate frame is a worker's buffered stdout (a full
/// campaign record dump); 16 MiB leaves generous headroom above that while
/// still capping what a hostile length field can make the server allocate.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

enum class FrameType : std::uint32_t {
  // Client → server.
  kRun = 1,       ///< RunRequest: queue an analyze/inject/campaign job
  kStatus = 2,    ///< empty: report queue + running jobs
  kCancel = 3,    ///< u64 job id
  kShutdown = 4,  ///< empty: drain nothing, stop the daemon
  kMetrics = 5,   ///< empty: dump the obs registry

  // Server → client.
  kAck = 64,            ///< u64 job id — the run was admitted
  kStdout = 65,         ///< raw bytes for the client's stdout
  kStderr = 66,         ///< raw bytes for the client's stderr
  kProgress = 67,       ///< epvf-progress-v1 snapshot text
  kDone = 68,           ///< u64 exit code — terminal frame of a request
  kError = 69,          ///< ErrorReply — terminal frame of a failed request
  kStatusReport = 70,   ///< status text
  kMetricsReport = 71,  ///< epvf-metrics-v1 JSON
};

enum class ErrorCode : std::uint32_t {
  kBadRequest = 1,    ///< malformed frame/payload or a rejected command/flag
  kBusy = 2,          ///< queue full — retry after retry_after_ms
  kCancelled = 3,     ///< the job was cancelled before completing
  kShuttingDown = 4,  ///< the daemon is stopping and dropped the job
  kInternal = 5,      ///< daemon-side failure (details in message)
  kUnknownJob = 6,    ///< cancel named a job id the daemon does not hold
};

struct Frame {
  FrameType type{};
  std::string payload;
};

/// How a frame read ended. Everything except kOk/kClosed is a protocol
/// violation the server reports (best effort) before dropping the peer.
enum class ReadStatus {
  kOk,
  kClosed,      ///< clean EOF between frames
  kTruncated,   ///< EOF inside a header or payload
  kBadMagic,    ///< first four bytes were not "EPVW"
  kBadVersion,  ///< unsupported protocol version
  kOversized,   ///< payload length above kMaxFramePayload
  kIoError,     ///< recv failed
};
[[nodiscard]] std::string_view ReadStatusName(ReadStatus status);

/// Blocking full-frame read. On kOk, `out` holds the frame; on anything
/// else `out` is unspecified.
[[nodiscard]] ReadStatus ReadFrame(int fd, Frame* out);

/// Blocking full-frame write (MSG_NOSIGNAL — a dead peer is a false return,
/// never a SIGPIPE). False on any short write.
[[nodiscard]] bool WriteFrame(int fd, FrameType type, std::string_view payload);

/// kRun payload: a priority plus the argv tokens of the equivalent local CLI
/// invocation (command, target, then flags), e.g. {"inject","mm","--runs","40"}.
struct RunRequest {
  std::uint32_t priority = 0;
  std::vector<std::string> args;
};
[[nodiscard]] std::string EncodeRunRequest(const RunRequest& request);
[[nodiscard]] std::optional<RunRequest> DecodeRunRequest(std::string_view payload);

/// kError payload.
struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::uint32_t retry_after_ms = 0;  ///< nonzero only with kBusy
  std::string message;
};
[[nodiscard]] std::string EncodeErrorReply(const ErrorReply& reply);
[[nodiscard]] std::optional<ErrorReply> DecodeErrorReply(std::string_view payload);

/// kAck / kDone / kCancel payloads: one u64.
[[nodiscard]] std::string EncodeU64(std::uint64_t value);
[[nodiscard]] std::optional<std::uint64_t> DecodeU64(std::string_view payload);

}  // namespace epvf::serve
