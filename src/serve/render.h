// Report renderers shared between the CLI and the daemon.
//
// The daemon's byte-identity contract — `epvf analyze --connect` prints the
// same stdout as a local `epvf analyze` — only holds if both sides run the
// same rendering code. The CLI hands this function std::cout; the daemon
// hands it an ostringstream whose bytes become kStdout frames. Everything
// printed here is a deterministic function of the analysis (no timing, no
// cache status — those are stderr diagnostics and stay with the caller).
#pragma once

#include <ostream>

#include "epvf/analysis.h"
#include "epvf/report.h"

namespace epvf::serve {

/// The exact stdout of `epvf analyze`: the metric block plus the structure
/// vulnerability table.
void RenderAnalyzeReport(const core::Analysis& analysis, std::ostream& out);

/// Same report from pre-assembled statistics — the compositional pipeline's
/// entry point. `analyze --incremental` stdout is byte-identical to a cold
/// `analyze` because both funnel through this overload's format strings.
void RenderAnalyzeReport(const core::ReportStats& stats, std::ostream& out);

}  // namespace epvf::serve
