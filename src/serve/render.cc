#include "serve/render.h"

#include <algorithm>
#include <cstdio>
#include <string>

#include "epvf/report.h"
#include "support/table.h"

namespace epvf::serve {

namespace {

/// printf-formatted line into an ostream — the renderer must reproduce the
/// CLI's historical std::printf output byte for byte, so it keeps the same
/// format strings and routes them through snprintf.
template <typename... Args>
void Line(std::ostream& out, const char* format, Args... args) {
  char buffer[256];
  const int n = std::snprintf(buffer, sizeof buffer, format, args...);
  if (n > 0) out.write(buffer, std::min<std::size_t>(static_cast<std::size_t>(n), sizeof buffer - 1));
}

}  // namespace

void RenderAnalyzeReport(const core::Analysis& analysis, std::ostream& out) {
  RenderAnalyzeReport(core::StatsFromAnalysis(analysis), out);
}

void RenderAnalyzeReport(const core::ReportStats& stats, std::ostream& out) {
  Line(out, "dynamic instructions : %llu\n",
       static_cast<unsigned long long>(stats.dyn_instructions));
  Line(out, "DDG nodes            : %zu (ACE: %llu)\n",
       static_cast<std::size_t>(stats.num_nodes),
       static_cast<unsigned long long>(stats.ace_node_count));
  Line(out, "PVF  (Eq. 1)         : %.4f\n", stats.Pvf());
  Line(out, "ePVF (Eq. 2)         : %.4f\n", stats.Epvf());
  Line(out, "crash-rate estimate  : %.4f\n", stats.CrashRateEstimate());
  Line(out, "memory resource      : PVF %.4f, ePVF %.4f\n", stats.MemoryPvf(),
       stats.MemoryEpvf());

  AsciiTable table({"structure", "total bits", "ACE", "crash", "class ePVF"});
  table.SetTitle("structure vulnerability");
  for (const core::StructureVulnerability& entry : stats.structure) {
    if (entry.total_bits == 0) continue;
    table.AddRow({std::string(core::RegisterClassName(entry.cls)),
                  std::to_string(entry.total_bits), std::to_string(entry.ace_bits),
                  std::to_string(entry.crash_bits), AsciiTable::Num(entry.Epvf())});
  }
  table.Print(out);
}

}  // namespace epvf::serve
