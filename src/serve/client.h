// Client side of epvf-wire-v1 — what `epvf ... --connect <socket>` runs on.
//
// A ServeClient owns one connected Unix-domain socket and, by protocol, one
// outstanding request at a time: responses carry no correlation id, so
// concurrent requests must use separate connections (the CLI opens a fresh
// one per command; the soak test opens one per thread).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "serve/wire.h"

namespace epvf::serve {

class ServeClient {
 public:
  /// Connects to the daemon's socket; std::nullopt when the socket is
  /// absent or refuses.
  [[nodiscard]] static std::optional<ServeClient> Connect(const std::string& socket_path);

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient();

  struct RunResult {
    /// False = the transport broke (daemon died, malformed reply) before a
    /// terminal frame; exit_code/error are then meaningless.
    bool transport_ok = false;
    std::uint64_t job_id = 0;  ///< from the kAck, 0 when rejected at admission
    /// Set when the request ended in kError (kBusy, kCancelled, ...).
    std::optional<ErrorReply> error;
    /// The worker's exit code from kDone.
    std::uint64_t exit_code = 0;
  };

  /// Submits a run request and pumps frames until the terminal kDone/kError.
  /// The sinks receive payload bytes as they arrive (any may be null).
  [[nodiscard]] RunResult Run(const RunRequest& request,
                              const std::function<void(std::string_view)>& on_stdout,
                              const std::function<void(std::string_view)>& on_stderr,
                              const std::function<void(std::string_view)>& on_progress);

  /// kStatus / kMetrics round-trip; std::nullopt on transport failure.
  [[nodiscard]] std::optional<std::string> Status();
  [[nodiscard]] std::optional<std::string> Metrics();

  /// kCancel round-trip. False: transport failure or kUnknownJob (the
  /// distinction, when needed, is in `error_out`).
  [[nodiscard]] bool Cancel(std::uint64_t job_id, ErrorReply* error_out = nullptr);

  /// kShutdown round-trip: true once the daemon acknowledged it will stop.
  [[nodiscard]] bool Shutdown();

 private:
  ServeClient() = default;

  [[nodiscard]] std::optional<std::string> SimpleRequest(FrameType request, FrameType reply);

  int fd_ = -1;
};

}  // namespace epvf::serve
