#include "serve/wire.h"

#include <sys/socket.h>

#include <cerrno>
#include <span>

#include "store/serializer.h"

namespace epvf::serve {

namespace {

constexpr std::size_t kHeaderSize = 16;

/// Reads exactly `size` bytes. 1 = done, 0 = clean EOF before the first
/// byte, -1 = EOF/failure mid-read.
int ReadFully(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n == 0) return got == 0 ? 0 : -1;
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<std::size_t>(n);
  }
  return 1;
}

std::span<const std::uint8_t> AsBytes(std::string_view text) {
  return {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()};
}

}  // namespace

std::string_view ReadStatusName(ReadStatus status) {
  switch (status) {
    case ReadStatus::kOk: return "ok";
    case ReadStatus::kClosed: return "closed";
    case ReadStatus::kTruncated: return "truncated frame";
    case ReadStatus::kBadMagic: return "bad magic";
    case ReadStatus::kBadVersion: return "unsupported protocol version";
    case ReadStatus::kOversized: return "oversized payload";
    case ReadStatus::kIoError: return "read error";
  }
  return "unknown";
}

ReadStatus ReadFrame(int fd, Frame* out) {
  char header[kHeaderSize];
  errno = 0;  // distinguish mid-header EOF (kTruncated) from a real recv error
  const int head = ReadFully(fd, header, kHeaderSize);
  if (head == 0) return ReadStatus::kClosed;
  if (head < 0) return errno == 0 ? ReadStatus::kTruncated : ReadStatus::kIoError;

  store::ByteReader reader(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(header), kHeaderSize));
  const std::uint32_t magic = reader.U32();
  const std::uint32_t version = reader.U32();
  const std::uint32_t type = reader.U32();
  const std::uint32_t length = reader.U32();
  if (magic != kWireMagic) return ReadStatus::kBadMagic;
  if (version != kWireVersion) return ReadStatus::kBadVersion;
  if (length > kMaxFramePayload) return ReadStatus::kOversized;

  out->type = static_cast<FrameType>(type);
  out->payload.resize(length);
  if (length > 0) {
    errno = 0;
    if (ReadFully(fd, out->payload.data(), length) != 1) {
      return errno == 0 ? ReadStatus::kTruncated : ReadStatus::kIoError;
    }
  }
  return ReadStatus::kOk;
}

bool WriteFrame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) return false;
  store::ByteWriter header;
  header.U32(kWireMagic);
  header.U32(kWireVersion);
  header.U32(static_cast<std::uint32_t>(type));
  header.U32(static_cast<std::uint32_t>(payload.size()));
  std::string frame = header.bytes();
  frame.append(payload);

  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string EncodeRunRequest(const RunRequest& request) {
  store::ByteWriter out;
  out.U32(request.priority);
  out.U32(static_cast<std::uint32_t>(request.args.size()));
  for (const std::string& arg : request.args) out.Str(arg);
  return out.bytes();
}

std::optional<RunRequest> DecodeRunRequest(std::string_view payload) {
  store::ByteReader reader(AsBytes(payload));
  RunRequest request;
  request.priority = reader.U32();
  const std::uint32_t count = reader.U32();
  // Each argument costs at least its 8-byte length prefix; bounding the
  // count by the remaining bytes stops a hostile header from driving a
  // multi-gigabyte reserve.
  if (count > reader.Remaining() / 8) return std::nullopt;
  request.args.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) request.args.push_back(reader.Str());
  if (!reader.Finished()) return std::nullopt;
  return request;
}

std::string EncodeErrorReply(const ErrorReply& reply) {
  store::ByteWriter out;
  out.U32(static_cast<std::uint32_t>(reply.code));
  out.U32(reply.retry_after_ms);
  out.Str(reply.message);
  return out.bytes();
}

std::optional<ErrorReply> DecodeErrorReply(std::string_view payload) {
  store::ByteReader reader(AsBytes(payload));
  ErrorReply reply;
  reply.code = static_cast<ErrorCode>(reader.U32());
  reply.retry_after_ms = reader.U32();
  reply.message = reader.Str();
  if (!reader.Finished()) return std::nullopt;
  return reply;
}

std::string EncodeU64(std::uint64_t value) {
  store::ByteWriter out;
  out.U64(value);
  return out.bytes();
}

std::optional<std::uint64_t> DecodeU64(std::string_view payload) {
  store::ByteReader reader(AsBytes(payload));
  const std::uint64_t value = reader.U64();
  if (!reader.Finished()) return std::nullopt;
  return value;
}

}  // namespace epvf::serve
