#include "ir/value.h"

#include <cstring>
#include <sstream>

#include "support/bits.h"

namespace epvf::ir {

double Constant::AsDouble() const {
  double d;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

float Constant::AsFloat() const {
  const auto low = static_cast<std::uint32_t>(bits);
  float f;
  std::memcpy(&f, &low, sizeof f);
  return f;
}

std::int64_t Constant::AsSigned() const {
  return static_cast<std::int64_t>(SignExtendFrom(bits, type.BitWidth()));
}

std::string Constant::ToString() const {
  std::ostringstream os;
  if (type.IsFloat()) {
    // Hexfloat is exact, so printed modules round-trip through the parser.
    os << std::hexfloat;
    if (type.scalar == Scalar::kFloat) {
      os << static_cast<double>(AsFloat());
    } else {
      os << AsDouble();
    }
  } else if (type.IsPointer()) {
    os << "0x" << std::hex << bits;
  } else {
    os << AsSigned();
  }
  return os.str();
}

Constant MakeIntConstant(Type type, std::int64_t value) {
  return Constant{type, TruncateTo(static_cast<std::uint64_t>(value), type.BitWidth())};
}

Constant MakeF32Constant(float value) {
  std::uint32_t raw;
  std::memcpy(&raw, &value, sizeof raw);
  return Constant{Type::F32(), raw};
}

Constant MakeF64Constant(double value) {
  std::uint64_t raw;
  std::memcpy(&raw, &value, sizeof raw);
  return Constant{Type::F64(), raw};
}

}  // namespace epvf::ir
