// IR instructions.
//
// One POD-ish struct covers every opcode; the per-opcode payload (predicates,
// branch targets, callee, GEP element size, alignment) lives in small inline
// fields rather than a class hierarchy so instructions can be copied freely —
// the duplication transform (paper section V) and the parser both build
// instruction vectors wholesale, and the interpreter dispatches on `op`.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/intrinsics.h"
#include "ir/opcode.h"
#include "ir/value.h"

namespace epvf::ir {

inline constexpr std::uint32_t kNoRegister = kInvalidIndex;

struct Instruction {
  Opcode op = Opcode::kRet;
  Type type;                           ///< result type (Void for store/br/ret)
  std::uint32_t result = kNoRegister;  ///< defined register, if any
  std::vector<ValueRef> operands;

  // --- per-opcode payloads -------------------------------------------------
  ICmpPred icmp_pred = ICmpPred::kEq;
  FCmpPred fcmp_pred = FCmpPred::kOeq;

  /// kBr: target = bb_true. kCondBr: operands[0] is the i1 condition.
  std::uint32_t bb_true = kInvalidIndex;
  std::uint32_t bb_false = kInvalidIndex;

  /// kCall: either a function index in the module or an intrinsic.
  bool is_intrinsic = false;
  std::uint32_t callee = kInvalidIndex;  ///< function index when !is_intrinsic
  Intrinsic intrinsic = Intrinsic::kOutputI64;

  /// kAlloca: fixed byte size of the stack slot.
  std::uint64_t alloca_bytes = 0;

  /// kLoad/kStore: required alignment (subject of the misaligned-access trap).
  std::uint32_t align = 1;

  /// kGep: byte size of the addressed element; address = base + size * index.
  std::uint64_t gep_elem_bytes = 0;

  /// kPhi: incoming block ids, parallel to `operands`.
  std::vector<std::uint32_t> phi_blocks;

  [[nodiscard]] bool DefinesValue() const {
    return result != kNoRegister && !type.IsVoid();
  }

  /// Operand slot holding the memory address for load/store, or -1.
  [[nodiscard]] int AddressOperandSlot() const {
    if (op == Opcode::kLoad) return 0;
    if (op == Opcode::kStore) return 1;  // store <value>, <ptr>
    return -1;
  }
};

}  // namespace epvf::ir
