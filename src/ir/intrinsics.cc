#include "ir/intrinsics.h"

#include <array>

namespace epvf::ir {

namespace {
struct Info {
  std::string_view name;
  Type result;
  unsigned arity;
};

constexpr std::array<Info, kNumIntrinsics> kInfo = {{
    {"output_i64", Type::Void(), 1},
    {"output_f64", Type::Void(), 1},
    {"malloc", Type::I8().Ptr(), 1},
    {"free", Type::Void(), 1},
    {"abort", Type::Void(), 0},
    {"assert", Type::Void(), 1},
    {"sqrt", Type::F64(), 1},
    {"fabs", Type::F64(), 1},
    {"exp", Type::F64(), 1},
    {"log", Type::F64(), 1},
    {"pow", Type::F64(), 2},
    {"fmin", Type::F64(), 2},
    {"fmax", Type::F64(), 2},
    {"sin", Type::F64(), 1},
    {"cos", Type::F64(), 1},
    {"floor", Type::F64(), 1},
    {"detect", Type::Void(), 0},
}};
}  // namespace

std::string_view IntrinsicName(Intrinsic which) { return kInfo[static_cast<int>(which)].name; }

std::optional<Intrinsic> IntrinsicByName(std::string_view name) {
  for (int i = 0; i < kNumIntrinsics; ++i) {
    if (kInfo[i].name == name) return static_cast<Intrinsic>(i);
  }
  return std::nullopt;
}

Type IntrinsicResultType(Intrinsic which) { return kInfo[static_cast<int>(which)].result; }

unsigned IntrinsicArity(Intrinsic which) { return kInfo[static_cast<int>(which)].arity; }

}  // namespace epvf::ir
