// Module: the unit the whole pipeline operates on.
//
// Holds functions, globals and an interned constant pool. Constants are
// interned so `ValueRef`s stay small and structural equality of modules is
// cheap (the parser/printer round-trip tests rely on it).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ir/function.h"

namespace epvf::ir {

/// A global variable: a named, fixed-size byte region in the data segment.
/// `init` (optional) provides the initial bytes; zero-filled otherwise.
struct GlobalVar {
  std::string name;
  Type element_type;        ///< type of one element (globals are arrays)
  std::uint64_t count = 1;  ///< number of elements
  std::vector<std::uint8_t> init;

  [[nodiscard]] std::uint64_t ByteSize() const { return element_type.StoreSize() * count; }
  /// The type a reference to this global has: pointer to the element type.
  [[nodiscard]] Type PointerType() const { return element_type.Ptr(); }
};

class Module {
 public:
  std::vector<Function> functions;
  std::vector<GlobalVar> globals;

  /// Interns a constant and returns its pool reference.
  [[nodiscard]] ValueRef InternConstant(const Constant& c);

  [[nodiscard]] const Constant& GetConstant(std::uint32_t index) const {
    return constants_[index];
  }
  [[nodiscard]] const std::vector<Constant>& constants() const { return constants_; }

  [[nodiscard]] std::optional<std::uint32_t> FindFunction(std::string_view name) const;
  [[nodiscard]] std::optional<std::uint32_t> FindGlobal(std::string_view name) const;

  /// Type of any value reference, resolving registers against `fn`.
  [[nodiscard]] Type TypeOf(const Function& fn, ValueRef ref) const;

  [[nodiscard]] std::size_t TotalStaticInstructions() const;

 private:
  struct ConstantHash {
    std::size_t operator()(const Constant& c) const noexcept {
      std::size_t h = c.bits * 0x9E3779B97F4A7C15ull;
      h ^= (static_cast<std::size_t>(c.type.scalar) << 1) ^
           (static_cast<std::size_t>(c.type.bits) << 8) ^
           (static_cast<std::size_t>(c.type.ptr_depth) << 16);
      return h;
    }
  };

  std::vector<Constant> constants_;
  std::unordered_map<Constant, std::uint32_t, ConstantHash> constant_index_;
};

}  // namespace epvf::ir
