// Type system of the mini LLVM-style IR.
//
// The ePVF methodology works at the LLVM IR abstraction level (paper section
// II-D): typed virtual registers whose *bit widths* are the unit of ACE
// accounting (the running example in section III-A sums 32- and 64-bit
// registers). We reproduce the part of LLVM's type system the methodology
// touches: fixed-width integers, float/double, and (possibly nested)
// pointers. Aggregates are not modeled — `getelementptr` with a scaled index
// covers the array addressing patterns of the evaluated kernels, and the
// paper's Table III only reasons about scalar address arithmetic.
#pragma once

#include <cstdint>
#include <string>

namespace epvf::ir {

enum class Scalar : std::uint8_t { kVoid, kInt, kFloat, kDouble };

/// A value type: a scalar, or a pointer chain of depth `ptr_depth` ending in
/// that scalar (e.g. {kInt,32,2} is `i32**`). Plain value semantics; types
/// are tiny and compared by value.
struct Type {
  Scalar scalar = Scalar::kVoid;
  std::uint8_t bits = 0;       ///< integer width when scalar == kInt (1..64)
  std::uint8_t ptr_depth = 0;  ///< 0 = scalar value, N>0 = N levels of pointer

  [[nodiscard]] static constexpr Type Void() { return {}; }
  [[nodiscard]] static constexpr Type Int(std::uint8_t bits) { return {Scalar::kInt, bits, 0}; }
  [[nodiscard]] static constexpr Type I1() { return Int(1); }
  [[nodiscard]] static constexpr Type I8() { return Int(8); }
  [[nodiscard]] static constexpr Type I16() { return Int(16); }
  [[nodiscard]] static constexpr Type I32() { return Int(32); }
  [[nodiscard]] static constexpr Type I64() { return Int(64); }
  [[nodiscard]] static constexpr Type F32() { return {Scalar::kFloat, 32, 0}; }
  [[nodiscard]] static constexpr Type F64() { return {Scalar::kDouble, 64, 0}; }

  /// Pointer to this type (one more level of indirection).
  [[nodiscard]] constexpr Type Ptr() const {
    Type t = *this;
    ++t.ptr_depth;
    return t;
  }

  /// The pointee type; only valid when IsPointer().
  [[nodiscard]] constexpr Type Pointee() const {
    Type t = *this;
    --t.ptr_depth;
    return t;
  }

  [[nodiscard]] constexpr bool IsVoid() const { return scalar == Scalar::kVoid && ptr_depth == 0; }
  [[nodiscard]] constexpr bool IsPointer() const { return ptr_depth > 0; }
  [[nodiscard]] constexpr bool IsInt() const { return !IsPointer() && scalar == Scalar::kInt; }
  [[nodiscard]] constexpr bool IsFloat() const {
    return !IsPointer() && (scalar == Scalar::kFloat || scalar == Scalar::kDouble);
  }
  /// Integer or pointer — the domain Table III's range rules apply to.
  [[nodiscard]] constexpr bool IsIntOrPointer() const { return IsPointer() || IsInt(); }

  /// Width in bits for ACE/PVF accounting: pointers count as 64-bit
  /// architectural registers, floats as their IEEE width.
  [[nodiscard]] constexpr unsigned BitWidth() const {
    if (IsPointer()) return 64;
    switch (scalar) {
      case Scalar::kVoid: return 0;
      case Scalar::kInt: return bits;
      case Scalar::kFloat: return 32;
      case Scalar::kDouble: return 64;
    }
    return 0;
  }

  /// In-memory size in bytes (i1 occupies one byte, as in LLVM memory layout).
  [[nodiscard]] constexpr unsigned StoreSize() const {
    if (IsPointer()) return 8;
    switch (scalar) {
      case Scalar::kVoid: return 0;
      case Scalar::kInt: return bits <= 8 ? 1 : bits / 8;
      case Scalar::kFloat: return 4;
      case Scalar::kDouble: return 8;
    }
    return 0;
  }

  /// Natural alignment used by the misaligned-access check (paper Table I
  /// reports misaligned accesses as a distinct crash class).
  [[nodiscard]] constexpr unsigned NaturalAlign() const { return StoreSize(); }

  constexpr bool operator==(const Type&) const = default;

  [[nodiscard]] std::string ToString() const;
};

}  // namespace epvf::ir
