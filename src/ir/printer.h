// Textual serialization of modules.
//
// The format is a compact LLVM-flavoured dialect; `Parser` (parser.h) reads
// it back. Round-tripping is exercised by tests and lets examples ship IR as
// text files.
#pragma once

#include <string>

#include "ir/module.h"

namespace epvf::ir {

[[nodiscard]] std::string PrintModule(const Module& module);
[[nodiscard]] std::string PrintFunction(const Module& module, const Function& fn);
[[nodiscard]] std::string PrintInstruction(const Module& module, const Function& fn,
                                           const Instruction& inst);
/// Renders a value operand, e.g. "%idx:i32", "7:i64", "@grid".
[[nodiscard]] std::string PrintValue(const Module& module, const Function& fn, ValueRef v);

}  // namespace epvf::ir
