// Basic blocks, functions and static instruction identity.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/instruction.h"

namespace epvf::ir {

struct BasicBlock {
  std::string name;
  std::vector<Instruction> instructions;

  [[nodiscard]] bool HasTerminator() const {
    return !instructions.empty() && IsTerminator(instructions.back().op);
  }
};

/// Identifies one static instruction inside a module: (function, block,
/// instruction index). Rankings in the protection case study and the
/// per-instruction ePVF of Eq. 3 are keyed by this id.
struct StaticInstrId {
  std::uint32_t function = kInvalidIndex;
  std::uint32_t block = kInvalidIndex;
  std::uint32_t instr = kInvalidIndex;

  constexpr bool operator==(const StaticInstrId&) const = default;
  constexpr auto operator<=>(const StaticInstrId&) const = default;
};

struct Function {
  std::string name;
  Type return_type = Type::Void();
  std::uint32_t num_params = 0;  ///< registers [0, num_params) are parameters
  std::vector<RegisterInfo> registers;
  std::vector<BasicBlock> blocks;  ///< blocks[0] is the entry block

  [[nodiscard]] std::uint32_t AddRegister(Type type, std::string name = {}) {
    registers.push_back(RegisterInfo{type, std::move(name)});
    return static_cast<std::uint32_t>(registers.size() - 1);
  }

  [[nodiscard]] std::uint32_t AddBlock(std::string name) {
    blocks.push_back(BasicBlock{std::move(name), {}});
    return static_cast<std::uint32_t>(blocks.size() - 1);
  }

  [[nodiscard]] Type RegisterType(std::uint32_t reg) const { return registers[reg].type; }

  [[nodiscard]] std::size_t InstructionCount() const {
    std::size_t n = 0;
    for (const auto& bb : blocks) n += bb.instructions.size();
    return n;
  }
};

}  // namespace epvf::ir
