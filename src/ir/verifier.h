// Module verifier.
//
// Checks the structural invariants the interpreter and the analyses assume:
// every block terminated, branch targets valid, SSA single-assignment, every
// register use dominated by its definition (computed via a Cooper-Harvey-
// Kennedy iterative dominator analysis), operand types consistent with each
// opcode, phi incoming blocks matching the CFG predecessors, and call
// signatures matching. Running it after construction (and after the
// duplication transform) catches malformed IR before it can silently skew an
// experiment.
#pragma once

#include <string>
#include <vector>

#include "ir/module.h"

namespace epvf::ir {

struct VerifyResult {
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }
  [[nodiscard]] std::string Summary() const;
};

[[nodiscard]] VerifyResult VerifyModule(const Module& module);

/// Throws std::runtime_error with the error summary if verification fails.
void VerifyModuleOrThrow(const Module& module);

/// CFG helper: predecessor block ids for each block of `fn`.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> ComputePredecessors(const Function& fn);

/// Immediate dominator of each block (entry's idom is itself); kInvalidIndex
/// for unreachable blocks.
[[nodiscard]] std::vector<std::uint32_t> ComputeImmediateDominators(const Function& fn);

/// Immediate postdominator of each block, computed against a virtual exit
/// node with index fn.blocks.size() that succeeds every ret-terminated block.
/// Blocks that cannot reach an exit get kInvalidIndex.
[[nodiscard]] std::vector<std::uint32_t> ComputeImmediatePostDominators(const Function& fn);

/// True when every path from `b` to function exit passes through `a`
/// (a == b counts). `ipdom` must come from ComputeImmediatePostDominators.
[[nodiscard]] bool PostDominates(const std::vector<std::uint32_t>& ipdom, std::uint32_t a,
                                 std::uint32_t b);

}  // namespace epvf::ir
