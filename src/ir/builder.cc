#include "ir/builder.h"

#include <stdexcept>

namespace epvf::ir {

std::uint32_t IRBuilder::DeclareGlobal(std::string name, Type element_type, std::uint64_t count,
                                       std::vector<std::uint8_t> init) {
  if (!init.empty() && init.size() != element_type.StoreSize() * count) {
    Fail("global initializer size mismatch for @" + name);
  }
  module_.globals.push_back(GlobalVar{std::move(name), element_type, count, std::move(init)});
  return static_cast<std::uint32_t>(module_.globals.size() - 1);
}

std::uint32_t IRBuilder::CreateFunction(std::string name, Type return_type,
                                        std::span<const Type> param_types,
                                        std::span<const std::string> param_names) {
  Function fn;
  fn.name = std::move(name);
  fn.return_type = return_type;
  fn.num_params = static_cast<std::uint32_t>(param_types.size());
  for (std::size_t i = 0; i < param_types.size(); ++i) {
    std::string pname = i < param_names.size() ? param_names[i] : "arg" + std::to_string(i);
    (void)fn.AddRegister(param_types[i], std::move(pname));
  }
  module_.functions.push_back(std::move(fn));
  func_ = static_cast<std::uint32_t>(module_.functions.size() - 1);
  block_ = CurrentFunction().AddBlock("entry");
  return func_;
}

void IRBuilder::SetFunction(std::uint32_t function_index) {
  if (function_index >= module_.functions.size()) Fail("SetFunction: bad index");
  func_ = function_index;
  block_ = module_.functions[func_].blocks.empty() ? kInvalidIndex : 0;
}

std::uint32_t IRBuilder::CreateBlock(std::string name) {
  // Suffix with the block index so labels are unique — the textual format
  // identifies branch targets by label.
  name += "." + std::to_string(CurrentFunction().blocks.size());
  return CurrentFunction().AddBlock(std::move(name));
}

void IRBuilder::SetInsertPoint(std::uint32_t block) {
  if (block >= CurrentFunction().blocks.size()) Fail("SetInsertPoint: bad block");
  block_ = block;
}

ValueRef IRBuilder::Param(std::uint32_t i) const {
  const Function& fn = module_.functions[func_];
  if (i >= fn.num_params) Fail("Param: index out of range");
  return ValueRef::Reg(i);
}

ValueRef IRBuilder::ConstInt(Type type, std::int64_t v) {
  if (!type.IsIntOrPointer()) Fail("ConstInt: non-integer type");
  return module_.InternConstant(MakeIntConstant(type, v));
}

Instruction& IRBuilder::Append(Instruction inst) {
  if (func_ == kInvalidIndex || block_ == kInvalidIndex) Fail("no insertion point");
  BasicBlock& bb = CurrentFunction().blocks[block_];
  if (bb.HasTerminator()) Fail("appending after terminator in block " + bb.name);
  bb.instructions.push_back(std::move(inst));
  return bb.instructions.back();
}

ValueRef IRBuilder::Binary(Opcode op, ValueRef a, ValueRef b, std::string name) {
  CheckSameType(a, b, OpcodeName(op).data());
  const Type type = TypeOf(a);
  const bool is_fp = op >= Opcode::kFAdd && op <= Opcode::kFDiv;
  if (is_fp && !type.IsFloat()) Fail("fp opcode on non-float operands");
  if (!is_fp && !type.IsInt()) Fail("int opcode on non-int operands");
  Instruction inst;
  inst.op = op;
  inst.type = type;
  inst.operands = {a, b};
  inst.result = CurrentFunction().AddRegister(type, std::move(name));
  return ValueRef::Reg(Append(std::move(inst)).result);
}

#define EPVF_BINARY(Name, Op)                                              \
  ValueRef IRBuilder::Name(ValueRef a, ValueRef b, std::string name) {     \
    return Binary(Opcode::Op, a, b, std::move(name));                      \
  }
EPVF_BINARY(Add, kAdd)
EPVF_BINARY(Sub, kSub)
EPVF_BINARY(Mul, kMul)
EPVF_BINARY(SDiv, kSDiv)
EPVF_BINARY(UDiv, kUDiv)
EPVF_BINARY(SRem, kSRem)
EPVF_BINARY(URem, kURem)
EPVF_BINARY(FAdd, kFAdd)
EPVF_BINARY(FSub, kFSub)
EPVF_BINARY(FMul, kFMul)
EPVF_BINARY(FDiv, kFDiv)
EPVF_BINARY(And, kAnd)
EPVF_BINARY(Or, kOr)
EPVF_BINARY(Xor, kXor)
EPVF_BINARY(Shl, kShl)
EPVF_BINARY(LShr, kLShr)
EPVF_BINARY(AShr, kAShr)
#undef EPVF_BINARY

ValueRef IRBuilder::ICmp(ICmpPred pred, ValueRef a, ValueRef b, std::string name) {
  CheckSameType(a, b, "icmp");
  if (!TypeOf(a).IsIntOrPointer()) Fail("icmp on non-integer operands");
  Instruction inst;
  inst.op = Opcode::kICmp;
  inst.icmp_pred = pred;
  inst.type = Type::I1();
  inst.operands = {a, b};
  inst.result = CurrentFunction().AddRegister(Type::I1(), std::move(name));
  return ValueRef::Reg(Append(std::move(inst)).result);
}

ValueRef IRBuilder::FCmp(FCmpPred pred, ValueRef a, ValueRef b, std::string name) {
  CheckSameType(a, b, "fcmp");
  CheckFloat(a, "fcmp");
  Instruction inst;
  inst.op = Opcode::kFCmp;
  inst.fcmp_pred = pred;
  inst.type = Type::I1();
  inst.operands = {a, b};
  inst.result = CurrentFunction().AddRegister(Type::I1(), std::move(name));
  return ValueRef::Reg(Append(std::move(inst)).result);
}

ValueRef IRBuilder::Select(ValueRef cond, ValueRef if_true, ValueRef if_false, std::string name) {
  if (TypeOf(cond) != Type::I1()) Fail("select condition must be i1");
  CheckSameType(if_true, if_false, "select");
  const Type type = TypeOf(if_true);
  Instruction inst;
  inst.op = Opcode::kSelect;
  inst.type = type;
  inst.operands = {cond, if_true, if_false};
  inst.result = CurrentFunction().AddRegister(type, std::move(name));
  return ValueRef::Reg(Append(std::move(inst)).result);
}

ValueRef IRBuilder::Phi(Type type, std::span<const std::pair<ValueRef, std::uint32_t>> incoming,
                        std::string name) {
  if (incoming.empty()) Fail("phi with no incoming values");
  Instruction inst;
  inst.op = Opcode::kPhi;
  inst.type = type;
  for (const auto& [value, block] : incoming) {
    if (TypeOf(value) != type) Fail("phi incoming value type mismatch");
    inst.operands.push_back(value);
    inst.phi_blocks.push_back(block);
  }
  inst.result = CurrentFunction().AddRegister(type, std::move(name));
  return ValueRef::Reg(Append(std::move(inst)).result);
}

void IRBuilder::AddPhiIncoming(ValueRef phi, ValueRef value, std::uint32_t from_block) {
  if (!phi.IsRegister()) Fail("AddPhiIncoming: phi handle must be a register");
  Function& fn = CurrentFunction();
  for (auto& bb : fn.blocks) {
    for (auto& inst : bb.instructions) {
      if (inst.op != Opcode::kPhi || inst.result != phi.index) continue;
      if (TypeOf(value) != inst.type) Fail("AddPhiIncoming: type mismatch");
      inst.operands.push_back(value);
      inst.phi_blocks.push_back(from_block);
      return;
    }
  }
  Fail("AddPhiIncoming: no phi defines the given register");
}

ValueRef IRBuilder::Cast(Opcode op, ValueRef v, Type to, std::string name) {
  Instruction inst;
  inst.op = op;
  inst.type = to;
  inst.operands = {v};
  inst.result = CurrentFunction().AddRegister(to, std::move(name));
  return ValueRef::Reg(Append(std::move(inst)).result);
}

ValueRef IRBuilder::Trunc(ValueRef v, Type to, std::string name) {
  CheckInt(v, "trunc");
  if (!to.IsInt() || to.bits >= TypeOf(v).bits) Fail("trunc must narrow an integer");
  return Cast(Opcode::kTrunc, v, to, std::move(name));
}

ValueRef IRBuilder::ZExt(ValueRef v, Type to, std::string name) {
  CheckInt(v, "zext");
  if (!to.IsInt() || to.bits <= TypeOf(v).bits) Fail("zext must widen an integer");
  return Cast(Opcode::kZExt, v, to, std::move(name));
}

ValueRef IRBuilder::SExt(ValueRef v, Type to, std::string name) {
  CheckInt(v, "sext");
  if (!to.IsInt() || to.bits <= TypeOf(v).bits) Fail("sext must widen an integer");
  return Cast(Opcode::kSExt, v, to, std::move(name));
}

ValueRef IRBuilder::BitCast(ValueRef v, Type to, std::string name) {
  if (TypeOf(v).StoreSize() != to.StoreSize() &&
      !(TypeOf(v).IsPointer() && to.IsPointer())) {
    Fail("bitcast between different-size types");
  }
  return Cast(Opcode::kBitCast, v, to, std::move(name));
}

ValueRef IRBuilder::SIToFP(ValueRef v, Type to, std::string name) {
  CheckInt(v, "sitofp");
  if (!to.IsFloat()) Fail("sitofp target must be float");
  return Cast(Opcode::kSIToFP, v, to, std::move(name));
}

ValueRef IRBuilder::UIToFP(ValueRef v, Type to, std::string name) {
  CheckInt(v, "uitofp");
  if (!to.IsFloat()) Fail("uitofp target must be float");
  return Cast(Opcode::kUIToFP, v, to, std::move(name));
}

ValueRef IRBuilder::FPToSI(ValueRef v, Type to, std::string name) {
  CheckFloat(v, "fptosi");
  if (!to.IsInt()) Fail("fptosi target must be integer");
  return Cast(Opcode::kFPToSI, v, to, std::move(name));
}

ValueRef IRBuilder::FPTrunc(ValueRef v, std::string name) {
  if (TypeOf(v) != Type::F64()) Fail("fptrunc expects f64");
  return Cast(Opcode::kFPTrunc, v, Type::F32(), std::move(name));
}

ValueRef IRBuilder::FPExt(ValueRef v, std::string name) {
  if (TypeOf(v) != Type::F32()) Fail("fpext expects f32");
  return Cast(Opcode::kFPExt, v, Type::F64(), std::move(name));
}

ValueRef IRBuilder::PtrToInt(ValueRef v, std::string name) {
  if (!TypeOf(v).IsPointer()) Fail("ptrtoint expects a pointer");
  return Cast(Opcode::kPtrToInt, v, Type::I64(), std::move(name));
}

ValueRef IRBuilder::IntToPtr(ValueRef v, Type to, std::string name) {
  CheckInt(v, "inttoptr");
  if (!to.IsPointer()) Fail("inttoptr target must be a pointer");
  return Cast(Opcode::kIntToPtr, v, to, std::move(name));
}

ValueRef IRBuilder::Alloca(Type type, std::uint64_t count, std::string name) {
  Instruction inst;
  inst.op = Opcode::kAlloca;
  inst.type = type.Ptr();
  inst.alloca_bytes = type.StoreSize() * count;
  inst.result = CurrentFunction().AddRegister(inst.type, std::move(name));
  return ValueRef::Reg(Append(std::move(inst)).result);
}

ValueRef IRBuilder::Load(ValueRef ptr, std::string name) {
  const Type ptr_type = TypeOf(ptr);
  if (!ptr_type.IsPointer()) Fail("load from non-pointer");
  const Type loaded = ptr_type.Pointee();
  Instruction inst;
  inst.op = Opcode::kLoad;
  inst.type = loaded;
  inst.align = loaded.NaturalAlign();
  inst.operands = {ptr};
  inst.result = CurrentFunction().AddRegister(loaded, std::move(name));
  return ValueRef::Reg(Append(std::move(inst)).result);
}

void IRBuilder::Store(ValueRef value, ValueRef ptr) {
  const Type ptr_type = TypeOf(ptr);
  if (!ptr_type.IsPointer()) Fail("store to non-pointer");
  if (TypeOf(value) != ptr_type.Pointee()) Fail("store value/pointee type mismatch");
  Instruction inst;
  inst.op = Opcode::kStore;
  inst.type = Type::Void();
  inst.align = ptr_type.Pointee().NaturalAlign();
  inst.operands = {value, ptr};
  Append(std::move(inst));
}

ValueRef IRBuilder::Gep(ValueRef ptr, ValueRef index, std::string name) {
  const Type ptr_type = TypeOf(ptr);
  if (!ptr_type.IsPointer()) Fail("gep base must be a pointer");
  if (!TypeOf(index).IsInt()) Fail("gep index must be an integer");
  Instruction inst;
  inst.op = Opcode::kGep;
  inst.type = ptr_type;
  inst.gep_elem_bytes = ptr_type.Pointee().StoreSize();
  inst.operands = {ptr, index};
  inst.result = CurrentFunction().AddRegister(ptr_type, std::move(name));
  return ValueRef::Reg(Append(std::move(inst)).result);
}

void IRBuilder::Br(std::uint32_t target) {
  Instruction inst;
  inst.op = Opcode::kBr;
  inst.bb_true = target;
  Append(std::move(inst));
}

void IRBuilder::CondBr(ValueRef cond, std::uint32_t if_true, std::uint32_t if_false) {
  if (TypeOf(cond) != Type::I1()) Fail("condbr condition must be i1");
  Instruction inst;
  inst.op = Opcode::kCondBr;
  inst.operands = {cond};
  inst.bb_true = if_true;
  inst.bb_false = if_false;
  Append(std::move(inst));
}

void IRBuilder::RetVoid() {
  if (!CurrentFunction().return_type.IsVoid()) Fail("ret void in non-void function");
  Instruction inst;
  inst.op = Opcode::kRet;
  Append(std::move(inst));
}

void IRBuilder::Ret(ValueRef v) {
  if (TypeOf(v) != CurrentFunction().return_type) Fail("ret type mismatch");
  Instruction inst;
  inst.op = Opcode::kRet;
  inst.operands = {v};
  Append(std::move(inst));
}

ValueRef IRBuilder::Call(std::uint32_t function_index, std::span<const ValueRef> args,
                         std::string name) {
  if (function_index >= module_.functions.size()) Fail("call: bad function index");
  const Function& callee = module_.functions[function_index];
  if (args.size() != callee.num_params) Fail("call: argument count mismatch");
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (TypeOf(args[i]) != callee.registers[i].type) Fail("call: argument type mismatch");
  }
  Instruction inst;
  inst.op = Opcode::kCall;
  inst.type = callee.return_type;
  inst.callee = function_index;
  inst.operands.assign(args.begin(), args.end());
  if (!inst.type.IsVoid()) {
    inst.result = CurrentFunction().AddRegister(inst.type, std::move(name));
  }
  const Instruction& placed = Append(std::move(inst));
  return placed.DefinesValue() ? ValueRef::Reg(placed.result) : ValueRef::None();
}

ValueRef IRBuilder::CallIntrinsic(Intrinsic which, std::span<const ValueRef> args,
                                  std::string name) {
  if (args.size() != IntrinsicArity(which)) Fail("intrinsic argument count mismatch");
  Instruction inst;
  inst.op = Opcode::kCall;
  inst.is_intrinsic = true;
  inst.intrinsic = which;
  inst.type = IntrinsicResultType(which);
  inst.operands.assign(args.begin(), args.end());
  if (!inst.type.IsVoid()) {
    inst.result = CurrentFunction().AddRegister(inst.type, std::move(name));
  }
  const Instruction& placed = Append(std::move(inst));
  return placed.DefinesValue() ? ValueRef::Reg(placed.result) : ValueRef::None();
}

void IRBuilder::Output(ValueRef v) {
  Type type = TypeOf(v);
  if (type.IsFloat()) {
    if (type == Type::F32()) v = FPExt(v);
    (void)CallIntrinsic(Intrinsic::kOutputF64, {v});
    return;
  }
  if (type.IsPointer()) v = PtrToInt(v);
  type = TypeOf(v);
  if (type.bits < 64) v = type.bits == 1 ? ZExt(v, Type::I64()) : SExt(v, Type::I64());
  (void)CallIntrinsic(Intrinsic::kOutputI64, {v});
}

ValueRef IRBuilder::MallocArray(Type pointee, ValueRef count, std::string name) {
  if (TypeOf(count) != Type::I64()) Fail("MallocArray count must be i64");
  ValueRef bytes = Mul(count, I64(pointee.StoreSize()));
  ValueRef raw = CallIntrinsic(Intrinsic::kMalloc, {bytes});
  return BitCast(raw, pointee.Ptr(), std::move(name));
}

Type IRBuilder::TypeOf(ValueRef v) const {
  return module_.TypeOf(module_.functions[func_], v);
}

void IRBuilder::CheckInt(ValueRef v, const char* what) const {
  if (!TypeOf(v).IsInt()) Fail(std::string(what) + ": integer operand required");
}

void IRBuilder::CheckFloat(ValueRef v, const char* what) const {
  if (!TypeOf(v).IsFloat()) Fail(std::string(what) + ": float operand required");
}

void IRBuilder::CheckSameType(ValueRef a, ValueRef b, const char* what) const {
  if (TypeOf(a) != TypeOf(b)) Fail(std::string(what) + ": operand type mismatch");
}

void IRBuilder::Fail(const std::string& message) const {
  throw std::logic_error("IRBuilder: " + message);
}

}  // namespace epvf::ir
