#include "ir/parser.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <map>
#include <optional>
#include <stdexcept>
#include <vector>

#include "obs/trace.h"

namespace epvf::ir {

namespace {

/// Line-oriented scanner: the dialect is newline-delimited, so the parser
/// works line by line with a small cursor-based tokenizer per line.
class LineScanner {
 public:
  explicit LineScanner(std::string_view line) : line_(line) {}

  void SkipSpace() {
    while (pos_ < line_.size() && std::isspace(static_cast<unsigned char>(line_[pos_]))) ++pos_;
  }

  [[nodiscard]] bool AtEnd() {
    SkipSpace();
    return pos_ >= line_.size();
  }

  [[nodiscard]] char Peek() {
    SkipSpace();
    return pos_ < line_.size() ? line_[pos_] : '\0';
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < line_.size() && line_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    SkipSpace();
    if (line_.substr(pos_, word.size()) == word) {
      const std::size_t after = pos_ + word.size();
      if (after >= line_.size() || !IsWordChar(line_[after])) {
        pos_ = after;
        return true;
      }
    }
    return false;
  }

  /// Reads an identifier-ish token: letters, digits, '_', '.', '%', '@', '!'.
  [[nodiscard]] std::string_view ReadToken() {
    SkipSpace();
    const std::size_t start = pos_;
    while (pos_ < line_.size() && IsWordChar(line_[pos_])) ++pos_;
    return line_.substr(start, pos_ - start);
  }

  /// Reads a number token, permitting hexfloat / scientific / sign characters.
  [[nodiscard]] std::string_view ReadNumber() {
    SkipSpace();
    const std::size_t start = pos_;
    while (pos_ < line_.size()) {
      const char c = line_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '+' || c == '-' ||
          c == 'x' || c == 'X' || c == 'p' || c == 'P') {
        // only accept +/- right after an exponent marker or at the start
        if ((c == '+' || c == '-') && pos_ != start) {
          const char prev = line_[pos_ - 1];
          if (prev != 'e' && prev != 'E' && prev != 'p' && prev != 'P') break;
        }
        ++pos_;
      } else {
        break;
      }
    }
    return line_.substr(start, pos_ - start);
  }

  [[nodiscard]] std::string_view Rest() {
    SkipSpace();
    return line_.substr(pos_);
  }

 private:
  static bool IsWordChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == '%' ||
           c == '@' || c == '!';
  }

  std::string_view line_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::variant<Module, ParseError> Run() {
    try {
      while (NextLine()) {
        LineScanner sc(line_);
        if (sc.AtEnd()) continue;
        if (sc.ConsumeWord("global")) {
          ParseGlobal(sc);
        } else if (sc.ConsumeWord("func")) {
          ParseFunction(sc);
        } else {
          Fail("expected 'global' or 'func'");
        }
      }
      ResolvePendingCalls();
      return std::move(module_);
    } catch (const ParseError& e) {
      return e;
    }
  }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    throw ParseError{line_number_, message};
  }

  bool NextLine() {
    if (cursor_ >= text_.size()) return false;
    const std::size_t nl = text_.find('\n', cursor_);
    const std::size_t end = nl == std::string_view::npos ? text_.size() : nl;
    line_ = text_.substr(cursor_, end - cursor_);
    cursor_ = end + 1;
    ++line_number_;
    return true;
  }

  Type ParseType(LineScanner& sc) {
    std::string_view tok = sc.ReadToken();
    if (tok.empty()) Fail("expected a type");
    std::uint8_t depth = 0;
    // pointer stars are not word chars; consume them after the base token
    Type base;
    if (tok == "void") {
      base = Type::Void();
    } else if (tok == "f32") {
      base = Type::F32();
    } else if (tok == "f64") {
      base = Type::F64();
    } else if (tok.size() >= 2 && tok[0] == 'i') {
      int bits = 0;
      const auto [ptr, ec] = std::from_chars(tok.data() + 1, tok.data() + tok.size(), bits);
      if (ec != std::errc{} || ptr != tok.data() + tok.size() || bits < 1 || bits > 64) {
        Fail("bad integer type '" + std::string(tok) + "'");
      }
      base = Type::Int(static_cast<std::uint8_t>(bits));
    } else {
      Fail("unknown type '" + std::string(tok) + "'");
    }
    while (sc.Consume('*')) ++depth;
    base.ptr_depth = depth;
    return base;
  }

  void ParseGlobal(LineScanner& sc) {
    std::string_view name = sc.ReadToken();
    if (name.empty() || name[0] != '@') Fail("expected @name after 'global'");
    if (!sc.Consume(':')) Fail("expected ':' in global declaration");
    const Type elem = ParseType(sc);
    if (!sc.ConsumeWord("x")) Fail("expected 'x <count>' in global declaration");
    const std::uint64_t count = ParseU64(sc);
    std::vector<std::uint8_t> init;
    if (sc.ConsumeWord("init")) {
      const std::string_view blob = sc.ReadToken();
      if (blob.size() % 2 != 0) Fail("odd-length init blob");
      init.reserve(blob.size() / 2);
      auto nibble = [&](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        Fail("bad hex digit in init blob");
      };
      for (std::size_t i = 0; i < blob.size(); i += 2) {
        init.push_back(static_cast<std::uint8_t>(nibble(blob[i]) * 16 + nibble(blob[i + 1])));
      }
      if (init.size() != elem.StoreSize() * count) Fail("init blob size mismatch");
    }
    module_.globals.push_back(
        GlobalVar{std::string(name.substr(1)), elem, count, std::move(init)});
  }

  std::uint64_t ParseU64(LineScanner& sc) {
    const std::string_view tok = sc.ReadNumber();
    std::uint64_t v = 0;
    const bool hex = tok.size() > 2 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X');
    const auto first = tok.data() + (hex ? 2 : 0);
    const auto [ptr, ec] = std::from_chars(first, tok.data() + tok.size(), v, hex ? 16 : 10);
    if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
      Fail("bad integer '" + std::string(tok) + "'");
    }
    return v;
  }

  /// Parses "%name.N" / "%rN" into the register index N.
  std::uint32_t ParseRegisterToken(std::string_view tok) {
    if (tok.size() < 2 || tok[0] != '%') Fail("expected register, got '" + std::string(tok) + "'");
    const std::size_t dot = tok.rfind('.');
    std::string_view digits;
    if (dot != std::string_view::npos) {
      digits = tok.substr(dot + 1);
    } else if (tok[1] == 'r') {
      digits = tok.substr(2);
    } else {
      Fail("register token lacks an index: '" + std::string(tok) + "'");
    }
    std::uint32_t idx = 0;
    const auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), idx);
    if (ec != std::errc{} || ptr != digits.data() + digits.size()) {
      Fail("bad register index in '" + std::string(tok) + "'");
    }
    return idx;
  }

  static std::string RegisterBaseName(std::string_view tok) {
    // "%name.N" -> "name"; "%rN" -> "".
    if (tok.size() >= 2 && tok[1] == 'r' && tok.find('.') == std::string_view::npos) return {};
    const std::size_t dot = tok.rfind('.');
    if (dot == std::string_view::npos || dot < 1) return {};
    return std::string(tok.substr(1, dot - 1));
  }

  void EnsureRegister(Function& fn, std::uint32_t index, Type type, std::string name) {
    if (fn.registers.size() <= index) fn.registers.resize(index + 1);
    fn.registers[index] = RegisterInfo{type, std::move(name)};
  }

  ValueRef ParseValue(LineScanner& sc, Function& fn) {
    const char c = sc.Peek();
    if (c == '%') {
      return ValueRef::Reg(ParseRegisterToken(sc.ReadToken()));
    }
    if (c == '@') {
      const std::string_view tok = sc.ReadToken();
      const auto gi = module_.FindGlobal(tok.substr(1));
      if (!gi) Fail("unknown global '" + std::string(tok) + "'");
      return ValueRef::Global(*gi);
    }
    // Constant: <number>:<type>
    const std::string_view num = sc.ReadNumber();
    if (num.empty()) Fail("expected a value");
    if (!sc.Consume(':')) Fail("expected ':' after constant literal");
    const Type type = ParseType(sc);
    Constant constant;
    constant.type = type;
    if (type.IsFloat()) {
      const double d = std::strtod(std::string(num).c_str(), nullptr);
      constant = type == Type::F32() ? MakeF32Constant(static_cast<float>(d)) : MakeF64Constant(d);
    } else if (type.IsPointer()) {
      constant.bits = StrToU64(num);
    } else {
      constant = MakeIntConstant(type, StrToI64(num));
    }
    (void)fn;
    return module_.InternConstant(constant);
  }

  std::uint64_t StrToU64(std::string_view tok) {
    return std::strtoull(std::string(tok).c_str(), nullptr, 0);
  }
  std::int64_t StrToI64(std::string_view tok) {
    return std::strtoll(std::string(tok).c_str(), nullptr, 0);
  }

  void ParseFunction(LineScanner& sc) {
    Function fn;
    std::string_view name = sc.ReadToken();
    if (name.empty() || name[0] != '@') Fail("expected @name after 'func'");
    fn.name = std::string(name.substr(1));
    if (!sc.Consume('(')) Fail("expected '(' in function header");
    while (!sc.Consume(')')) {
      const std::string_view reg_tok = sc.ReadToken();
      const std::uint32_t index = ParseRegisterToken(reg_tok);
      if (!sc.Consume(':')) Fail("expected ':' after parameter name");
      const Type type = ParseType(sc);
      EnsureRegister(fn, index, type, RegisterBaseName(reg_tok));
      ++fn.num_params;
      (void)sc.Consume(',');
    }
    if (!sc.Consume('-') || !sc.Consume('>')) Fail("expected '->' after parameter list");
    fn.return_type = ParseType(sc);
    if (!sc.Consume('{')) Fail("expected '{' to open function body");

    // First pass over the body: collect block labels so branches can refer
    // forward. We buffer the body lines, then parse instructions.
    std::vector<std::pair<std::size_t, std::string>> body;  // (line number, text)
    std::map<std::string, std::uint32_t, std::less<>> block_ids;
    while (true) {
      if (!NextLine()) Fail("unterminated function body");
      LineScanner body_sc(line_);
      if (body_sc.Consume('}')) break;
      if (body_sc.AtEnd()) continue;
      body.emplace_back(line_number_, std::string(line_));
      const std::string_view trimmed = body_sc.Rest();
      if (!trimmed.empty() && trimmed.back() == ':' &&
          trimmed.find(' ') == std::string_view::npos) {
        std::string label(trimmed.substr(0, trimmed.size() - 1));
        block_ids.emplace(label, fn.AddBlock(label));
      }
    }
    if (fn.blocks.empty()) Fail("function has no blocks");

    std::uint32_t current_block = kInvalidIndex;
    for (const auto& [lineno, text] : body) {
      line_number_ = lineno;
      LineScanner ls(text);
      const std::string_view trimmed = ls.Rest();
      if (!trimmed.empty() && trimmed.back() == ':' &&
          trimmed.find(' ') == std::string_view::npos) {
        current_block = block_ids.find(trimmed.substr(0, trimmed.size() - 1))->second;
        continue;
      }
      if (current_block == kInvalidIndex) Fail("instruction before any block label");
      LineScanner isc(text);
      fn.blocks[current_block].instructions.push_back(ParseInstruction(isc, fn, block_ids));
    }
    module_.functions.push_back(std::move(fn));
  }

  Instruction ParseInstruction(LineScanner& sc, Function& fn,
                               const std::map<std::string, std::uint32_t, std::less<>>& blocks) {
    Instruction inst;
    std::uint32_t result_index = kNoRegister;
    std::string result_name;

    if (sc.Peek() == '%') {
      const std::string_view tok = sc.ReadToken();
      result_index = ParseRegisterToken(tok);
      result_name = RegisterBaseName(tok);
      if (!sc.Consume('=')) Fail("expected '=' after result register");
    }

    const std::string_view op_tok = sc.ReadToken();
    const std::optional<Opcode> op = OpcodeFromName(op_tok);
    if (!op) Fail("unknown opcode '" + std::string(op_tok) + "'");
    inst.op = *op;

    auto finish_with_type = [&](Type type) {
      inst.type = type;
      if (result_index != kNoRegister) {
        inst.result = result_index;
        EnsureRegister(fn, result_index, type, std::move(result_name));
      }
    };

    auto block_of = [&](std::string_view label) -> std::uint32_t {
      const auto it = blocks.find(label);
      if (it == blocks.end()) Fail("unknown block label '" + std::string(label) + "'");
      return it->second;
    };

    switch (inst.op) {
      case Opcode::kICmp: {
        const std::string_view pred = sc.ReadToken();
        inst.icmp_pred = ICmpPredFromName(pred);
        inst.operands.push_back(ParseValue(sc, fn));
        if (!sc.Consume(',')) Fail("expected ','");
        inst.operands.push_back(ParseValue(sc, fn));
        ExpectTypeSuffix(sc);
        finish_with_type(Type::I1());
        break;
      }
      case Opcode::kFCmp: {
        const std::string_view pred = sc.ReadToken();
        inst.fcmp_pred = FCmpPredFromName(pred);
        inst.operands.push_back(ParseValue(sc, fn));
        if (!sc.Consume(',')) Fail("expected ','");
        inst.operands.push_back(ParseValue(sc, fn));
        ExpectTypeSuffix(sc);
        finish_with_type(Type::I1());
        break;
      }
      case Opcode::kAlloca: {
        inst.alloca_bytes = ParseU64(sc);
        if (!sc.ConsumeWord("bytes")) Fail("expected 'bytes' in alloca");
        if (!sc.Consume(':')) Fail("expected ':' in alloca");
        finish_with_type(ParseType(sc));
        break;
      }
      case Opcode::kCall: {
        const std::string_view callee = sc.ReadToken();
        if (callee.size() < 2 || callee[0] != '@') Fail("expected callee after 'call'");
        const bool is_intrinsic = callee[1] == '!';
        if (!sc.Consume('(')) Fail("expected '(' after callee");
        while (!sc.Consume(')')) {
          inst.operands.push_back(ParseValue(sc, fn));
          (void)sc.Consume(',');
        }
        if (is_intrinsic) {
          const auto which = IntrinsicByName(callee.substr(2));
          if (!which) Fail("unknown intrinsic '" + std::string(callee) + "'");
          inst.is_intrinsic = true;
          inst.intrinsic = *which;
          Type type = IntrinsicResultType(*which);
          if (!type.IsVoid() && sc.Consume(':')) type = ParseType(sc);
          finish_with_type(type);
        } else {
          // Callee may be defined later in the file; record for resolution.
          pending_calls_.push_back(
              {static_cast<std::uint32_t>(module_.functions.size()),
               std::string(callee.substr(1)), line_number_});
          inst.callee = kInvalidIndex;
          Type type = Type::Void();
          if (sc.Consume(':')) type = ParseType(sc);
          finish_with_type(type);
        }
        break;
      }
      case Opcode::kPhi: {
        while (sc.Consume('[')) {
          inst.operands.push_back(ParseValue(sc, fn));
          if (!sc.Consume(',')) Fail("expected ',' in phi pair");
          inst.phi_blocks.push_back(block_of(sc.ReadToken()));
          if (!sc.Consume(']')) Fail("expected ']' in phi pair");
          (void)sc.Consume(',');
        }
        if (!sc.Consume(':')) Fail("expected ':' after phi");
        finish_with_type(ParseType(sc));
        break;
      }
      case Opcode::kBr: {
        inst.bb_true = block_of(sc.ReadToken());
        inst.type = Type::Void();
        break;
      }
      case Opcode::kCondBr: {
        inst.operands.push_back(ParseValue(sc, fn));
        if (!sc.Consume(',')) Fail("expected ',' after condbr condition");
        inst.bb_true = block_of(sc.ReadToken());
        if (!sc.Consume(',')) Fail("expected ',' between condbr targets");
        inst.bb_false = block_of(sc.ReadToken());
        inst.type = Type::Void();
        break;
      }
      case Opcode::kRet: {
        if (!sc.AtEnd()) inst.operands.push_back(ParseValue(sc, fn));
        inst.type = Type::Void();
        break;
      }
      case Opcode::kLoad: {
        inst.operands.push_back(ParseValue(sc, fn));
        if (!sc.ConsumeWord("align")) Fail("expected 'align' on load");
        inst.align = static_cast<std::uint32_t>(ParseU64(sc));
        ExpectTypeSuffix(sc);
        // Result type comes from the explicit suffix.
        finish_with_type(suffix_type_);
        break;
      }
      case Opcode::kStore: {
        inst.operands.push_back(ParseValue(sc, fn));
        if (!sc.Consume(',')) Fail("expected ',' in store");
        inst.operands.push_back(ParseValue(sc, fn));
        if (!sc.ConsumeWord("align")) Fail("expected 'align' on store");
        inst.align = static_cast<std::uint32_t>(ParseU64(sc));
        inst.type = Type::Void();
        break;
      }
      case Opcode::kGep: {
        inst.operands.push_back(ParseValue(sc, fn));
        if (!sc.Consume(',')) Fail("expected ',' in gep");
        inst.operands.push_back(ParseValue(sc, fn));
        if (!sc.ConsumeWord("elem")) Fail("expected 'elem' in gep");
        inst.gep_elem_bytes = ParseU64(sc);
        (void)sc.Consume('B');
        ExpectTypeSuffix(sc);
        finish_with_type(suffix_type_);
        break;
      }
      default: {
        // Binary arithmetic, casts and select: "<op> v[, v]* : type".
        inst.operands.push_back(ParseValue(sc, fn));
        while (sc.Consume(',')) inst.operands.push_back(ParseValue(sc, fn));
        ExpectTypeSuffix(sc);
        finish_with_type(suffix_type_);
        break;
      }
    }
    return inst;
  }

  void ExpectTypeSuffix(LineScanner& sc) {
    if (!sc.Consume(':')) Fail("expected ': <type>' suffix");
    suffix_type_ = ParseType(sc);
  }

  static std::optional<Opcode> OpcodeFromName(std::string_view name) {
    for (int i = 0; i < kNumOpcodes; ++i) {
      const auto op = static_cast<Opcode>(i);
      if (OpcodeName(op) == name) return op;
    }
    return std::nullopt;
  }

  ICmpPred ICmpPredFromName(std::string_view name) {
    for (int i = 0; i <= static_cast<int>(ICmpPred::kUge); ++i) {
      const auto pred = static_cast<ICmpPred>(i);
      if (ICmpPredName(pred) == name) return pred;
    }
    Fail("unknown icmp predicate '" + std::string(name) + "'");
  }

  FCmpPred FCmpPredFromName(std::string_view name) {
    for (int i = 0; i <= static_cast<int>(FCmpPred::kOge); ++i) {
      const auto pred = static_cast<FCmpPred>(i);
      if (FCmpPredName(pred) == name) return pred;
    }
    Fail("unknown fcmp predicate '" + std::string(name) + "'");
  }

  struct PendingCall {
    std::uint32_t function_index;  ///< index the function will get in the module
    std::string callee_name;
    std::size_t line;
  };

  void ResolvePendingCalls() {
    // Calls referencing functions by name are fixed up after all functions
    // exist. We re-scan instructions because the instruction vector may have
    // reallocated since parse time.
    std::size_t pending = 0;
    for (auto& fn : module_.functions) {
      for (auto& bb : fn.blocks) {
        for (auto& inst : bb.instructions) {
          if (inst.op != Opcode::kCall || inst.is_intrinsic || inst.callee != kInvalidIndex) {
            continue;
          }
          if (pending >= pending_calls_.size()) {
            throw ParseError{0, "internal: unresolved call bookkeeping mismatch"};
          }
          const PendingCall& pc = pending_calls_[pending++];
          const auto target = module_.FindFunction(pc.callee_name);
          if (!target) {
            throw ParseError{pc.line, "call to unknown function '@" + pc.callee_name + "'"};
          }
          inst.callee = *target;
        }
      }
    }
  }

  std::string_view text_;
  std::size_t cursor_ = 0;
  std::size_t line_number_ = 0;
  std::string_view line_;
  Module module_;
  Type suffix_type_;
  std::vector<PendingCall> pending_calls_;
};

}  // namespace

std::variant<Module, ParseError> ParseModule(std::string_view text) {
  const obs::TraceSpan span("parse", "parse-module");
  return Parser(text).Run();
}

Module ParseModuleOrThrow(std::string_view text) {
  auto result = ParseModule(text);
  if (auto* err = std::get_if<ParseError>(&result)) {
    throw std::runtime_error("IR parse error: " + err->ToString());
  }
  return std::move(std::get<Module>(result));
}

}  // namespace epvf::ir
