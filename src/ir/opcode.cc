#include "ir/opcode.h"

namespace epvf::ir {

std::string_view OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kSDiv: return "sdiv";
    case Opcode::kUDiv: return "udiv";
    case Opcode::kSRem: return "srem";
    case Opcode::kURem: return "urem";
    case Opcode::kFAdd: return "fadd";
    case Opcode::kFSub: return "fsub";
    case Opcode::kFMul: return "fmul";
    case Opcode::kFDiv: return "fdiv";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kShl: return "shl";
    case Opcode::kLShr: return "lshr";
    case Opcode::kAShr: return "ashr";
    case Opcode::kICmp: return "icmp";
    case Opcode::kFCmp: return "fcmp";
    case Opcode::kSelect: return "select";
    case Opcode::kPhi: return "phi";
    case Opcode::kTrunc: return "trunc";
    case Opcode::kZExt: return "zext";
    case Opcode::kSExt: return "sext";
    case Opcode::kBitCast: return "bitcast";
    case Opcode::kSIToFP: return "sitofp";
    case Opcode::kUIToFP: return "uitofp";
    case Opcode::kFPToSI: return "fptosi";
    case Opcode::kFPTrunc: return "fptrunc";
    case Opcode::kFPExt: return "fpext";
    case Opcode::kPtrToInt: return "ptrtoint";
    case Opcode::kIntToPtr: return "inttoptr";
    case Opcode::kAlloca: return "alloca";
    case Opcode::kLoad: return "load";
    case Opcode::kStore: return "store";
    case Opcode::kGep: return "getelementptr";
    case Opcode::kBr: return "br";
    case Opcode::kCondBr: return "condbr";
    case Opcode::kRet: return "ret";
    case Opcode::kCall: return "call";
  }
  return "<bad-opcode>";
}

std::string_view ICmpPredName(ICmpPred pred) {
  switch (pred) {
    case ICmpPred::kEq: return "eq";
    case ICmpPred::kNe: return "ne";
    case ICmpPred::kSlt: return "slt";
    case ICmpPred::kSle: return "sle";
    case ICmpPred::kSgt: return "sgt";
    case ICmpPred::kSge: return "sge";
    case ICmpPred::kUlt: return "ult";
    case ICmpPred::kUle: return "ule";
    case ICmpPred::kUgt: return "ugt";
    case ICmpPred::kUge: return "uge";
  }
  return "<bad-pred>";
}

std::string_view FCmpPredName(FCmpPred pred) {
  switch (pred) {
    case FCmpPred::kOeq: return "oeq";
    case FCmpPred::kOne: return "one";
    case FCmpPred::kOlt: return "olt";
    case FCmpPred::kOle: return "ole";
    case FCmpPred::kOgt: return "ogt";
    case FCmpPred::kOge: return "oge";
  }
  return "<bad-pred>";
}

}  // namespace epvf::ir
