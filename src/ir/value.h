// Value references and constants.
//
// Instructions refer to their operands through lightweight `ValueRef` handles
// (index-based, not pointer-based): a handle either names an SSA register of
// the enclosing function, an interned module-level constant, or a global
// variable. Index-based storage keeps the IR trivially copyable — the
// selective-duplication transform of the case study (paper section V) clones
// instruction slices, and the interpreter maps registers to dense frame slots.
#pragma once

#include <cstdint>
#include <string>

#include "ir/type.h"

namespace epvf::ir {

inline constexpr std::uint32_t kInvalidIndex = 0xFFFFFFFFu;

enum class ValueKind : std::uint8_t { kNone, kRegister, kConstant, kGlobal };

struct ValueRef {
  ValueKind kind = ValueKind::kNone;
  std::uint32_t index = kInvalidIndex;

  [[nodiscard]] static constexpr ValueRef None() { return {}; }
  [[nodiscard]] static constexpr ValueRef Reg(std::uint32_t i) {
    return {ValueKind::kRegister, i};
  }
  [[nodiscard]] static constexpr ValueRef Const(std::uint32_t i) {
    return {ValueKind::kConstant, i};
  }
  [[nodiscard]] static constexpr ValueRef Global(std::uint32_t i) {
    return {ValueKind::kGlobal, i};
  }

  [[nodiscard]] constexpr bool IsNone() const { return kind == ValueKind::kNone; }
  [[nodiscard]] constexpr bool IsRegister() const { return kind == ValueKind::kRegister; }
  [[nodiscard]] constexpr bool IsConstant() const { return kind == ValueKind::kConstant; }
  [[nodiscard]] constexpr bool IsGlobal() const { return kind == ValueKind::kGlobal; }

  constexpr bool operator==(const ValueRef&) const = default;
};

/// A typed constant. Floating-point payloads are stored bit-cast into
/// `bits` (IEEE-754), integers are stored zero-extended in the low lanes.
struct Constant {
  Type type;
  std::uint64_t bits = 0;

  [[nodiscard]] double AsDouble() const;
  [[nodiscard]] float AsFloat() const;
  [[nodiscard]] std::int64_t AsSigned() const;

  constexpr bool operator==(const Constant&) const = default;

  [[nodiscard]] std::string ToString() const;
};

[[nodiscard]] Constant MakeIntConstant(Type type, std::int64_t value);
[[nodiscard]] Constant MakeF32Constant(float value);
[[nodiscard]] Constant MakeF64Constant(double value);

/// SSA register metadata (type plus an optional debug name).
struct RegisterInfo {
  Type type;
  std::string name;  ///< may be empty; printer falls back to %<index>
};

}  // namespace epvf::ir
