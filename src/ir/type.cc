#include "ir/type.h"

namespace epvf::ir {

std::string Type::ToString() const {
  std::string base;
  switch (scalar) {
    case Scalar::kVoid: base = "void"; break;
    case Scalar::kInt: base = "i" + std::to_string(static_cast<int>(bits)); break;
    case Scalar::kFloat: base = "f32"; break;
    case Scalar::kDouble: base = "f64"; break;
  }
  base.append(ptr_depth, '*');
  return base;
}

}  // namespace epvf::ir
