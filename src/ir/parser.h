// Parser for the textual IR dialect emitted by printer.h.
//
// Lets examples and tests ship kernels as text and guarantees the printer's
// output is a faithful serialization (print → parse → print is a fixpoint,
// which the round-trip tests assert).
#pragma once

#include <string>
#include <string_view>
#include <variant>

#include "ir/module.h"

namespace epvf::ir {

struct ParseError {
  std::size_t line = 0;
  std::string message;

  [[nodiscard]] std::string ToString() const {
    return "line " + std::to_string(line) + ": " + message;
  }
};

/// Parses a whole module; returns the module or the first error encountered.
[[nodiscard]] std::variant<Module, ParseError> ParseModule(std::string_view text);

/// Convenience wrapper that throws std::runtime_error on parse failure.
[[nodiscard]] Module ParseModuleOrThrow(std::string_view text);

}  // namespace epvf::ir
