#include "ir/printer.h"

#include <sstream>

namespace epvf::ir {

namespace {

std::string RegName(const Function& fn, std::uint32_t reg) {
  const std::string& name = fn.registers[reg].name;
  if (!name.empty()) return "%" + name + "." + std::to_string(reg);
  return "%r" + std::to_string(reg);
}

}  // namespace

std::string PrintValue(const Module& module, const Function& fn, ValueRef v) {
  switch (v.kind) {
    case ValueKind::kNone: return "<none>";
    case ValueKind::kRegister: return RegName(fn, v.index);
    case ValueKind::kConstant: {
      const Constant& c = module.GetConstant(v.index);
      return c.ToString() + ":" + c.type.ToString();
    }
    case ValueKind::kGlobal: return "@" + module.globals[v.index].name;
  }
  return "<bad>";
}

std::string PrintInstruction(const Module& module, const Function& fn, const Instruction& inst) {
  std::ostringstream os;
  if (inst.DefinesValue()) {
    os << RegName(fn, inst.result) << " = ";
  }
  os << OpcodeName(inst.op);
  switch (inst.op) {
    case Opcode::kICmp: os << ' ' << ICmpPredName(inst.icmp_pred); break;
    case Opcode::kFCmp: os << ' ' << FCmpPredName(inst.fcmp_pred); break;
    default: break;
  }
  if (inst.op == Opcode::kAlloca) {
    os << ' ' << inst.alloca_bytes << " bytes : " << inst.type.ToString();
    return os.str();
  }
  if (inst.op == Opcode::kCall) {
    os << (inst.is_intrinsic ? " @!" : " @")
       << (inst.is_intrinsic ? std::string(IntrinsicName(inst.intrinsic))
                             : module.functions[inst.callee].name)
       << '(';
    for (std::size_t i = 0; i < inst.operands.size(); ++i) {
      if (i) os << ", ";
      os << PrintValue(module, fn, inst.operands[i]);
    }
    os << ')';
    if (inst.DefinesValue()) os << " : " << inst.type.ToString();
    return os.str();
  }
  if (inst.op == Opcode::kPhi) {
    for (std::size_t i = 0; i < inst.operands.size(); ++i) {
      os << (i ? ", " : " ") << '[' << PrintValue(module, fn, inst.operands[i]) << ", "
         << fn.blocks[inst.phi_blocks[i]].name << ']';
    }
    os << " : " << inst.type.ToString();
    return os.str();
  }
  for (std::size_t i = 0; i < inst.operands.size(); ++i) {
    os << (i ? ", " : " ") << PrintValue(module, fn, inst.operands[i]);
  }
  switch (inst.op) {
    case Opcode::kBr:
      os << ' ' << fn.blocks[inst.bb_true].name;
      break;
    case Opcode::kCondBr:
      os << ", " << fn.blocks[inst.bb_true].name << ", " << fn.blocks[inst.bb_false].name;
      break;
    case Opcode::kGep:
      os << " elem " << inst.gep_elem_bytes;
      break;
    case Opcode::kLoad:
    case Opcode::kStore:
      os << " align " << inst.align;
      break;
    default:
      break;
  }
  if (inst.DefinesValue()) os << " : " << inst.type.ToString();
  return os.str();
}

std::string PrintFunction(const Module& module, const Function& fn) {
  std::ostringstream os;
  os << "func @" << fn.name << '(';
  for (std::uint32_t i = 0; i < fn.num_params; ++i) {
    if (i) os << ", ";
    os << RegName(fn, i) << " : " << fn.registers[i].type.ToString();
  }
  os << ") -> " << fn.return_type.ToString() << " {\n";
  for (const auto& bb : fn.blocks) {
    os << bb.name << ":\n";
    for (const auto& inst : bb.instructions) {
      os << "  " << PrintInstruction(module, fn, inst) << '\n';
    }
  }
  os << "}\n";
  return os.str();
}

std::string PrintModule(const Module& module) {
  std::ostringstream os;
  for (const auto& g : module.globals) {
    os << "global @" << g.name << " : " << g.element_type.ToString() << " x " << g.count;
    if (!g.init.empty()) {
      // Initializer bytes as a hex blob so modules round-trip completely.
      os << " init ";
      static const char kHex[] = "0123456789abcdef";
      for (const std::uint8_t byte : g.init) {
        os << kHex[byte >> 4] << kHex[byte & 0xF];
      }
    }
    os << '\n';
  }
  for (const auto& fn : module.functions) {
    os << PrintFunction(module, fn);
  }
  return os.str();
}

}  // namespace epvf::ir
