#include "ir/verifier.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "ir/printer.h"
#include "obs/trace.h"

namespace epvf::ir {

namespace {

std::vector<std::uint32_t> Successors(const BasicBlock& bb) {
  if (bb.instructions.empty()) return {};
  const Instruction& term = bb.instructions.back();
  switch (term.op) {
    case Opcode::kBr: return {term.bb_true};
    case Opcode::kCondBr: return {term.bb_true, term.bb_false};
    default: return {};
  }
}

/// Reverse-postorder numbering of reachable blocks.
std::vector<std::uint32_t> ReversePostorder(const Function& fn) {
  std::vector<std::uint32_t> order;
  if (fn.blocks.empty()) return order;
  std::vector<std::uint8_t> state(fn.blocks.size(), 0);  // 0=unseen 1=open 2=done
  // Iterative DFS with explicit post stack.
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  stack.emplace_back(0u, 0u);
  state[0] = 1;
  while (!stack.empty()) {
    auto& [block, next_succ] = stack.back();
    const auto succs = Successors(fn.blocks[block]);
    if (next_succ < succs.size()) {
      const std::uint32_t succ = succs[next_succ++];
      if (succ < fn.blocks.size() && state[succ] == 0) {
        state[succ] = 1;
        stack.emplace_back(succ, 0u);
      }
    } else {
      state[block] = 2;
      order.push_back(block);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace

std::vector<std::vector<std::uint32_t>> ComputePredecessors(const Function& fn) {
  std::vector<std::vector<std::uint32_t>> preds(fn.blocks.size());
  for (std::uint32_t b = 0; b < fn.blocks.size(); ++b) {
    for (std::uint32_t s : Successors(fn.blocks[b])) {
      if (s < fn.blocks.size()) preds[s].push_back(b);
    }
  }
  return preds;
}

std::vector<std::uint32_t> ComputeImmediateDominators(const Function& fn) {
  // Cooper, Harvey & Kennedy, "A Simple, Fast Dominance Algorithm".
  const std::size_t n = fn.blocks.size();
  std::vector<std::uint32_t> idom(n, kInvalidIndex);
  if (n == 0) return idom;

  const auto rpo = ReversePostorder(fn);
  std::vector<std::uint32_t> rpo_index(n, kInvalidIndex);
  for (std::uint32_t i = 0; i < rpo.size(); ++i) rpo_index[rpo[i]] = i;
  const auto preds = ComputePredecessors(fn);

  auto intersect = [&](std::uint32_t a, std::uint32_t b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom[a];
      while (rpo_index[b] > rpo_index[a]) b = idom[b];
    }
    return a;
  };

  idom[0] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint32_t block : rpo) {
      if (block == 0) continue;
      std::uint32_t new_idom = kInvalidIndex;
      for (std::uint32_t p : preds[block]) {
        if (rpo_index[p] == kInvalidIndex || idom[p] == kInvalidIndex) continue;
        new_idom = (new_idom == kInvalidIndex) ? p : intersect(p, new_idom);
      }
      if (new_idom != kInvalidIndex && idom[block] != new_idom) {
        idom[block] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

std::vector<std::uint32_t> ComputeImmediatePostDominators(const Function& fn) {
  // Dominators of the reversed CFG, rooted at a virtual exit node that
  // succeeds every ret block (Cooper-Harvey-Kennedy again, on the reverse).
  const std::size_t n = fn.blocks.size();
  const std::uint32_t exit_node = static_cast<std::uint32_t>(n);
  std::vector<std::uint32_t> ipdom(n + 1, kInvalidIndex);
  if (n == 0) return ipdom;

  // Reverse-graph successors(v) = CFG predecessors(v); reverse-graph
  // predecessors(v) = CFG successors(v), plus exit edges for ret blocks.
  const auto cfg_preds = ComputePredecessors(fn);
  auto cfg_succs = [&](std::uint32_t b) -> std::vector<std::uint32_t> {
    const BasicBlock& bb = fn.blocks[b];
    if (bb.instructions.empty()) return {};
    const Instruction& term = bb.instructions.back();
    switch (term.op) {
      case Opcode::kBr: return {term.bb_true};
      case Opcode::kCondBr: return {term.bb_true, term.bb_false};
      case Opcode::kRet: return {exit_node};
      default: return {};
    }
  };

  std::vector<std::uint32_t> ret_blocks;
  for (std::uint32_t b = 0; b < n; ++b) {
    if (!fn.blocks[b].instructions.empty() &&
        fn.blocks[b].instructions.back().op == Opcode::kRet) {
      ret_blocks.push_back(b);
    }
  }

  // Reverse-postorder of the reversed graph from the virtual exit.
  std::vector<std::uint32_t> order;
  std::vector<std::uint8_t> state(n + 1, 0);
  std::vector<std::pair<std::uint32_t, std::size_t>> stack{{exit_node, 0}};
  state[exit_node] = 1;
  while (!stack.empty()) {
    auto& [block, cursor] = stack.back();
    const std::vector<std::uint32_t>& succs =
        block == exit_node ? ret_blocks : cfg_preds[block];
    if (cursor < succs.size()) {
      const std::uint32_t next = succs[cursor++];
      if (state[next] == 0) {
        state[next] = 1;
        stack.emplace_back(next, 0);
      }
    } else {
      order.push_back(block);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());

  std::vector<std::uint32_t> rpo_index(n + 1, kInvalidIndex);
  for (std::uint32_t i = 0; i < order.size(); ++i) rpo_index[order[i]] = i;

  auto intersect = [&](std::uint32_t a, std::uint32_t b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = ipdom[a];
      while (rpo_index[b] > rpo_index[a]) b = ipdom[b];
    }
    return a;
  };

  ipdom[exit_node] = exit_node;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::uint32_t block : order) {
      if (block == exit_node) continue;
      std::uint32_t new_ipdom = kInvalidIndex;
      for (const std::uint32_t p : cfg_succs(block)) {  // reverse-graph preds
        if (rpo_index[p] == kInvalidIndex || ipdom[p] == kInvalidIndex) continue;
        new_ipdom = (new_ipdom == kInvalidIndex) ? p : intersect(p, new_ipdom);
      }
      if (new_ipdom != kInvalidIndex && ipdom[block] != new_ipdom) {
        ipdom[block] = new_ipdom;
        changed = true;
      }
    }
  }
  return ipdom;
}

bool PostDominates(const std::vector<std::uint32_t>& ipdom, std::uint32_t a, std::uint32_t b) {
  const std::uint32_t exit_node = static_cast<std::uint32_t>(ipdom.size() - 1);
  while (true) {
    if (a == b) return true;
    if (b == exit_node || ipdom[b] == kInvalidIndex || ipdom[b] == b) return false;
    b = ipdom[b];
  }
}

namespace {

class FunctionVerifier {
 public:
  FunctionVerifier(const Module& module, const Function& fn, std::uint32_t fn_index,
                   std::vector<std::string>& errors)
      : module_(module), fn_(fn), fn_index_(fn_index), errors_(errors) {}

  void Run() {
    if (fn_.blocks.empty()) {
      Error("function has no blocks");
      return;
    }
    CollectDefs();
    if (!single_assignment_ok_) return;  // def maps unreliable; stop here
    idom_ = ComputeImmediateDominators(fn_);
    preds_ = ComputePredecessors(fn_);
    for (std::uint32_t b = 0; b < fn_.blocks.size(); ++b) CheckBlock(b);
  }

 private:
  void Error(const std::string& message) {
    std::ostringstream os;
    os << "@" << fn_.name << " (fn " << fn_index_ << "): " << message;
    errors_.push_back(os.str());
  }

  void ErrorAt(std::uint32_t block, const Instruction& inst, const std::string& message) {
    Error("[" + fn_.blocks[block].name + "] '" + PrintInstruction(module_, fn_, inst) +
          "': " + message);
  }

  void CollectDefs() {
    def_block_.assign(fn_.registers.size(), kInvalidIndex);
    def_pos_.assign(fn_.registers.size(), 0);
    for (std::uint32_t p = 0; p < fn_.num_params; ++p) {
      def_block_[p] = 0;  // parameters are defined on entry, before position 0
    }
    for (std::uint32_t b = 0; b < fn_.blocks.size(); ++b) {
      const auto& insts = fn_.blocks[b].instructions;
      for (std::uint32_t i = 0; i < insts.size(); ++i) {
        const Instruction& inst = insts[i];
        if (!inst.DefinesValue()) continue;
        if (inst.result >= fn_.registers.size()) {
          Error("instruction defines out-of-range register");
          single_assignment_ok_ = false;
          continue;
        }
        if (def_block_[inst.result] != kInvalidIndex) {
          ErrorAt(b, inst, "register defined more than once (SSA violation)");
          single_assignment_ok_ = false;
          continue;
        }
        def_block_[inst.result] = b;
        def_pos_[inst.result] = i + 1;  // +1: params use position 0
        if (fn_.registers[inst.result].type != inst.type) {
          ErrorAt(b, inst, "result register type differs from instruction type");
        }
      }
    }
  }

  [[nodiscard]] bool Dominates(std::uint32_t a, std::uint32_t b) const {
    // Walk b's dominator chain up to the entry.
    while (true) {
      if (a == b) return true;
      if (b == 0 || idom_[b] == kInvalidIndex || idom_[b] == b) return a == b;
      b = idom_[b];
    }
  }

  void CheckUse(std::uint32_t block, std::uint32_t pos, const Instruction& inst, ValueRef v,
                bool is_phi_incoming, std::uint32_t incoming_block) {
    switch (v.kind) {
      case ValueKind::kNone:
        ErrorAt(block, inst, "none operand");
        return;
      case ValueKind::kConstant:
        if (v.index >= module_.constants().size()) ErrorAt(block, inst, "bad constant index");
        return;
      case ValueKind::kGlobal:
        if (v.index >= module_.globals.size()) ErrorAt(block, inst, "bad global index");
        return;
      case ValueKind::kRegister:
        break;
    }
    if (v.index >= fn_.registers.size()) {
      ErrorAt(block, inst, "use of out-of-range register");
      return;
    }
    const std::uint32_t db = def_block_[v.index];
    if (db == kInvalidIndex) {
      ErrorAt(block, inst, "use of never-defined register");
      return;
    }
    if (is_phi_incoming) {
      // The incoming value must dominate the end of the incoming block.
      if (!Dominates(db, incoming_block)) {
        ErrorAt(block, inst, "phi incoming value does not dominate incoming block");
      }
      return;
    }
    if (db == block) {
      if (def_pos_[v.index] > pos) {
        ErrorAt(block, inst, "use before definition in the same block");
      }
    } else if (!Dominates(db, block)) {
      ErrorAt(block, inst, "use not dominated by definition");
    }
  }

  void CheckBlock(std::uint32_t b) {
    const BasicBlock& bb = fn_.blocks[b];
    if (bb.instructions.empty() || !IsTerminator(bb.instructions.back().op)) {
      Error("block '" + bb.name + "' lacks a terminator");
    }
    bool seen_non_phi = false;
    for (std::uint32_t i = 0; i < bb.instructions.size(); ++i) {
      const Instruction& inst = bb.instructions[i];
      if (IsTerminator(inst.op) && i + 1 != bb.instructions.size()) {
        ErrorAt(b, inst, "terminator in the middle of a block");
      }
      if (inst.op == Opcode::kPhi) {
        if (seen_non_phi) ErrorAt(b, inst, "phi after non-phi instruction");
      } else {
        seen_non_phi = true;
      }
      CheckInstruction(b, i, inst);
    }
  }

  void CheckInstruction(std::uint32_t b, std::uint32_t pos, const Instruction& inst) {
    // Operand existence/dominance.
    if (inst.op == Opcode::kPhi) {
      if (inst.operands.size() != inst.phi_blocks.size() || inst.operands.empty()) {
        ErrorAt(b, inst, "phi operand/block arity mismatch");
        return;
      }
      // Incoming blocks must be exactly the CFG predecessors (as a set).
      auto sorted_preds = preds_[b];
      std::sort(sorted_preds.begin(), sorted_preds.end());
      auto sorted_in = inst.phi_blocks;
      std::sort(sorted_in.begin(), sorted_in.end());
      if (sorted_preds != sorted_in) {
        ErrorAt(b, inst, "phi incoming blocks do not match CFG predecessors");
      }
      for (std::size_t i = 0; i < inst.operands.size(); ++i) {
        if (inst.phi_blocks[i] >= fn_.blocks.size()) {
          ErrorAt(b, inst, "phi incoming block out of range");
          continue;
        }
        CheckUse(b, pos, inst, inst.operands[i], /*is_phi_incoming=*/true, inst.phi_blocks[i]);
        if (TypeOf(inst.operands[i]) != inst.type) {
          ErrorAt(b, inst, "phi incoming type mismatch");
        }
      }
      return;
    }
    for (ValueRef v : inst.operands) CheckUse(b, pos, inst, v, false, 0);

    // Opcode-specific typing.
    switch (inst.op) {
      case Opcode::kBr:
        if (inst.bb_true >= fn_.blocks.size()) ErrorAt(b, inst, "bad branch target");
        break;
      case Opcode::kCondBr:
        if (inst.bb_true >= fn_.blocks.size() || inst.bb_false >= fn_.blocks.size()) {
          ErrorAt(b, inst, "bad branch target");
        }
        if (inst.operands.size() != 1 || TypeOf(inst.operands[0]) != Type::I1()) {
          ErrorAt(b, inst, "condbr requires a single i1 condition");
        }
        break;
      case Opcode::kRet:
        if (fn_.return_type.IsVoid()) {
          if (!inst.operands.empty()) ErrorAt(b, inst, "ret with value in void function");
        } else if (inst.operands.size() != 1 ||
                   TypeOf(inst.operands[0]) != fn_.return_type) {
          ErrorAt(b, inst, "ret value type mismatch");
        }
        break;
      case Opcode::kLoad:
        if (inst.operands.size() != 1 || !TypeOf(inst.operands[0]).IsPointer()) {
          ErrorAt(b, inst, "load requires a pointer operand");
        } else if (TypeOf(inst.operands[0]).Pointee() != inst.type) {
          ErrorAt(b, inst, "load result type does not match pointee");
        }
        break;
      case Opcode::kStore:
        if (inst.operands.size() != 2 || !TypeOf(inst.operands[1]).IsPointer()) {
          ErrorAt(b, inst, "store requires (value, pointer) operands");
        } else if (TypeOf(inst.operands[1]).Pointee() != TypeOf(inst.operands[0])) {
          ErrorAt(b, inst, "store value type does not match pointee");
        }
        break;
      case Opcode::kGep:
        if (inst.operands.size() != 2 || !TypeOf(inst.operands[0]).IsPointer() ||
            !TypeOf(inst.operands[1]).IsInt()) {
          ErrorAt(b, inst, "gep requires (pointer, integer) operands");
        } else if (inst.gep_elem_bytes == 0) {
          ErrorAt(b, inst, "gep element size is zero");
        }
        break;
      case Opcode::kCall: {
        if (inst.is_intrinsic) {
          if (inst.operands.size() != IntrinsicArity(inst.intrinsic)) {
            ErrorAt(b, inst, "intrinsic arity mismatch");
          }
          break;
        }
        if (inst.callee >= module_.functions.size()) {
          ErrorAt(b, inst, "call target out of range");
          break;
        }
        const Function& callee = module_.functions[inst.callee];
        if (inst.operands.size() != callee.num_params) {
          ErrorAt(b, inst, "call argument count mismatch");
          break;
        }
        for (std::size_t i = 0; i < inst.operands.size(); ++i) {
          if (TypeOf(inst.operands[i]) != callee.registers[i].type) {
            ErrorAt(b, inst, "call argument type mismatch");
          }
        }
        break;
      }
      default:
        if (IsBinaryArith(inst.op)) {
          if (inst.operands.size() != 2 ||
              TypeOf(inst.operands[0]) != TypeOf(inst.operands[1]) ||
              TypeOf(inst.operands[0]) != inst.type) {
            ErrorAt(b, inst, "binary operand typing violation");
          }
        }
        break;
    }
  }

  [[nodiscard]] Type TypeOf(ValueRef v) const { return module_.TypeOf(fn_, v); }

  const Module& module_;
  const Function& fn_;
  std::uint32_t fn_index_;
  std::vector<std::string>& errors_;
  std::vector<std::uint32_t> def_block_;
  std::vector<std::uint32_t> def_pos_;
  std::vector<std::uint32_t> idom_;
  std::vector<std::vector<std::uint32_t>> preds_;
  bool single_assignment_ok_ = true;
};

}  // namespace

std::string VerifyResult::Summary() const {
  std::ostringstream os;
  os << errors.size() << " verifier error(s)";
  for (const auto& e : errors) os << "\n  " << e;
  return os.str();
}

VerifyResult VerifyModule(const Module& module) {
  const obs::TraceSpan span("parse", "verify-module");
  VerifyResult result;
  for (std::uint32_t f = 0; f < module.functions.size(); ++f) {
    FunctionVerifier(module, module.functions[f], f, result.errors).Run();
  }
  return result;
}

void VerifyModuleOrThrow(const Module& module) {
  const VerifyResult result = VerifyModule(module);
  if (!result.ok()) throw std::runtime_error(result.Summary());
}

}  // namespace epvf::ir
