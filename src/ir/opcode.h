// Opcodes and their static traits.
//
// The set mirrors the LLVM instructions the paper's analysis actually
// reasons about: the arithmetic/addressing opcodes of Table III
// (add/sub/mul/div/rem/bitcast/getelementptr), loads/stores (the triggers of
// the crash model), casts, compares/branches/phi (control flow that the DDG
// slices across), and calls (including the output intrinsic that roots the
// ACE analysis).
#pragma once

#include <cstdint>
#include <string_view>

namespace epvf::ir {

enum class Opcode : std::uint8_t {
  // Integer arithmetic
  kAdd, kSub, kMul, kSDiv, kUDiv, kSRem, kURem,
  // Floating-point arithmetic
  kFAdd, kFSub, kFMul, kFDiv,
  // Bitwise
  kAnd, kOr, kXor, kShl, kLShr, kAShr,
  // Comparisons / selection
  kICmp, kFCmp, kSelect, kPhi,
  // Casts
  kTrunc, kZExt, kSExt, kBitCast, kSIToFP, kUIToFP, kFPToSI, kFPTrunc, kFPExt,
  kPtrToInt, kIntToPtr,
  // Memory
  kAlloca, kLoad, kStore, kGep,
  // Control
  kBr, kCondBr, kRet, kCall,
};

inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kCall) + 1;

enum class ICmpPred : std::uint8_t { kEq, kNe, kSlt, kSle, kSgt, kSge, kUlt, kUle, kUgt, kUge };
enum class FCmpPred : std::uint8_t { kOeq, kOne, kOlt, kOle, kOgt, kOge };

[[nodiscard]] std::string_view OpcodeName(Opcode op);
[[nodiscard]] std::string_view ICmpPredName(ICmpPred pred);
[[nodiscard]] std::string_view FCmpPredName(FCmpPred pred);

[[nodiscard]] constexpr bool IsTerminator(Opcode op) {
  return op == Opcode::kBr || op == Opcode::kCondBr || op == Opcode::kRet;
}

[[nodiscard]] constexpr bool IsMemoryAccess(Opcode op) {
  return op == Opcode::kLoad || op == Opcode::kStore;
}

[[nodiscard]] constexpr bool IsBinaryArith(Opcode op) {
  return op >= Opcode::kAdd && op <= Opcode::kAShr;
}

[[nodiscard]] constexpr bool IsCast(Opcode op) {
  return op >= Opcode::kTrunc && op <= Opcode::kIntToPtr;
}

/// Whether the opcode defines a result register.
[[nodiscard]] constexpr bool ProducesValue(Opcode op) {
  switch (op) {
    case Opcode::kStore:
    case Opcode::kBr:
    case Opcode::kCondBr:
    case Opcode::kRet:
      return false;  // stores/branches/rets define nothing
    default:
      return true;  // kCall may still be void; the instruction records that
  }
}

}  // namespace epvf::ir
