#include "ir/module.h"

namespace epvf::ir {

ValueRef Module::InternConstant(const Constant& c) {
  auto [it, inserted] = constant_index_.try_emplace(c, static_cast<std::uint32_t>(constants_.size()));
  if (inserted) constants_.push_back(c);
  return ValueRef::Const(it->second);
}

std::optional<std::uint32_t> Module::FindFunction(std::string_view name) const {
  for (std::uint32_t i = 0; i < functions.size(); ++i) {
    if (functions[i].name == name) return i;
  }
  return std::nullopt;
}

std::optional<std::uint32_t> Module::FindGlobal(std::string_view name) const {
  for (std::uint32_t i = 0; i < globals.size(); ++i) {
    if (globals[i].name == name) return i;
  }
  return std::nullopt;
}

Type Module::TypeOf(const Function& fn, ValueRef ref) const {
  switch (ref.kind) {
    case ValueKind::kRegister: return fn.registers[ref.index].type;
    case ValueKind::kConstant: return constants_[ref.index].type;
    case ValueKind::kGlobal: return globals[ref.index].PointerType();
    case ValueKind::kNone: return Type::Void();
  }
  return Type::Void();
}

std::size_t Module::TotalStaticInstructions() const {
  std::size_t n = 0;
  for (const auto& fn : functions) n += fn.InstructionCount();
  return n;
}

}  // namespace epvf::ir
