// IRBuilder: the programmatic frontend for authoring modules.
//
// The ten evaluation kernels (paper Table IV) are authored in C++ against
// this builder instead of being compiled from C by LLVM — the substitution
// documented in DESIGN.md. The builder enforces the same structural rules an
// LLVM frontend would (operand typing, terminator placement) and throws
// std::logic_error on misuse, since a malformed module is a programming bug
// in the kernel author, not a runtime condition.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "ir/module.h"

namespace epvf::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Module& module) : module_(module) {}

  // --- module-level construction -------------------------------------------
  std::uint32_t DeclareGlobal(std::string name, Type element_type, std::uint64_t count,
                              std::vector<std::uint8_t> init = {});

  /// Creates a function, makes it current, and creates its entry block.
  std::uint32_t CreateFunction(std::string name, Type return_type,
                               std::span<const Type> param_types,
                               std::span<const std::string> param_names = {});
  std::uint32_t CreateFunction(std::string name, Type return_type,
                               std::initializer_list<Type> param_types) {
    const std::vector<Type> params(param_types);
    return CreateFunction(std::move(name), return_type, params);
  }

  void SetFunction(std::uint32_t function_index);
  [[nodiscard]] std::uint32_t CurrentFunctionIndex() const { return func_; }
  [[nodiscard]] Function& CurrentFunction() { return module_.functions[func_]; }

  std::uint32_t CreateBlock(std::string name);
  void SetInsertPoint(std::uint32_t block);
  [[nodiscard]] std::uint32_t CurrentBlock() const { return block_; }

  [[nodiscard]] ValueRef Param(std::uint32_t i) const;
  [[nodiscard]] ValueRef Global(std::uint32_t global_index) const {
    return ValueRef::Global(global_index);
  }

  // --- constants ------------------------------------------------------------
  [[nodiscard]] ValueRef ConstInt(Type type, std::int64_t v);
  [[nodiscard]] ValueRef I1(bool v) { return ConstInt(Type::I1(), v ? 1 : 0); }
  [[nodiscard]] ValueRef I32(std::int32_t v) { return ConstInt(Type::I32(), v); }
  [[nodiscard]] ValueRef I64(std::int64_t v) { return ConstInt(Type::I64(), v); }
  [[nodiscard]] ValueRef F32(float v) { return module_.InternConstant(MakeF32Constant(v)); }
  [[nodiscard]] ValueRef F64(double v) { return module_.InternConstant(MakeF64Constant(v)); }
  [[nodiscard]] ValueRef NullPtr(Type pointee) {
    return module_.InternConstant(Constant{pointee.Ptr(), 0});
  }

  // --- arithmetic / bitwise ---------------------------------------------------
  ValueRef Add(ValueRef a, ValueRef b, std::string name = {});
  ValueRef Sub(ValueRef a, ValueRef b, std::string name = {});
  ValueRef Mul(ValueRef a, ValueRef b, std::string name = {});
  ValueRef SDiv(ValueRef a, ValueRef b, std::string name = {});
  ValueRef UDiv(ValueRef a, ValueRef b, std::string name = {});
  ValueRef SRem(ValueRef a, ValueRef b, std::string name = {});
  ValueRef URem(ValueRef a, ValueRef b, std::string name = {});
  ValueRef FAdd(ValueRef a, ValueRef b, std::string name = {});
  ValueRef FSub(ValueRef a, ValueRef b, std::string name = {});
  ValueRef FMul(ValueRef a, ValueRef b, std::string name = {});
  ValueRef FDiv(ValueRef a, ValueRef b, std::string name = {});
  ValueRef And(ValueRef a, ValueRef b, std::string name = {});
  ValueRef Or(ValueRef a, ValueRef b, std::string name = {});
  ValueRef Xor(ValueRef a, ValueRef b, std::string name = {});
  ValueRef Shl(ValueRef a, ValueRef b, std::string name = {});
  ValueRef LShr(ValueRef a, ValueRef b, std::string name = {});
  ValueRef AShr(ValueRef a, ValueRef b, std::string name = {});

  // --- comparisons / selection -----------------------------------------------
  ValueRef ICmp(ICmpPred pred, ValueRef a, ValueRef b, std::string name = {});
  ValueRef FCmp(FCmpPred pred, ValueRef a, ValueRef b, std::string name = {});
  ValueRef Select(ValueRef cond, ValueRef if_true, ValueRef if_false, std::string name = {});

  /// Creates a phi with the given incoming (value, block) pairs.
  ValueRef Phi(Type type, std::span<const std::pair<ValueRef, std::uint32_t>> incoming,
               std::string name = {});
  ValueRef Phi(Type type, std::initializer_list<std::pair<ValueRef, std::uint32_t>> incoming,
               std::string name = {}) {
    const std::vector<std::pair<ValueRef, std::uint32_t>> pairs(incoming);
    return Phi(type, std::span<const std::pair<ValueRef, std::uint32_t>>(pairs),
               std::move(name));
  }

  /// Appends an incoming (value, block) pair to an existing phi — needed for
  /// loop headers, whose back-edge value does not exist when the phi is
  /// created. `phi` must be the result of a Phi() in the current function.
  void AddPhiIncoming(ValueRef phi, ValueRef value, std::uint32_t from_block);

  // --- casts -------------------------------------------------------------------
  ValueRef Trunc(ValueRef v, Type to, std::string name = {});
  ValueRef ZExt(ValueRef v, Type to, std::string name = {});
  ValueRef SExt(ValueRef v, Type to, std::string name = {});
  ValueRef BitCast(ValueRef v, Type to, std::string name = {});
  ValueRef SIToFP(ValueRef v, Type to, std::string name = {});
  ValueRef UIToFP(ValueRef v, Type to, std::string name = {});
  ValueRef FPToSI(ValueRef v, Type to, std::string name = {});
  ValueRef FPTrunc(ValueRef v, std::string name = {});
  ValueRef FPExt(ValueRef v, std::string name = {});
  ValueRef PtrToInt(ValueRef v, std::string name = {});
  ValueRef IntToPtr(ValueRef v, Type to, std::string name = {});

  // --- memory --------------------------------------------------------------------
  /// Stack slot for `count` elements of `type`; result has type `type*`.
  ValueRef Alloca(Type type, std::uint64_t count = 1, std::string name = {});
  ValueRef Load(ValueRef ptr, std::string name = {});
  void Store(ValueRef value, ValueRef ptr);
  /// address = ptr + sizeof(pointee) * index, result typed like `ptr`.
  ValueRef Gep(ValueRef ptr, ValueRef index, std::string name = {});

  // --- control -----------------------------------------------------------------
  void Br(std::uint32_t target);
  void CondBr(ValueRef cond, std::uint32_t if_true, std::uint32_t if_false);
  void RetVoid();
  void Ret(ValueRef v);

  // --- calls ---------------------------------------------------------------------
  ValueRef Call(std::uint32_t function_index, std::span<const ValueRef> args,
                std::string name = {});
  ValueRef Call(std::uint32_t function_index, std::initializer_list<ValueRef> args,
                std::string name = {}) {
    const std::vector<ValueRef> a(args);
    return Call(function_index, std::span<const ValueRef>(a), std::move(name));
  }
  ValueRef CallIntrinsic(Intrinsic which, std::span<const ValueRef> args, std::string name = {});
  ValueRef CallIntrinsic(Intrinsic which, std::initializer_list<ValueRef> args,
                         std::string name = {}) {
    const std::vector<ValueRef> a(args);
    return CallIntrinsic(which, std::span<const ValueRef>(a), std::move(name));
  }

  /// Emits output_i64 or output_f64 depending on the operand type; integers
  /// narrower than 64 bits are sign-extended first.
  void Output(ValueRef v);
  /// malloc(`bytes`) bit-cast to `pointee.Ptr()`.
  ValueRef MallocArray(Type pointee, ValueRef count, std::string name = {});

  [[nodiscard]] Type TypeOf(ValueRef v) const;
  [[nodiscard]] Module& module() { return module_; }

 private:
  Instruction& Append(Instruction inst);
  ValueRef Binary(Opcode op, ValueRef a, ValueRef b, std::string name);
  ValueRef Cast(Opcode op, ValueRef v, Type to, std::string name);
  void CheckInt(ValueRef v, const char* what) const;
  void CheckFloat(ValueRef v, const char* what) const;
  void CheckSameType(ValueRef a, ValueRef b, const char* what) const;
  [[noreturn]] void Fail(const std::string& message) const;

  Module& module_;
  std::uint32_t func_ = kInvalidIndex;
  std::uint32_t block_ = kInvalidIndex;
};

}  // namespace epvf::ir
