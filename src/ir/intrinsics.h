// Runtime intrinsics callable from IR.
//
// The evaluated kernels need exactly the runtime surface the Rodinia C
// sources use: heap allocation (the heap segment is where most segmentation
// faults land), libm math, an output channel (which roots the ACE analysis —
// paper section III-A identifies "output instructions" and slices backwards
// from them), and abort (the "A" crash class of Table I).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "ir/type.h"

namespace epvf::ir {

enum class Intrinsic : std::uint8_t {
  kOutputI64,  ///< output(i64) — appends to the program's output stream
  kOutputF64,  ///< output(f64)
  kMalloc,     ///< i8* malloc(i64 bytes)
  kFree,       ///< void free(i8*)
  kAbort,      ///< void abort() — self-terminating crash (Table I class "A")
  kAssert,     ///< void assert(i1) — aborts when the condition is false
  kSqrt, kFabs, kExp, kLog, kPow, kFmin, kFmax, kSin, kCos, kFloor,
  kDetect,     ///< void detect() — duplication check fired (section V transform)
};

inline constexpr int kNumIntrinsics = static_cast<int>(Intrinsic::kDetect) + 1;

[[nodiscard]] std::string_view IntrinsicName(Intrinsic which);
[[nodiscard]] std::optional<Intrinsic> IntrinsicByName(std::string_view name);

/// Result type of the intrinsic (void for output/free/abort/assert).
[[nodiscard]] Type IntrinsicResultType(Intrinsic which);

/// Number of arguments the intrinsic expects.
[[nodiscard]] unsigned IntrinsicArity(Intrinsic which);

/// True for the output intrinsics — the ACE analysis roots.
[[nodiscard]] constexpr bool IsOutputIntrinsic(Intrinsic which) {
  return which == Intrinsic::kOutputI64 || which == Intrinsic::kOutputF64;
}

}  // namespace epvf::ir
