// The instruction-semantics lookup table (paper Table III).
//
// Given the allowed interval of an instruction's destination and the
// observed run-time values of its operands, returns the allowed interval of
// each source operand — the inverse image of the destination interval under
// the instruction's semantics with the other operands held at their observed
// values. Covers the opcodes Table III lists (add, sub, mul, div, bitcast,
// getelementptr, plus value-preserving casts, phi and select pass-through);
// opcodes outside the table (bitwise logic, shifts, rem, trunc, float
// arithmetic) return "no constraint", stopping the propagation there exactly
// as the paper's model does.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "ir/instruction.h"
#include "support/interval.h"

namespace epvf::crash {

/// Result of one table lookup: the allowed interval for operand `slot`, or
/// nullopt when the table has no (invertible) rule for that operand.
/// `operand_widths` gives each operand's bit width (operand payloads are
/// canonical zero-truncated values; GEP indices are sign-extended from their
/// width before use, matching the platform's evaluation).
[[nodiscard]] std::optional<Interval> OperandAllowedInterval(
    const ir::Instruction& inst, std::span<const std::uint64_t> operand_values,
    std::span<const unsigned> operand_widths, unsigned slot, Interval dest_allowed);

}  // namespace epvf::crash
