#include "crash/propagation.h"

#include <array>

#include "crash/lookup_table.h"
#include "obs/trace.h"
#include "support/bits.h"
#include "support/thread_pool.h"

namespace epvf::crash {

namespace {
using ddg::kNoNode;
using ddg::NodeId;
using ir::Opcode;

/// Narrows `allowed[node]` with `interval`; constants/globals are immediate
/// operands, not fault-injection targets, so they take no constraints.
void Narrow(const ddg::Graph& graph, std::vector<Interval>& allowed, NodeId node,
            Interval interval) {
  if (node == kNoNode || interval.IsFull()) return;
  const ddg::Node& n = graph.GetNode(node);
  if (n.kind == ddg::NodeKind::kConstant || n.kind == ddg::NodeKind::kGlobal) return;
  allowed[node] = allowed[node].Intersect(interval);
}

}  // namespace

CrashBits PropagateCrashRanges(const ddg::Graph& graph, const ddg::AceResult& ace,
                               const CrashModel& model, int jobs) {
  const obs::TraceSpan span("crash-model", "propagate-crash-ranges");
  CrashBits result;
  const std::size_t n = graph.NumNodes();
  result.allowed.assign(n, Interval::Full());
  result.crash_mask.assign(n, 0);

  // --- Algorithm 1: iterate over the ACE graph; seed every load/store ------
  // The access is "in the ACE graph" when the node it produced (load result /
  // store memory version) is an ACE node — this is what makes ePVF's crash
  // coverage depend on the ACE fraction of the DDG, the effect the paper
  // observes for lavaMD and lulesh in Figure 8.
  for (const ddg::AccessRecord& access : graph.accesses()) {
    const ddg::DynInstr& d = graph.GetDyn(access.dyn_index);
    if (d.result_node == kNoNode || !ace.Contains(d.result_node)) continue;
    const Interval bound = model.CheckBoundary(access);
    Narrow(graph, result.allowed, access.addr_node, bound);
    ++result.seeded_accesses;
  }

  // --- Algorithm 2 over the DAG: one descending sweep reaches the fixpoint --
  for (NodeId id = static_cast<NodeId>(n); id-- > 0;) {
    const Interval dest_allowed = result.allowed[id];
    if (dest_allowed.IsFull()) continue;
    const ddg::Node& node = graph.GetNode(id);
    if (node.dyn_index == ddg::kNoDyn) continue;  // constants/globals

    const ddg::DynInstr& d = graph.GetDyn(node.dyn_index);
    const ir::Instruction& inst = graph.InstructionOf(d);
    const auto op_nodes = graph.OperandNodes(node.dyn_index);
    const auto op_values = graph.OperandValues(node.dyn_index);

    switch (inst.op) {
      case Opcode::kStore:
        // Memory version node: the stored value must equal the loaded value,
        // so the constraint passes to the value operand untouched.
        Narrow(graph, result.allowed, op_nodes[0], dest_allowed);
        continue;
      case Opcode::kLoad: {
        // Load result: pass the constraint through the memory version(s) it
        // read — but only when the load observed a single whole version
        // (partial/byte-mixed reads break the value identity).
        const auto preds = graph.Preds(id);
        NodeId data_pred = kNoNode;
        unsigned data_count = 0;
        for (unsigned i = 0; i < preds.size(); ++i) {
          if (!graph.PredIsVirtual(id, i)) {
            data_pred = preds[i];
            ++data_count;
          }
        }
        if (data_count == 1 && graph.GetNode(data_pred).width == node.width &&
            graph.GetNode(data_pred).value == node.value) {
          Narrow(graph, result.allowed, data_pred, dest_allowed);
        }
        continue;
      }
      case Opcode::kPhi: {
        if (d.selected_operand != 0xFF) {
          Narrow(graph, result.allowed, op_nodes[d.selected_operand], dest_allowed);
        }
        continue;
      }
      case Opcode::kSelect: {
        // Constraint flows to the dynamically chosen value operand.
        const unsigned chosen = (op_values[0] & 1) != 0 ? 1 : 2;
        Narrow(graph, result.allowed, op_nodes[chosen], dest_allowed);
        continue;
      }
      default:
        break;
    }

    // Table III lookup for each source operand.
    std::array<unsigned, 8> widths{};
    for (std::size_t i = 0; i < op_nodes.size() && i < widths.size(); ++i) {
      widths[i] = op_nodes[i] == kNoNode ? 64u : graph.GetNode(op_nodes[i]).width;
    }
    for (unsigned slot = 0; slot < op_nodes.size(); ++slot) {
      if (op_nodes[slot] == kNoNode) continue;
      const auto interval = OperandAllowedInterval(
          inst, op_values, std::span<const unsigned>(widths.data(), op_nodes.size()), slot,
          dest_allowed);
      if (interval.has_value()) {
        Narrow(graph, result.allowed, op_nodes[slot], *interval);
      }
    }
  }

  // --- crash-bit masks (the CRASHING_BIT_LIST) --------------------------------
  // Per-node independent (flip-and-test over up to 64 bits × every node), so
  // this sweep runs data-parallel; each node writes only its own mask slot and
  // the totals fold in chunk order, keeping the result thread-count-invariant.
  struct MaskTotals {
    std::uint64_t nodes = 0;
    std::uint64_t bits = 0;
  };
  const MaskTotals totals = ParallelReduce(
      std::size_t{0}, n, MaskTotals{},
      [&](std::size_t chunk_begin, std::size_t chunk_end) {
        MaskTotals part;
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const NodeId id = static_cast<NodeId>(i);
          const Interval allowed = result.allowed[id];
          if (allowed.IsFull()) continue;
          const ddg::Node& node = graph.GetNode(id);
          if (node.kind != ddg::NodeKind::kRegister || !ace.Contains(id)) continue;
          ++part.nodes;
          std::uint64_t mask = 0;
          for (unsigned bit = 0; bit < node.width; ++bit) {
            const std::uint64_t flipped = FlipBit(node.value, bit);
            if (!allowed.Contains(flipped)) mask |= std::uint64_t{1} << bit;
          }
          result.crash_mask[id] = mask;
          part.bits += PopCount(mask);
        }
        return part;
      },
      [](MaskTotals acc, const MaskTotals& part) {
        acc.nodes += part.nodes;
        acc.bits += part.bits;
        return acc;
      },
      ParallelOptions{.jobs = jobs});
  result.constrained_nodes = totals.nodes;
  result.total_crash_bits = totals.bits;
  return result;
}

}  // namespace epvf::crash
