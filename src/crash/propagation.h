// The propagation model (paper section III-C, Algorithms 1 and 2).
//
// Walks the ACE graph, and for every load/store in it seeds the address
// node's allowed interval from CHECK_BOUNDARY, then propagates allowed
// intervals along the backward slices via the Table III lookup table
// (GET_RANGE_FOR_CRASH_BITS). A node constrained by several accesses keeps
// the *intersection* of their allowed intervals — a fault crashes if it takes
// any downstream access out of bounds.
//
// Implementation note (the "good engineering" of paper section VI-A): DDG
// edges always point from later nodes to earlier ones, so the graph is a DAG
// topologically ordered by node id. One descending sweep therefore reaches
// the fixpoint: when a node is visited, every successor has already narrowed
// it. That turns the paper's hours-long per-slice search into a single O(N)
// pass.
#pragma once

#include <cstdint>
#include <vector>

#include "crash/crash_model.h"
#include "ddg/ace.h"
#include "ddg/graph.h"
#include "support/interval.h"

namespace epvf::crash {

struct CrashBits {
  /// Per-node allowed interval (Full = unconstrained, i.e. no crash bits).
  std::vector<Interval> allowed;
  /// Per-node crash-bit mask: bit b set means flipping bit b of this node's
  /// observed value is predicted to crash the program. Only register nodes in
  /// the ACE graph carry masks (the CRASHING_BIT_LIST of Algorithm 2).
  std::vector<std::uint64_t> crash_mask;

  std::uint64_t total_crash_bits = 0;   ///< Σ popcount over ACE register nodes
  std::uint64_t constrained_nodes = 0;  ///< nodes with a non-trivial interval
  std::uint64_t seeded_accesses = 0;    ///< load/stores inside the ACE graph

  [[nodiscard]] bool IsCrashBit(ddg::NodeId node, unsigned bit) const {
    return node != ddg::kNoNode && ((crash_mask[node] >> bit) & 1u) != 0;
  }
  [[nodiscard]] unsigned CrashBitCount(ddg::NodeId node) const {
    return node == ddg::kNoNode ? 0u : static_cast<unsigned>(__builtin_popcountll(crash_mask[node]));
  }
};

/// Runs the full crash + propagation analysis over the ACE subset of `graph`.
/// `ace` must come from ComputeAce on the same graph; `model` supplies
/// CHECK_BOUNDARY for the graph's recorded accesses. The interval seeding and
/// the DAG sweep are order-dependent and stay sequential; the crash-bit mask
/// extraction (flip-and-test over up to 64 bits per node) runs on `jobs`
/// threads (<= 0 = one per hardware core) with results bit-identical at every
/// thread count.
[[nodiscard]] CrashBits PropagateCrashRanges(const ddg::Graph& graph, const ddg::AceResult& ace,
                                             const CrashModel& model, int jobs = 0);

}  // namespace epvf::crash
