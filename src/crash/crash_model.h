// The crash model (paper section III-D, Algorithm 3).
//
// Given one recorded memory access — its address, size, the memory-map
// version current at the access, and ESP — CHECK_BOUNDARY returns the
// interval of addresses that would NOT have raised a segmentation fault at
// that moment. The segment boundaries come from the golden run's memory-map
// snapshots (our equivalent of the paper's /proc probe instrumented at every
// load and store), and the interval computation shares its implementation
// with the interpreter's fault decision (mem/crash_semantics.h), so model
// and platform agree by construction.
#pragma once

#include "ddg/graph.h"
#include "mem/sim_memory.h"
#include "support/interval.h"

namespace epvf::crash {

class CrashModel {
 public:
  /// `golden_memory` must outlive the model and have recorded map history.
  explicit CrashModel(const mem::SimMemory& golden_memory) : memory_(golden_memory) {}

  /// Algorithm 3: the allowed-address interval for one recorded access.
  [[nodiscard]] Interval CheckBoundary(const ddg::AccessRecord& access) const {
    const mem::MemoryMap& snapshot = memory_.Snapshot(access.map_version);
    return mem::AllowedAddressInterval(snapshot, access.esp, access.addr, access.size,
                                       memory_.layout());
  }

 private:
  const mem::SimMemory& memory_;
};

}  // namespace epvf::crash
