#include "crash/lookup_table.h"

#include "support/bits.h"

namespace epvf::crash {

namespace {
using ir::Opcode;
using interval_ops::InverseAddConst;
using interval_ops::InverseDivConst;
using interval_ops::InverseMulConst;
using interval_ops::InverseSubLeft;
using interval_ops::InverseSubRight;
}  // namespace

namespace {

/// Table III assumes non-negative operand values; the rows below extend it
/// exactly where the inverse image stays a single interval in the unsigned
/// domain (offsets that are "negative" as two's complement simply flip the
/// add/sub direction) and stop where it would not.
bool IsNegative(std::uint64_t value) { return static_cast<std::int64_t>(value) < 0; }
std::uint64_t Magnitude(std::uint64_t value) { return ~value + 1; }

/// dest = op + addend (mod 2^64), addend interpreted as two's complement.
Interval InverseAddSigned(Interval dest_allowed, std::uint64_t addend) {
  if (IsNegative(addend)) return InverseSubLeft(dest_allowed, Magnitude(addend));
  return InverseAddConst(dest_allowed, addend);
}

}  // namespace

std::optional<Interval> OperandAllowedInterval(const ir::Instruction& inst,
                                               std::span<const std::uint64_t> operand_values,
                                               std::span<const unsigned> operand_widths,
                                               unsigned slot, Interval dest_allowed) {
  switch (inst.op) {
    case Opcode::kAdd: {
      // dest = op0 + op1  (Table III row 1)
      const unsigned other_slot = slot == 0 ? 1 : 0;
      const std::uint64_t other =
          SignExtendFrom(operand_values[other_slot], operand_widths[other_slot]);
      return InverseAddSigned(dest_allowed, other);
    }
    case Opcode::kSub: {
      // dest = op0 - op1  (Table III row 2)
      if (slot == 0) {
        const std::uint64_t op1 = SignExtendFrom(operand_values[1], operand_widths[1]);
        return InverseAddSigned(dest_allowed, Magnitude(op1));
      }
      return InverseSubRight(dest_allowed, operand_values[0]);
    }
    case Opcode::kMul: {
      // dest = op0 * op1  (Table III row 3); a negative multiplier flips the
      // direction of the mapping, so the interval inverse no longer applies.
      const unsigned other_slot = slot == 0 ? 1 : 0;
      const std::uint64_t other =
          SignExtendFrom(operand_values[other_slot], operand_widths[other_slot]);
      if (IsNegative(other)) return std::nullopt;
      return InverseMulConst(dest_allowed, other);
    }
    case Opcode::kUDiv:
    case Opcode::kSDiv: {
      // dest = op0 / op1  (Table III row 4); only the dividend is invertible
      // to an interval under the positive-value assumption.
      if (slot == 0 && !IsNegative(operand_values[0]) && !IsNegative(operand_values[1])) {
        return InverseDivConst(dest_allowed, operand_values[1]);
      }
      return std::nullopt;
    }
    case Opcode::kGep: {
      // dest = base + elem_bytes * index  (Table III row 6, getelementptr)
      const std::uint64_t index = SignExtendFrom(operand_values[1], operand_widths[1]);
      const std::uint64_t scaled = inst.gep_elem_bytes * index;
      if (slot == 0) return InverseAddSigned(dest_allowed, scaled);
      // index: first strip the base, then divide by the element size. A
      // negative observed index keeps the base constraint exact (above) but
      // the index inverse itself would straddle the wrap point: stop.
      if (IsNegative(index)) return std::nullopt;
      const Interval scaled_allowed = InverseAddConst(dest_allowed, operand_values[0]);
      return InverseMulConst(scaled_allowed, inst.gep_elem_bytes);
    }
    case Opcode::kBitCast:   // Table III row 7: dest = op
    case Opcode::kPtrToInt:
    case Opcode::kIntToPtr:
    case Opcode::kZExt:      // value-preserving under the positive assumption
    case Opcode::kSExt:
      return dest_allowed;
    case Opcode::kPhi:
    case Opcode::kSelect:
      // Pass-through to the dynamically chosen operand; the caller is
      // responsible for asking only about that operand.
      return dest_allowed;
    case Opcode::kLoad:
      // Handled structurally by the propagation pass (through memory nodes).
      return std::nullopt;
    default:
      // Not in Table III (bitwise logic, shifts, rem, float arithmetic,
      // trunc, compares, ...): the inverse image is not an interval — stop.
      return std::nullopt;
  }
}

}  // namespace epvf::crash
