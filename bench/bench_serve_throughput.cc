// Resident-daemon throughput: warm `epvf analyze --connect` requests against
// a live `epvf serve` daemon vs. cold full-CLI subprocess invocations.
//
// The daemon's value proposition is that a request against an already-seen
// (app, scale, options) key costs a render of the resident core::Analysis,
// not a process start + parse + pipeline execution. This bench measures
// exactly that: cold wall time (spawn the real CLI with --no-cache, per
// request), warm wall time (one epvf-wire-v1 round trip per request, fresh
// connection each time — the CLI client's own behavior), requests/second,
// and the speedup. The acceptance gate from the serve work is hard: warm
// must be >= 5x faster than cold on every app measured, else exit 1.
//
// Knobs: EPVF_SCALE (via bench_common's Scale), EPVF_SERVE_BENCH_COLD /
// EPVF_SERVE_BENCH_WARM (iteration counts, default 5 / 25). The epvf binary
// path is baked in at build time (EPVF_CLI_PATH).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "serve/client.h"
#include "serve/wire.h"
#include "support/subprocess.h"
#include "support/stopwatch.h"
#include "support/table.h"

namespace {

namespace fs = std::filesystem;

using epvf::AsciiTable;
using epvf::Stopwatch;
using epvf::Subprocess;
using epvf::SubprocessOptions;

int EnvCount(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  const int parsed = std::atoi(value);
  return parsed > 0 ? parsed : fallback;
}

/// One cold request: the full CLI subprocess, output discarded. Returns the
/// wall time in milliseconds, or nullopt if the invocation failed.
std::optional<double> ColdRequestMs(const std::string& app, int scale) {
  const std::string command = std::string(EPVF_CLI_PATH) + " analyze " + app + " --scale " +
                              std::to_string(scale) + " --no-cache >/dev/null 2>&1";
  Stopwatch watch;
  const int status = std::system(command.c_str());
  if (status != 0) return std::nullopt;
  return watch.ElapsedMillis();
}

/// One warm request: connect, send a run request, drain the reply frames.
/// A fresh connection per request matches what `epvf analyze --connect`
/// does, so connect/teardown cost is *included* in the warm number.
std::optional<double> WarmRequestMs(const std::string& socket_path, const std::string& app,
                                    int scale) {
  Stopwatch watch;
  std::optional<epvf::serve::ServeClient> client = epvf::serve::ServeClient::Connect(socket_path);
  if (!client.has_value()) return std::nullopt;
  epvf::serve::RunRequest request;
  request.args = {"analyze", app, "--scale", std::to_string(scale)};
  std::size_t reply_bytes = 0;
  const epvf::serve::ServeClient::RunResult result = client->Run(
      request, [&](std::string_view bytes) { reply_bytes += bytes.size(); }, nullptr, nullptr);
  if (!result.transport_ok || result.error.has_value() || result.exit_code != 0 ||
      reply_bytes == 0) {
    return std::nullopt;
  }
  return watch.ElapsedMillis();
}

bool WaitForSocket(const std::string& socket_path) {
  for (int i = 0; i < 100; ++i) {
    std::error_code ec;
    if (fs::is_socket(socket_path, ec)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

}  // namespace

int main() {
  epvf::bench::BenchJson json("serve_throughput");

  const int scale = epvf::bench::Scale();
  const int cold_iters = EnvCount("EPVF_SERVE_BENCH_COLD", 5);
  const int warm_iters = EnvCount("EPVF_SERVE_BENCH_WARM", 25);
  const std::string socket_path =
      "/tmp/epvf-bench-serve-" + std::to_string(::getpid()) + ".sock";

  SubprocessOptions daemon_options;
  daemon_options.argv = {EPVF_CLI_PATH, "serve", socket_path};
  daemon_options.stdout_path = "/dev/null";
  daemon_options.stderr_path = "/dev/null";
  std::optional<Subprocess> daemon = Subprocess::Spawn(daemon_options);
  if (!daemon.has_value() || !WaitForSocket(socket_path)) {
    std::fprintf(stderr, "bench_serve_throughput: daemon failed to come up on %s\n",
                 socket_path.c_str());
    return 1;
  }

  AsciiTable table({"Benchmark", "cold (ms)", "warm (ms)", "speedup", "warm req/s"});
  table.SetTitle("Resident daemon: warm --connect requests vs. cold CLI spawns");

  bool gate_ok = true;
  for (const std::string& app : {std::string("mm"), std::string("hotspot")}) {
    double cold_total = 0;
    for (int i = 0; i < cold_iters; ++i) {
      const std::optional<double> ms = ColdRequestMs(app, scale);
      if (!ms.has_value()) {
        std::fprintf(stderr, "bench_serve_throughput: cold `analyze %s` failed\n", app.c_str());
        return 1;
      }
      cold_total += *ms;
    }
    const double cold_ms = cold_total / cold_iters;

    // One unmeasured request first: it pays the resident-entry construction
    // so the timed loop measures the steady warm state.
    if (!WarmRequestMs(socket_path, app, scale).has_value()) {
      std::fprintf(stderr, "bench_serve_throughput: warmup request for %s failed\n", app.c_str());
      return 1;
    }
    double warm_total = 0;
    for (int i = 0; i < warm_iters; ++i) {
      const std::optional<double> ms = WarmRequestMs(socket_path, app, scale);
      if (!ms.has_value()) {
        std::fprintf(stderr, "bench_serve_throughput: warm request for %s failed\n", app.c_str());
        return 1;
      }
      warm_total += *ms;
    }
    const double warm_ms = warm_total / warm_iters;

    const double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0;
    const double rps = warm_ms > 0 ? 1000.0 / warm_ms : 0;
    const bool app_ok = speedup >= 5.0;
    gate_ok = gate_ok && app_ok;
    table.AddRow({app + (app_ok ? "" : " [FAIL <5x]"), AsciiTable::Num(cold_ms, 1),
                  AsciiTable::Num(warm_ms, 2), AsciiTable::Num(speedup, 1) + "x",
                  AsciiTable::Num(rps, 0)});
    json.Add(app, "cold_ms", cold_ms);
    json.Add(app, "warm_ms", warm_ms);
    json.Add(app, "speedup", speedup);
    json.Add(app, "rps", rps);
  }

  table.SetFootnote("cold = full CLI subprocess per request (--no-cache); warm = one "
                    "epvf-wire-v1 round trip against the resident daemon, fresh connection "
                    "per request; gate: warm >= 5x faster");
  table.Print(std::cout);

  if (std::optional<epvf::serve::ServeClient> client =
          epvf::serve::ServeClient::Connect(socket_path)) {
    (void)client->Shutdown();
  }
  if (!daemon->PollWithDeadline(5.0).has_value()) daemon->Kill();
  (void)daemon->Wait();

  if (!gate_ok) {
    std::fprintf(stderr,
                 "bench_serve_throughput: warm/cold speedup gate (>= 5x) FAILED — the resident "
                 "daemon is not earning its keep\n");
    return 1;
  }
  return 0;
}
