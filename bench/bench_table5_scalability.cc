// Table V: dynamic IR instruction counts, ACE graph sizes and modeling time,
// plus the paper's observation that time correlates with ACE-graph size.
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "support/statistics.h"

int main() {
  using namespace epvf;
  AsciiTable table({"Benchmark", "scale", "dyn IR instructions", "ACE nodes",
                    "modeling time (ms)", "jobs"});
  table.SetTitle("Table V — ACE graph size and analysis time");
  bench::BenchJson json("table5_scalability");
  std::vector<double> sizes;
  std::vector<double> times;
  for (const std::string& name : bench::TableIVApps()) {
    for (const int scale : {bench::Scale(), bench::Scale() + 1}) {
      const apps::App app = apps::BuildApp(name, apps::AppConfig{.scale = scale});
      const core::Analysis analysis =
          core::Analysis::Run(app.module, bench::DefaultAnalysisOptions());
      const double ms = analysis.timings().TotalSeconds() * 1e3;
      sizes.push_back(static_cast<double>(analysis.ace().ace_node_count));
      times.push_back(ms);
      table.AddRow({name, std::to_string(scale),
                    std::to_string(analysis.graph().NumDynInstrs()),
                    std::to_string(analysis.ace().ace_node_count), AsciiTable::Num(ms, 1),
                    std::to_string(analysis.timings().crash_threads)});
      const std::string row = name + "@" + std::to_string(scale);
      json.Add(row, "dyn_instructions", static_cast<double>(analysis.graph().NumDynInstrs()));
      json.Add(row, "ace_nodes", static_cast<double>(analysis.ace().ace_node_count));
      json.Add(row, "modeling_ms", ms);
    }
  }
  table.SetFootnote(
      "paper: time correlates with ACE graph size (theirs: 30s-5h in Python); "
      "ours, Pearson r = " +
      AsciiTable::Num(PearsonCorrelation(sizes, times), 3));
  table.Print(std::cout);
  return 0;
}
