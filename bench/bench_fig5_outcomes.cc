// Figure 5: fault-injection outcome distribution per benchmark.
//
// Paper result: crashes dominate (63% average), SDCs average 12%, hangs <1% —
// the dominance of crashes is the motivation for subtracting crash bits.
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace epvf;
  AsciiTable table({"Benchmark", "crash", "sdc", "benign", "hang", "runs"});
  table.SetTitle("Figure 5 — fault injection outcomes (95% CI half-widths)");
  double crash_sum = 0, sdc_sum = 0;
  int n = 0;
  for (const std::string& name : bench::TableIVApps()) {
    const bench::Prepared p = bench::Prepare(name);
    const fi::CampaignStats stats = bench::Campaign(p);
    const auto crash = stats.CrashCI();
    const auto sdc = stats.CI(fi::Outcome::kSdc);
    crash_sum += crash.rate;
    sdc_sum += sdc.rate;
    ++n;
    table.AddRow({name, AsciiTable::PctCI(crash.rate, crash.half_width),
                  AsciiTable::PctCI(sdc.rate, sdc.half_width),
                  AsciiTable::Pct(stats.Rate(fi::Outcome::kBenign)),
                  AsciiTable::Pct(stats.Rate(fi::Outcome::kHang)),
                  std::to_string(stats.Total())});
  }
  table.SetFootnote("paper averages: crash 63%, sdc 12%, hang <1%; ours: crash " +
                    AsciiTable::Pct(crash_sum / n) + ", sdc " + AsciiTable::Pct(sdc_sum / n));
  table.Print(std::cout);
  return 0;
}
