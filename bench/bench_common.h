// Shared plumbing for the reproduction benches.
//
// Every bench binary regenerates one table or figure from the paper on
// stdout. Knobs come from the environment so `for b in build/bench/*; do $b;
// done` runs with sane defaults:
//   EPVF_SCALE        benchmark size knob           (default 1)
//   EPVF_FI_RUNS      injections per campaign       (default 400)
//   EPVF_JITTER_PAGES per-run layout jitter (pages) (default 2 — the paper's
//                     environment nondeterminism; 0 = deterministic)
//   EPVF_SEED         campaign seed                 (default 42)
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "apps/app.h"
#include "epvf/analysis.h"
#include "fi/campaign.h"
#include "support/table.h"

namespace epvf::bench {

inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atoi(value);
}

inline int Scale() { return EnvInt("EPVF_SCALE", 1); }
inline int FiRuns() { return EnvInt("EPVF_FI_RUNS", 400); }
inline int JitterPages() { return EnvInt("EPVF_JITTER_PAGES", 2); }
inline std::uint64_t Seed() { return static_cast<std::uint64_t>(EnvInt("EPVF_SEED", 42)); }

/// The paper's Table IV suite (ten benchmarks).
inline std::vector<std::string> TableIVApps() {
  return {"lulesh", "particlefilter", "srad",       "nw",  "hotspot",
          "lavaMD", "bfs",            "pathfinder", "lud", "mm"};
}

/// The Table II crash-frequency study set (kmeans instead of lavaMD).
inline std::vector<std::string> TableIIApps() {
  return {"hotspot", "bfs",        "kmeans", "nw", "pathfinder",
          "lud",     "srad",       "mm",     "particlefilter", "lulesh"};
}

/// The five SDC-prone benchmarks of the section V case study.
inline std::vector<std::string> CaseStudyApps() {
  return {"mm", "pathfinder", "hotspot", "lud", "nw"};
}

/// An app plus its completed analysis. The analysis holds pointers into the
/// app's module, so both are constructed in place (guaranteed elision keeps
/// the addresses stable) and the struct is neither copied nor moved after.
struct Prepared {
  apps::App app;
  core::Analysis analysis;

  explicit Prepared(const std::string& name)
      : app(apps::BuildApp(name, apps::AppConfig{.scale = Scale()})),
        analysis(core::Analysis::Run(app.module)) {}

  Prepared(const Prepared&) = delete;
  Prepared& operator=(const Prepared&) = delete;
};

inline Prepared Prepare(const std::string& name) { return Prepared(name); }

inline fi::CampaignStats Campaign(const Prepared& p, int runs = 0) {
  fi::CampaignOptions options;
  options.num_runs = runs > 0 ? runs : FiRuns();
  options.seed = Seed();
  options.injector.jitter_pages = static_cast<std::uint32_t>(JitterPages());
  return fi::RunCampaign(p.app.module, p.analysis.graph(), p.analysis.golden(), options);
}

}  // namespace epvf::bench
