// Shared plumbing for the reproduction benches.
//
// Every bench binary regenerates one table or figure from the paper on
// stdout. Knobs come from the environment so `for b in build/bench/*; do $b;
// done` runs with sane defaults:
//   EPVF_SCALE        benchmark size knob           (default 1)
//   EPVF_FI_RUNS      injections per campaign       (default 400)
//   EPVF_JITTER_PAGES per-run layout jitter (pages) (default 2 — the paper's
//                     environment nondeterminism; 0 = deterministic)
//   EPVF_SEED         campaign seed                 (default 42)
//   EPVF_JOBS         analysis/campaign threads     (default 0 = hw cores;
//                     results identical at every setting)
//   EPVF_CHECKPOINTS  suffix-replay checkpoints per campaign (default -1 =
//                     auto from the trace length, 0 = off; outcomes are
//                     bit-identical at every setting — jittered campaigns
//                     never checkpoint)
//   EPVF_BENCH_JSON   when set, each bench also writes BENCH_<name>.json
//                     (machine-readable metrics; value = output directory,
//                     "1" = current directory) so perf is trackable across
//                     commits; benches whose JSON is committed at the repo
//                     root write there by default even when unset
//   EPVF_TRACE        0 = tracing off (default), 1 = write epvf-trace.json,
//                     anything else = the trace path; benches that declare a
//                     ScopedObservability export a Chrome trace_event JSON of
//                     their pipeline spans on exit
//   EPVF_METRICS_OUT  when set, dump the obs metrics registry (counters +
//                     stage histograms) to this path on exit
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "apps/app.h"
#include "epvf/analysis.h"
#include "fi/campaign.h"
#include "fi/planner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/atomic_file.h"
#include "support/table.h"

namespace epvf::bench {

/// Env-driven observability for a bench run: EPVF_TRACE enables span tracing
/// for the scope's lifetime and writes the Chrome trace on destruction;
/// EPVF_METRICS_OUT dumps the metrics registry alongside. Declare one at the
/// top of main — with neither variable set this is a no-op, so the measured
/// numbers stay untouched by default.
class ScopedObservability {
 public:
  ScopedObservability() {
    const char* trace = std::getenv("EPVF_TRACE");
    if (trace != nullptr && std::string(trace) != "0") {
      trace_path_ = std::string(trace) == "1" ? "epvf-trace.json" : trace;
      obs::SetTracingEnabled(true);
    }
    const char* metrics = std::getenv("EPVF_METRICS_OUT");
    if (metrics != nullptr && metrics[0] != '\0') metrics_path_ = metrics;
  }
  ScopedObservability(const ScopedObservability&) = delete;
  ScopedObservability& operator=(const ScopedObservability&) = delete;
  ~ScopedObservability() {
    if (!trace_path_.empty() && obs::WriteChromeTrace(trace_path_)) {
      std::fprintf(stderr, "trace: wrote %s\n", trace_path_.c_str());
    }
    if (!metrics_path_.empty() &&
        obs::MetricsRegistry::Global().WriteJsonFile(metrics_path_)) {
      std::fprintf(stderr, "metrics: wrote %s\n", metrics_path_.c_str());
    }
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
};

inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atoi(value);
}

inline double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::atof(value);
}

inline int Scale() { return EnvInt("EPVF_SCALE", 1); }
inline int FiRuns() { return EnvInt("EPVF_FI_RUNS", 400); }
inline int JitterPages() { return EnvInt("EPVF_JITTER_PAGES", 2); }
inline std::uint64_t Seed() { return static_cast<std::uint64_t>(EnvInt("EPVF_SEED", 42)); }
inline int Jobs() { return EnvInt("EPVF_JOBS", 0); }
inline int Checkpoints() { return EnvInt("EPVF_CHECKPOINTS", -1); }

/// Converts a checkpoint *count* into the CampaignOptions spacing knob:
/// n > 0 → n evenly spaced snapshots over the golden trace, n == 0 → the
/// fast path off, n < 0 → the campaign's auto policy.
inline std::int64_t CheckpointIntervalFor(const core::Analysis& analysis, int checkpoints) {
  if (checkpoints == 0) return -1;
  if (checkpoints < 0) return 0;
  const std::uint64_t interval =
      analysis.TraceLength() / (static_cast<std::uint64_t>(checkpoints) + 1);
  return static_cast<std::int64_t>(interval < 1 ? 1 : interval);
}

/// Analysis options every bench shares: the EPVF_JOBS knob plumbs into the
/// parallel pipeline stages (results are thread-count-invariant).
inline core::AnalysisOptions DefaultAnalysisOptions() {
  core::AnalysisOptions options;
  options.jobs = Jobs();
  return options;
}

/// Machine-readable companion to the ASCII tables. Collects flat
/// (row, metric, value) measurements and, when EPVF_BENCH_JSON is set,
/// writes them to BENCH_<name>.json on destruction:
///   {"bench":"<name>","rows":[{"row":"mm","metric":"total_ms","value":1.5},...]}
/// Benches whose JSON is tracked in-repo pass `default_to_repo_root = true`:
/// with EPVF_BENCH_JSON unset they still publish to the source tree root
/// (EPVF_REPO_ROOT, baked in by bench/CMakeLists.txt) so the committed
/// BENCH_*.json trajectory regenerates by just running the binary.
class BenchJson {
 public:
  explicit BenchJson(std::string name, bool default_to_repo_root = false)
      : name_(std::move(name)), default_to_repo_root_(default_to_repo_root) {}
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;
  ~BenchJson() { Write(); }

  void Add(const std::string& row, const std::string& metric, double value) {
    rows_.emplace_back(row, metric, value);
  }

  void Write() {
    if (written_) return;
    written_ = true;
    const char* dir = std::getenv("EPVF_BENCH_JSON");
    std::string base;
    if (dir != nullptr && dir[0] != '\0') {
      base = std::string(dir) == "1" ? "." : std::string(dir);
    }
#ifdef EPVF_REPO_ROOT
    else if (default_to_repo_root_) {
      base = EPVF_REPO_ROOT;
    }
#endif
    if (base.empty()) return;
    const std::string path = base + "/BENCH_" + name_ + ".json";
    std::string json = "{\"bench\":\"" + Escape(name_) + "\",\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const auto& [row, metric, value] = rows_[i];
      char num[64];
      std::snprintf(num, sizeof(num), "%.17g", value);
      if (i != 0) json += ',';
      json += "{\"row\":\"" + Escape(row) + "\",\"metric\":\"" + Escape(metric) +
              "\",\"value\":" + num + "}";
    }
    json += "]}\n";
    // Atomic publish: a crashed or concurrent bench never leaves a
    // half-written JSON file behind for the perf tracker to choke on.
    if (!AtomicWriteFile(path, json)) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
    }
  }

 private:
  static std::string Escape(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    return out;
  }

  std::string name_;
  bool default_to_repo_root_ = false;
  std::vector<std::tuple<std::string, std::string, double>> rows_;
  bool written_ = false;
};

/// The paper's Table IV suite (ten benchmarks).
inline std::vector<std::string> TableIVApps() {
  return {"lulesh", "particlefilter", "srad",       "nw",  "hotspot",
          "lavaMD", "bfs",            "pathfinder", "lud", "mm"};
}

/// The Table II crash-frequency study set (kmeans instead of lavaMD).
inline std::vector<std::string> TableIIApps() {
  return {"hotspot", "bfs",        "kmeans", "nw", "pathfinder",
          "lud",     "srad",       "mm",     "particlefilter", "lulesh"};
}

/// The five SDC-prone benchmarks of the section V case study.
inline std::vector<std::string> CaseStudyApps() {
  return {"mm", "pathfinder", "hotspot", "lud", "nw"};
}

/// An app plus its completed analysis. The analysis holds pointers into the
/// app's module, so both are constructed in place (guaranteed elision keeps
/// the addresses stable) and the struct is neither copied nor moved after.
struct Prepared {
  apps::App app;
  core::Analysis analysis;

  explicit Prepared(const std::string& name)
      : app(apps::BuildApp(name, apps::AppConfig{.scale = Scale()})),
        analysis(core::Analysis::Run(app.module, DefaultAnalysisOptions())) {}

  Prepared(const Prepared&) = delete;
  Prepared& operator=(const Prepared&) = delete;
};

inline Prepared Prepare(const std::string& name) { return Prepared(name); }

/// Drives a stratified planner to completion on the shared thread pool:
/// BeginRound / ExecutePlannedRuns / CommitRound until every stratum retires
/// (or the max_runs cap trips).
inline void RunPlanToCompletion(fi::CampaignPlanner& planner, fi::Injector& injector) {
  while (!planner.Done()) {
    const std::vector<fi::PlannedInjection> queue = planner.BeginRound();
    fi::ExecuteOptions eo;
    eo.num_threads = Jobs();
    planner.CommitRound(fi::ExecutePlannedRuns(injector, queue, eo).records);
  }
}

/// Smallest trial count t with WilsonHalfWidth95(rate * t, t) <= target.
/// The half-width is monotone decreasing in t at fixed rate, so doubling
/// followed by binary search finds the exact threshold.
inline std::uint64_t SmallestTrialsForHalfWidth(double rate, double target) {
  std::uint64_t lo = 1, hi = 1;
  while (WilsonHalfWidth95(rate * static_cast<double>(hi), static_cast<double>(hi)) > target) {
    lo = hi + 1;
    hi *= 2;
  }
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (WilsonHalfWidth95(rate * static_cast<double>(mid), static_cast<double>(mid)) <= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

/// Injections a *uniform* sampler would need to match the planner's
/// per-stratum precision. Uniform sampling lands in stratum h with
/// probability W_h (its bit-weight), so driving every stratum's Wilson
/// half-width to the planner's ci_target takes
///   n_u = max_h ceil(t_h / W_h)
/// where t_h is the smallest trial count that closes stratum h at its
/// observed SDC and crash rates. This is the apples-to-apples denominator
/// for the planner's injection savings: same precision contract, no planner.
inline std::uint64_t UniformEquivalentRuns(const fi::CampaignPlanner& planner) {
  const double target = planner.options().ci_target;
  std::uint64_t worst = 0;
  for (std::size_t h = 0; h < planner.strata().size(); ++h) {
    const fi::StratumState& s = planner.strata()[h];
    if (s.weight <= 0.0) continue;
    const std::uint64_t trials =
        std::max(SmallestTrialsForHalfWidth(planner.StratumSdc(h).rate, target),
                 SmallestTrialsForHalfWidth(planner.StratumCrash(h).rate, target));
    const double runs = std::ceil(static_cast<double>(trials) / s.weight);
    worst = std::max(worst, static_cast<std::uint64_t>(runs));
  }
  return worst;
}

inline fi::CampaignStats Campaign(const Prepared& p, int runs = 0) {
  fi::CampaignOptions options;
  options.num_runs = runs > 0 ? runs : FiRuns();
  options.seed = Seed();
  options.injector.jitter_pages = static_cast<std::uint32_t>(JitterPages());
  options.num_threads = Jobs();
  options.checkpoint_interval = CheckpointIntervalFor(p.analysis, Checkpoints());
  return fi::RunCampaign(p.app.module, p.analysis.graph(), p.analysis.golden(), options);
}

}  // namespace epvf::bench
