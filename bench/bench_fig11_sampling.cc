// Figure 11 + the section IV-E variance probe: ePVF extrapolated from the
// first 10% of output nodes vs the full analysis, and the normalized variance
// of 1% random subsamples that predicts whether sampling is trustworthy.
//
// Paper result: <1% average extrapolation error for regular applications;
// the variance probe is low for regular apps (lavaMD, particlefilter) and
// high where sampling fails (lud).
#include <iostream>

#include "bench/bench_common.h"
#include "epvf/sampling.h"

int main() {
  using namespace epvf;
  AsciiTable table({"Benchmark", "extrapolated ePVF (10%)", "full ePVF", "|error|",
                    "partial ACE nodes", "1% norm. variance"});
  table.SetTitle("Figure 11 — ACE-graph sampling (10% of output roots)");
  double err_sum = 0;
  int n = 0;
  for (const std::string& name : bench::TableIVApps()) {
    const bench::Prepared p = bench::Prepare(name);
    const core::SamplingEstimate est = core::EstimateBySampling(p.analysis, 0.10);
    const core::RepetitivenessProbe probe =
        core::ProbeRepetitiveness(p.analysis, 0.01, 8, bench::Seed());
    err_sum += est.AbsoluteError();
    ++n;
    table.AddRow({name, AsciiTable::Num(est.extrapolated_epvf), AsciiTable::Num(est.full_epvf),
                  AsciiTable::Num(est.AbsoluteError()), std::to_string(est.partial_ace_nodes),
                  AsciiTable::Num(probe.normalized_variance, 4)});
  }
  table.SetFootnote("paper: <1% average error for regular apps; high-variance apps are the "
                    "ones where sampling should not be trusted. ours avg |error|: " +
                    AsciiTable::Num(err_sum / n, 4));
  table.Print(std::cout);
  return 0;
}
