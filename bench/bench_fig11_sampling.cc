// Figure 11 + the section IV-E variance probe: ePVF extrapolated from the
// first 10% of output nodes vs the full analysis, and the normalized variance
// of 1% random subsamples that predicts whether sampling is trustworthy.
//
// Paper result: <1% average extrapolation error for regular applications;
// the variance probe is low for regular apps (lavaMD, particlefilter) and
// high where sampling fails (lud).
//
// The second table turns the sampling question around: instead of sampling
// the *analysis*, sample the *injection campaign*. It runs the stratified
// planner (fi::CampaignPlanner) to its CI target and compares the injections
// it spent against the uniform-sampling equivalent at the same per-stratum
// precision, then checks the stratified composite SDC/crash CIs against a
// dense uniform reference campaign (the ground-truth stand-in — exhaustive
// injection over every trace bit is infeasible even at scale 0). The bench
// exits nonzero if the planner saves less than 5x on any app or a composite
// CI fails to cover the reference, so CI can run it as an acceptance gate.
//
// Extra knobs (on top of bench_common.h's):
//   EPVF_CI_TARGET  planner CI half-width target      (default 0.05)
//   EPVF_REF_RUNS   uniform reference campaign runs   (default 16000)
#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "epvf/sampling.h"

namespace {

/// Planner-vs-uniform economics for one benchmark. Returns false when the
/// savings ratio is under 5x or a stratified CI misses the reference.
bool StratifiedRow(const std::string& name, double ci_target, int ref_runs,
                   epvf::AsciiTable& table) {
  using namespace epvf;
  const bench::Prepared p = bench::Prepare(name);
  fi::Injector injector(p.app.module, p.analysis.golden(), fi::InjectorOptions{});
  fi::StratifiedOptions plan;
  plan.ci_target = ci_target;
  fi::CampaignPlanner planner(p.analysis.graph(), p.analysis.ace(), p.analysis.crash_bits(),
                              injector, bench::Seed(), plan);
  bench::RunPlanToCompletion(planner, injector);

  const std::uint64_t n_strat = planner.TotalRuns();
  const std::uint64_t n_uniform = bench::UniformEquivalentRuns(planner);
  const double ratio =
      n_strat == 0 ? 0.0 : static_cast<double>(n_uniform) / static_cast<double>(n_strat);

  // Ground-truth stand-in: one dense uniform campaign over the same fault
  // space (deterministic layout so the reference shares the planner's
  // population). Coverage check: the two estimates of the same quantity must
  // agree within the sum of their 95% half-widths.
  fi::CampaignOptions ref;
  ref.num_runs = ref_runs;
  ref.seed = bench::Seed();
  ref.injector.jitter_pages = 0;
  ref.num_threads = bench::Jobs();
  ref.checkpoint_interval = 0;  // auto checkpoints: the reference is the slow half
  const fi::CampaignStats dense =
      fi::RunCampaign(p.app.module, p.analysis.graph(), p.analysis.golden(), ref);

  const fi::RateEstimate sdc = planner.SdcEstimate();
  const fi::RateEstimate crash = planner.CrashEstimate();
  const ProportionCI ref_sdc = dense.CI(fi::Outcome::kSdc);
  const ProportionCI ref_crash = dense.CrashCI();
  const bool sdc_covered =
      std::fabs(sdc.rate - ref_sdc.rate) <= sdc.half_width + ref_sdc.half_width;
  const bool crash_covered =
      std::fabs(crash.rate - ref_crash.rate) <= crash.half_width + ref_crash.half_width;
  const bool saves = ratio >= 5.0;

  table.AddRow({name, std::to_string(n_strat), std::to_string(planner.RoundsCommitted()),
                std::to_string(planner.strata().size()), std::to_string(n_uniform),
                AsciiTable::Num(ratio, 1) + "x",
                AsciiTable::Num(sdc.rate) + " +- " + AsciiTable::Num(sdc.half_width),
                AsciiTable::Num(ref_sdc.rate) + " +- " + AsciiTable::Num(ref_sdc.half_width),
                (sdc_covered && crash_covered) ? "yes" : "NO"});
  if (!saves) {
    std::cerr << "FAIL " << name << ": stratified saves only " << ratio
              << "x over uniform (need >= 5x)\n";
  }
  if (!sdc_covered || !crash_covered) {
    std::cerr << "FAIL " << name << ": stratified CI does not cover the uniform reference ("
              << (sdc_covered ? "crash" : "SDC") << ")\n";
  }
  return saves && sdc_covered && crash_covered;
}

}  // namespace

int main() {
  using namespace epvf;
  AsciiTable table({"Benchmark", "extrapolated ePVF (10%)", "full ePVF", "|error|",
                    "partial ACE nodes", "1% norm. variance"});
  table.SetTitle("Figure 11 — ACE-graph sampling (10% of output roots)");
  double err_sum = 0;
  int n = 0;
  for (const std::string& name : bench::TableIVApps()) {
    const bench::Prepared p = bench::Prepare(name);
    const core::SamplingEstimate est = core::EstimateBySampling(p.analysis, 0.10);
    const core::RepetitivenessProbe probe =
        core::ProbeRepetitiveness(p.analysis, 0.01, 8, bench::Seed());
    err_sum += est.AbsoluteError();
    ++n;
    table.AddRow({name, AsciiTable::Num(est.extrapolated_epvf), AsciiTable::Num(est.full_epvf),
                  AsciiTable::Num(est.AbsoluteError()), std::to_string(est.partial_ace_nodes),
                  AsciiTable::Num(probe.normalized_variance, 4)});
  }
  table.SetFootnote("paper: <1% average error for regular apps; high-variance apps are the "
                    "ones where sampling should not be trusted. ours avg |error|: " +
                    AsciiTable::Num(err_sum / n, 4));
  table.Print(std::cout);

  const double ci_target = bench::EnvDouble("EPVF_CI_TARGET", 0.05);
  const int ref_runs = bench::EnvInt("EPVF_REF_RUNS", 16000);
  AsciiTable strat({"Benchmark", "stratified runs", "rounds", "strata", "uniform-equiv",
                    "savings", "stratified SDC", "reference SDC", "CI covers ref"});
  strat.SetTitle("Stratified planner vs uniform sampling (CI target " +
                 AsciiTable::Num(ci_target) + ")");
  bool ok = true;
  for (const std::string& name : {std::string("mm"), std::string("lud")}) {
    ok = StratifiedRow(name, ci_target, ref_runs, strat) && ok;
  }
  strat.SetFootnote("uniform-equiv = injections uniform sampling needs for the same "
                    "per-stratum Wilson half-width (max_h ceil(t_h / W_h)); reference = " +
                    std::to_string(ref_runs) +
                    "-run uniform campaign. gates: savings >= 5x, composite SDC/crash CIs "
                    "cover the reference.");
  strat.Print(std::cout);
  return ok ? 0 : 1;
}
