// Incremental re-analysis throughput: after editing one kernel, replaying
// the dirty unit against the resident compositional state vs. re-running the
// whole-program pipeline.
//
// The compositional layer's value proposition is that an edit-analyze loop
// pays for the edit, not the program: one unit replays, its neighbours'
// summaries are reused, and the recomposed numbers are bit-identical to a
// from-scratch run. This bench measures that directly — whole-program wall
// time on the edited module, incremental wall time for the same answer,
// speedup, and an identity cross-check — and gates on the edit loop being
// >= 10x faster than the rebuild on lulesh (the largest app in the suite).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "epvf/compose.h"
#include "epvf/mutate.h"
#include "epvf/reexec.h"
#include "epvf/report.h"
#include "epvf/units.h"
#include "support/stopwatch.h"
#include "support/table.h"

namespace {

std::vector<std::uint32_t> AllUnits(const epvf::core::ProgramSlices& p) {
  std::vector<std::uint32_t> units(p.units.size());
  for (std::uint32_t u = 0; u < units.size(); ++u) units[u] = u;
  return units;
}

bool SameStats(const epvf::core::ReportStats& a, const epvf::core::ReportStats& b) {
  return a.dyn_instructions == b.dyn_instructions && a.num_nodes == b.num_nodes &&
         a.ace_bits == b.ace_bits && a.crash_bits == b.crash_bits &&
         a.total_bits == b.total_bits && a.mem_ace == b.mem_ace &&
         a.mem_crash == b.mem_crash && a.mem_total == b.mem_total;
}

}  // namespace

int main() {
  using namespace epvf;

  bench::ScopedObservability obs;
  bench::BenchJson json("incremental", /*default_to_repo_root=*/true);

  const int jobs = bench::Jobs();
  AsciiTable table({"Benchmark", "whole (ms)", "incr (ms)", "speedup", "units", "replayed",
                    "identical"});
  table.SetTitle("Incremental re-analysis after a single-kernel edit");

  bool gate_ok = true;
  for (const std::string& name :
       {std::string("lulesh"), std::string("hotspot"), std::string("nw")}) {
    const apps::App app = apps::BuildApp(name, apps::AppConfig{.scale = bench::Scale()});
    const core::AnalysisOptions options = bench::DefaultAnalysisOptions();

    // The resident state an editor session would already hold.
    const core::Analysis base = core::Analysis::Run(app.module, options);
    core::ProgramSlices p =
        core::BuildProgramSlices(base, core::PartitionModule(app.module));
    core::RunUnitWalks(p, app.module, AllUnits(p), jobs);

    // One boundary-preserving edit to one kernel (guaranteed fast path).
    ir::Module mutated = app.module;
    auto m = core::MutateAnywhere(mutated, core::PartitionModule(app.module),
                                  core::MutationKind::kRenameRegister, 1);
    if (!m.has_value()) {
      m = core::MutateAnywhere(mutated, core::PartitionModule(app.module),
                               core::MutationKind::kSwapIndependent, 1);
    }
    if (!m.has_value()) {
      std::fprintf(stderr, "bench_incremental: no mutation site in %s\n", name.c_str());
      return 1;
    }

    Stopwatch incr_watch;
    const core::IncrementalOutcome outcome = core::ReanalyzeIncremental(p, mutated, jobs);
    const double incr_ms = incr_watch.ElapsedMillis();
    if (!outcome.used_fast_path) {
      std::fprintf(stderr, "bench_incremental: %s fell back (%s) on a boundary-preserving edit\n",
                   name.c_str(), std::string(core::FallbackReasonName(outcome.fallback)).c_str());
      return 1;
    }

    // What re-analyzing from scratch pays for the same edited module: the
    // golden run plus rebuilding every unit's slice, summaries, and walks —
    // the state ReanalyzeIncremental leaves resident after its fast path.
    Stopwatch whole_watch;
    const core::Analysis fresh = core::Analysis::Run(mutated, options);
    core::ProgramSlices scratch =
        core::BuildProgramSlices(fresh, core::PartitionModule(mutated));
    core::RunUnitWalks(scratch, mutated, AllUnits(scratch), jobs);
    const double whole_ms = whole_watch.ElapsedMillis();

    const bool identical = SameStats(core::StatsFromAnalysis(fresh), core::ComposeProgram(p));
    const double speedup = incr_ms > 0 ? whole_ms / incr_ms : 0;
    const bool app_ok = identical && (name != "lulesh" || speedup >= 10.0);
    gate_ok = gate_ok && app_ok;

    table.AddRow({name + (app_ok ? "" : " [FAIL]"), AsciiTable::Num(whole_ms, 1),
                  AsciiTable::Num(incr_ms, 2), AsciiTable::Num(speedup, 1) + "x",
                  std::to_string(p.units.size()), std::to_string(outcome.units_replayed),
                  identical ? "yes" : "NO"});
    json.Add(name, "whole_ms", whole_ms);
    json.Add(name, "incremental_ms", incr_ms);
    json.Add(name, "speedup", speedup);
    json.Add(name, "units_total", static_cast<double>(p.units.size()));
    json.Add(name, "units_replayed", static_cast<double>(outcome.units_replayed));
    json.Add(name, "identical", identical ? 1.0 : 0.0);
  }

  table.SetFootnote("whole = golden run + per-unit slices/summaries/walks from scratch on the "
                    "edited module; incr = ReanalyzeIncremental against the resident per-unit "
                    "state, same numbers bit for bit; gate: lulesh incr >= 10x faster");
  table.Print(std::cout);

  if (!gate_ok) {
    std::fprintf(stderr, "bench_incremental: the >= 10x lulesh speedup gate (or the identity "
                         "cross-check) FAILED\n");
    return 1;
  }
  return 0;
}
