// Ablations on the model's design choices:
//   1. control roots — the paper treats branch conditions as SDC-prone
//      (section VI-B); dropping them shrinks the ACE graph and PVF;
//   2. layout jitter — the paper's environment nondeterminism; recall decays
//      gracefully as the injected runs drift from the profiled layout.
#include <iostream>

#include "bench/bench_common.h"
#include "ddg/ace.h"
#include "fi/targeted.h"

int main() {
  using namespace epvf;

  {
    AsciiTable table({"Benchmark", "PVF (outputs only)", "PVF (+control roots)",
                      "ACE nodes (outputs)", "ACE nodes (+control)"});
    table.SetTitle("Ablation 1 — branch conditions as ACE roots");
    for (const std::string& name : {std::string("bfs"), std::string("particlefilter"),
                                    std::string("mm")}) {
      const bench::Prepared p = bench::Prepare(name);
      const ddg::AceResult outputs_only =
          ddg::ComputeAceFromRoots(p.analysis.graph(), p.analysis.graph().output_roots());
      const ddg::AceResult full = p.analysis.ace();
      table.AddRow({name, AsciiTable::Num(outputs_only.Pvf()), AsciiTable::Num(full.Pvf()),
                    std::to_string(outputs_only.ace_node_count),
                    std::to_string(full.ace_node_count)});
    }
    table.SetFootnote("control-flow-heavy kernels (bfs) lose most of their ACE graph without "
                      "control roots — and with it the crash model's coverage");
    table.Print(std::cout);
    std::cout << '\n';
  }

  {
    AsciiTable table({"jitter (pages)", "recall", "precision"});
    table.SetTitle("Ablation 2 — accuracy vs environment nondeterminism (benchmark: mm)");
    const bench::Prepared p = bench::Prepare("mm");
    for (const int pages : {0, 2, 8, 32, 128}) {
      fi::CampaignOptions campaign;
      campaign.num_runs = bench::FiRuns();
      campaign.seed = bench::Seed();
      campaign.injector.jitter_pages = static_cast<std::uint32_t>(pages);
      const fi::CampaignStats stats =
          fi::RunCampaign(p.app.module, p.analysis.graph(), p.analysis.golden(), campaign);
      const fi::RecallStats recall = fi::MeasureRecall(stats, p.analysis.crash_bits());

      fi::InjectorOptions injector_options;
      injector_options.jitter_pages = static_cast<std::uint32_t>(pages);
      fi::Injector injector(p.app.module, p.analysis.golden(), injector_options);
      fi::PrecisionOptions precision_options;
      precision_options.num_samples = bench::FiRuns() / 2;
      const fi::PrecisionStats precision =
          fi::MeasurePrecision(injector, p.analysis.graph(), p.analysis.crash_bits(),
                               precision_options);
      table.AddRow({std::to_string(pages), AsciiTable::Pct(recall.Recall()),
                    AsciiTable::Pct(precision.Precision())});
    }
    table.SetFootnote("the paper attributes its 89%/92% to exactly this effect: segment "
                      "boundaries shifted between the profiled and injected runs");
    table.Print(std::cout);
  }
  return 0;
}
