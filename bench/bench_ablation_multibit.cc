// Ablation: single-bit vs multi-bit (burst) faults.
//
// The paper sticks to single-bit flips, citing work showing that single- and
// multi-bit flips in program state differ only marginally in SDC impact
// (section II-E). This bench runs the same campaign with burst lengths
// 1/2/4 and compares outcome distributions.
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace epvf;
  AsciiTable table({"Benchmark", "burst", "crash", "sdc", "benign", "sdc delta vs 1-bit"});
  table.SetTitle("Ablation — single-bit vs multi-bit (adjacent-burst) faults");
  for (const std::string& name : {std::string("mm"), std::string("nw"), std::string("srad")}) {
    const bench::Prepared p = bench::Prepare(name);
    double single_bit_sdc = 0;
    for (const int burst : {1, 2, 4}) {
      fi::CampaignOptions options;
      options.num_runs = bench::FiRuns();
      options.seed = bench::Seed();
      options.injector.jitter_pages = static_cast<std::uint32_t>(bench::JitterPages());
      options.injector.burst_length = static_cast<std::uint8_t>(burst);
      const fi::CampaignStats stats =
          fi::RunCampaign(p.app.module, p.analysis.graph(), p.analysis.golden(), options);
      const double sdc = stats.Rate(fi::Outcome::kSdc);
      if (burst == 1) single_bit_sdc = sdc;
      table.AddRow({name, std::to_string(burst), AsciiTable::Pct(stats.CrashRate()),
                    AsciiTable::Pct(sdc), AsciiTable::Pct(stats.Rate(fi::Outcome::kBenign)),
                    AsciiTable::Pct(sdc - single_bit_sdc)});
    }
  }
  table.SetFootnote("paper section II-E: the single/multi-bit difference in SDC impact is "
                    "marginal — the rationale for the single-bit model");
  table.Print(std::cout);
  return 0;
}
