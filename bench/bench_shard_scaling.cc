// Multi-process shard scaling of `epvf campaign`.
//
// Measures the wall-clock of the same fault-injection campaign run through
// the real CLI binary at 1, 2 and 4 worker processes (--jobs 1 each, so the
// scaling measured is the process decomposition, not the in-process thread
// pool), and verifies the headline invariant while at it: the merged
// campaign artifact must be byte-identical at every shard count. The
// acceptance bar from the sharding work is >= 2x at 4 shards on lulesh.
//
// Knobs: EPVF_SCALE, EPVF_FI_RUNS, EPVF_SEED, EPVF_JITTER_PAGES (via the
// common env plumbing) and EPVF_SHARD_BENCH_APP (default lulesh). The epvf
// binary path is baked in at build time (EPVF_CLI_PATH).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "support/stopwatch.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace {

namespace fs = std::filesystem;

using epvf::AsciiTable;
using epvf::Stopwatch;

std::string BenchApp() {
  const char* app = std::getenv("EPVF_SHARD_BENCH_APP");
  return app == nullptr || app[0] == '\0' ? "lulesh" : app;
}

/// Runs a CLI invocation with stdout/stderr discarded; exits the bench on
/// failure (a broken campaign makes every number below meaningless).
void RunOrDie(const std::string& args) {
  const std::string command = std::string(EPVF_CLI_PATH) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(command.c_str());
  if (status != 0) {
    std::fprintf(stderr, "bench_shard_scaling: `epvf %s` failed (status %d)\n", args.c_str(),
                 status);
    std::exit(1);
  }
}

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// The one merged campaign artifact inside `dir` (shard slices are removed
/// by the merge, so exactly one *.campaign.epvfa remains).
std::string MergedArtifactBytes(const std::string& dir) {
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".campaign.epvfa") != std::string::npos &&
        name.find("-shard-") == std::string::npos) {
      return ReadFileOrEmpty(entry.path().string());
    }
  }
  return {};
}

}  // namespace

int main() {
  epvf::bench::ScopedObservability observability;
  epvf::bench::BenchJson json("shard_scaling");

  const std::string app = BenchApp();
  const int runs = epvf::bench::FiRuns();
  const std::string common_flags =
      app + " --scale " + std::to_string(epvf::bench::Scale()) + " --runs " +
      std::to_string(runs) + " --seed " + std::to_string(epvf::bench::Seed()) + " --jitter " +
      std::to_string(epvf::bench::JitterPages()) + " --jobs 1";

  const unsigned cores = epvf::ThreadPool::HardwareJobs();
  std::printf(
      "shard scaling: %s, %d injections, worker --jobs 1 (process scaling only), "
      "%u hardware core(s)\n",
      app.c_str(), runs, cores);
  if (cores < 4) {
    std::printf("note: speedup is bounded by min(shards, cores) — on this host at most %ux\n",
                cores);
  }
  json.Add("host", "cores", static_cast<double>(cores));

  AsciiTable table({"shards", "seconds", "speedup", "identical"});
  table.SetTitle("epvf campaign --shards N (merged artifact diffed against --shards 1)");

  double base_seconds = 0;
  std::string base_artifact;
  for (const int shards : {1, 2, 4}) {
    // A fresh cache directory per shard count: nothing warm may leak between
    // configurations except the untimed analysis artifact below.
    std::string dir_template =
        (fs::temp_directory_path() / "epvf-bench-shard-XXXXXX").string();
    char* dir = mkdtemp(dir_template.data());
    if (dir == nullptr) {
      std::fprintf(stderr, "bench_shard_scaling: mkdtemp failed\n");
      return 1;
    }
    // Warm the analysis untimed — the bench measures campaign execution, and
    // a merged-campaign cache hit is impossible (the campaign entry does not
    // exist yet in a fresh directory).
    RunOrDie("analyze " + app + " --scale " + std::to_string(epvf::bench::Scale()) +
             " --cache-dir " + dir);

    Stopwatch watch;
    RunOrDie("campaign " + common_flags + " --shards " + std::to_string(shards) +
             " --cache-dir " + dir);
    const double seconds = watch.ElapsedSeconds();

    const std::string artifact = MergedArtifactBytes(dir);
    bool identical = !artifact.empty();
    if (shards == 1) {
      base_seconds = seconds;
      base_artifact = artifact;
    } else {
      identical = identical && artifact == base_artifact;
    }
    if (!identical) {
      std::fprintf(stderr,
                   "bench_shard_scaling: merged artifact at %d shards diverged from the "
                   "single-process artifact\n",
                   shards);
      return 1;
    }
    const double speedup = seconds > 0 ? base_seconds / seconds : 0;

    char seconds_text[32];
    std::snprintf(seconds_text, sizeof(seconds_text), "%.2f", seconds);
    char speedup_text[32];
    std::snprintf(speedup_text, sizeof(speedup_text), "%.2fx", speedup);
    table.AddRow({std::to_string(shards), seconds_text, speedup_text, "yes"});

    json.Add(std::to_string(shards), "seconds", seconds);
    json.Add(std::to_string(shards), "speedup", speedup);

    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  table.Print(std::cout);
  return 0;
}
