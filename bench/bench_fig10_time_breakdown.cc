// Figure 10: analysis-time breakdown — DDG construction vs the crash and
// propagation models.
//
// Paper result: the crash/propagation stage dominates. Our tuned C++
// implementation (the section VI-A engineering ask) flips that: the one-pass
// DAG propagation costs less than trace+graph construction, which the
// footnote calls out.
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace epvf;
  const bench::ScopedObservability observability;
  AsciiTable table({"Benchmark", "trace+graph (ms)", "ACE (ms)", "crash+prop (ms)",
                    "total (ms)", "jobs"});
  table.SetTitle("Figure 10 — ePVF analysis time breakdown");
  bench::BenchJson json("fig10_time_breakdown");
  for (const std::string& name : bench::TableIVApps()) {
    const bench::Prepared p = bench::Prepare(name);
    const core::AnalysisTimings& t = p.analysis.timings();
    table.AddRow({name, AsciiTable::Num(t.trace_and_graph_seconds * 1e3, 1),
                  AsciiTable::Num(t.ace_seconds * 1e3, 1),
                  AsciiTable::Num(t.crash_model_seconds * 1e3, 1),
                  AsciiTable::Num(t.TotalSeconds() * 1e3, 1),
                  std::to_string(t.crash_threads)});
    json.Add(name, "trace_graph_ms", t.trace_and_graph_seconds * 1e3);
    json.Add(name, "ace_ms", t.ace_seconds * 1e3);
    json.Add(name, "crash_prop_ms", t.crash_model_seconds * 1e3);
    json.Add(name, "total_ms", t.TotalSeconds() * 1e3);
    json.Add(name, "jobs", t.crash_threads);
  }
  table.SetFootnote("the paper's Python prototype spent most time in the crash/propagation "
                    "models (hours); the single-pass DAG propagation here removes that "
                    "bottleneck — the engineering headroom section VI-A predicted");
  table.Print(std::cout);
  return 0;
}
