// Table II: relative crash-type frequency per benchmark.
//
// Paper result: segmentation faults dominate (99% average, 96% minimum),
// which is what justifies modeling only SIGSEGV in the crash model.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace epvf;
  AsciiTable table({"Benchmark", "SF", "A", "MMA", "AE", "crashes"});
  table.SetTitle("Table II — relative crash frequency (share of all crashes)");

  double min_sf = 1.0;
  double sum_sf = 0.0;
  int counted = 0;
  for (const std::string& name : bench::TableIIApps()) {
    const bench::Prepared p = bench::Prepare(name);
    const fi::CampaignStats stats = bench::Campaign(p);
    if (stats.CrashCount() == 0) continue;
    const double sf = stats.CrashShare(fi::Outcome::kCrashSegFault);
    min_sf = std::min(min_sf, sf);
    sum_sf += sf;
    ++counted;
    table.AddRow({name, AsciiTable::Pct(sf), AsciiTable::Pct(stats.CrashShare(fi::Outcome::kCrashAbort)),
                  AsciiTable::Pct(stats.CrashShare(fi::Outcome::kCrashMisaligned)),
                  AsciiTable::Pct(stats.CrashShare(fi::Outcome::kCrashArithmetic)),
                  std::to_string(stats.CrashCount())});
  }
  table.SetFootnote("paper: SF averages 99% with a 96% minimum; ours: avg " +
                    AsciiTable::Pct(counted ? sum_sf / counted : 0.0) + ", min " +
                    AsciiTable::Pct(min_sf));
  table.Print(std::cout);
  return 0;
}
