// Figure 12: CDFs of per-instruction PVF and ePVF for nw and lud.
//
// Paper result: per-instruction PVF has a sharp spike at 1 (no discriminative
// power for choosing what to protect), while ePVF values spread across the
// whole range — the property the section V heuristic relies on.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"

namespace {

void PrintCdf(const std::string& name, const epvf::bench::Prepared& p) {
  using namespace epvf;
  std::vector<double> pvf;
  std::vector<double> epvf_values;
  for (const core::InstrMetrics& m : p.analysis.PerInstructionMetrics()) {
    if (m.total_bits == 0) continue;
    pvf.push_back(m.Pvf());
    epvf_values.push_back(m.Epvf());
  }
  std::sort(pvf.begin(), pvf.end());
  std::sort(epvf_values.begin(), epvf_values.end());

  AsciiTable table({"value x", "CDF PVF<=x", "CDF ePVF<=x"});
  table.SetTitle("Figure 12 — per-instruction CDF for " + name + " (" +
                 std::to_string(pvf.size()) + " static instructions)");
  auto cdf = [](const std::vector<double>& xs, double x) {
    const auto it = std::upper_bound(xs.begin(), xs.end(), x);
    return static_cast<double>(it - xs.begin()) / static_cast<double>(xs.size());
  };
  for (const double x : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99}) {
    table.AddRow({AsciiTable::Num(x, 2), AsciiTable::Num(cdf(pvf, x)),
                  AsciiTable::Num(cdf(epvf_values, x))});
  }
  table.SetFootnote("paper: PVF spikes at 1 (CDF flat then jumps), ePVF spreads evenly");
  table.Print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  for (const std::string name : {"nw", "lud"}) {
    const epvf::bench::Prepared p = epvf::bench::Prepare(name);
    PrintCdf(name, p);
  }
  return 0;
}
