// Figure 7: precision of the crash model — targeted injections at bits the
// model predicts as crash-causing, measuring how many actually crash.
//
// Paper result: 92% average (86-98%); the residue comes from nondeterministic
// memory allocation plus cross-segment landings and control-flow divergence.
#include <iostream>

#include "bench/bench_common.h"
#include "fi/targeted.h"

int main() {
  using namespace epvf;
  AsciiTable table({"Benchmark", "precision", "targeted injections", "crashed"});
  table.SetTitle("Figure 7 — crash-model precision (targeted experiment)");
  double sum = 0;
  int n = 0;
  for (const std::string& name : bench::TableIVApps()) {
    const bench::Prepared p = bench::Prepare(name);
    fi::InjectorOptions injector_options;
    injector_options.jitter_pages = static_cast<std::uint32_t>(bench::JitterPages());
    fi::Injector injector(p.app.module, p.analysis.golden(), injector_options);
    fi::PrecisionOptions options;
    options.num_samples = bench::FiRuns() / 2;
    options.seed = bench::Seed();
    const fi::PrecisionStats stats =
        fi::MeasurePrecision(injector, p.analysis.graph(), p.analysis.crash_bits(), options);
    sum += stats.Precision();
    ++n;
    const auto ci = stats.CI();
    table.AddRow({name, AsciiTable::PctCI(ci.rate, ci.half_width),
                  std::to_string(stats.injections), std::to_string(stats.crashed)});
  }
  table.SetFootnote("paper: 92% average precision (86-98%); ours: " + AsciiTable::Pct(sum / n));
  table.Print(std::cout);
  return 0;
}
