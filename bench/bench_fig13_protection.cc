// Figure 13: selective duplication under a fixed performance-overhead bound —
// unprotected vs hot-path-ranked vs ePVF-ranked duplication.
//
// Paper result (24% overhead bound, five SDC-prone benchmarks): ePVF-informed
// protection cuts the SDC rate from 20% to 7% (geometric mean) vs ~10% for
// hot-path — about 30% better — with hotspot as the one exception (its
// control-flow structures are marked sensitive by ePVF but rarely cause
// SDCs).
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "protect/evaluation.h"
#include "support/statistics.h"

int main() {
  using namespace epvf;
  const double budget = bench::EnvInt("EPVF_OVERHEAD_PCT", 24) / 100.0;
  AsciiTable table({"Benchmark", "no protection", "random", "hot-path", "ePVF-informed",
                    "hot overhead", "ePVF overhead"});
  table.SetTitle("Figure 13 — SDC rate under selective duplication (budget " +
                 AsciiTable::Pct(budget, 0) + ")");
  std::vector<double> none_rates, random_rates, hot_rates, epvf_rates;
  for (const std::string& name : bench::CaseStudyApps()) {
    const bench::Prepared p = bench::Prepare(name);
    const auto metrics = p.analysis.PerInstructionMetrics();
    const fi::CampaignStats baseline = bench::Campaign(p);

    protect::PlanOptions options;
    options.overhead_budget = budget;
    const protect::ProtectionPlan hot_plan =
        protect::BuildDuplicationPlan(p.analysis, protect::RankByHotPath(metrics), options);
    const protect::ProtectionPlan epvf_plan =
        protect::BuildDuplicationPlan(p.analysis, protect::RankByEpvf(metrics), options);
    const protect::ProtectionPlan random_plan = protect::BuildDuplicationPlan(
        p.analysis, protect::RankRandomly(metrics, bench::Seed()), options);
    const double none = baseline.Rate(fi::Outcome::kSdc);
    const double random_rate = protect::EvaluateProtection(baseline, random_plan).SdcRate();
    const double hot = protect::EvaluateProtection(baseline, hot_plan).SdcRate();
    const double epvf_rate = protect::EvaluateProtection(baseline, epvf_plan).SdcRate();
    none_rates.push_back(none);
    random_rates.push_back(random_rate);
    hot_rates.push_back(hot);
    epvf_rates.push_back(epvf_rate);
    table.AddRow({name, AsciiTable::Pct(none), AsciiTable::Pct(random_rate),
                  AsciiTable::Pct(hot), AsciiTable::Pct(epvf_rate),
                  AsciiTable::Pct(hot_plan.overhead), AsciiTable::Pct(epvf_plan.overhead)});
  }
  table.AddRow({"geomean", AsciiTable::Pct(GeometricMean(none_rates)),
                AsciiTable::Pct(GeometricMean(random_rates)),
                AsciiTable::Pct(GeometricMean(hot_rates)),
                AsciiTable::Pct(GeometricMean(epvf_rates)), "", ""});
  table.SetFootnote(
      "paper (24% bound): 20% -> 10% (hot-path) vs 20% -> 7% (ePVF), one exception "
      "benchmark; override the bound with EPVF_OVERHEAD_PCT. The random baseline is "
      "competitive under THIS modeled evaluation because it spreads the budget over many "
      "cheap shadow-copied leaves that the model credits with full coverage; "
      "bench_ablation_protection shows the real-transform ground truth");
  table.Print(std::cout);
  return 0;
}
