// Section VIII future work: per-structure vulnerability (selective-ECC
// guidance) and the checkpoint advisor driven by the predicted crash rate.
#include <iostream>

#include "bench/bench_common.h"
#include "epvf/report.h"

int main() {
  using namespace epvf;

  bench::BenchJson json("structure_report");

  AsciiTable table({"Benchmark", "class", "total bits", "ACE", "crash", "class ePVF",
                    "protect first?"});
  table.SetTitle("Structure vulnerability (section VIII: selective-ECC guidance)");
  AsciiTable ddg_stats({"Benchmark", "DDG nodes", "dropped load preds"});
  ddg_stats.SetTitle("DDG construction diagnostics");
  for (const std::string& name : {std::string("mm"), std::string("nw"), std::string("lavaMD")}) {
    const bench::Prepared p = bench::Prepare(name);
    const auto report = core::StructureReport(p.analysis);
    const core::RegisterClass first = core::MostSdcProneStructure(p.analysis);
    for (const core::StructureVulnerability& entry : report) {
      if (entry.total_bits == 0) continue;
      table.AddRow({name, std::string(core::RegisterClassName(entry.cls)),
                    std::to_string(entry.total_bits), std::to_string(entry.ace_bits),
                    std::to_string(entry.crash_bits), AsciiTable::Num(entry.Epvf()),
                    entry.cls == first ? "<== ECC here" : ""});
    }
    ddg_stats.AddRow({name, std::to_string(p.analysis.graph().NumNodes()),
                      std::to_string(p.analysis.graph().dropped_load_preds())});
    json.Add(name, "dropped_load_preds",
             static_cast<double>(p.analysis.graph().dropped_load_preds()));
  }
  table.SetFootnote("pointer registers carry the crash mass; data registers carry the "
                    "SDC-prone mass — the split ePVF makes visible");
  table.Print(std::cout);
  std::cout << '\n';

  ddg_stats.SetFootnote("dropped load preds: distinct memory-version predecessors a load "
                        "could not record (8-slot pred cap) — nonzero means those loads "
                        "under-report their slices; previously dropped silently");
  ddg_stats.Print(std::cout);
  std::cout << '\n';

  AsciiTable ckpt({"Benchmark", "P(crash|fault)", "MTBC (h)", "optimal interval (min)"});
  ckpt.SetTitle("Checkpoint advisor (fault rate 1e-6/s into live state, checkpoint cost 30 s)");
  for (const std::string& name : bench::TableIVApps()) {
    const bench::Prepared p = bench::Prepare(name);
    const core::CheckpointAdvice advice =
        core::AdviseCheckpointInterval(p.analysis, 1e-6, 30.0);
    ckpt.AddRow({name, AsciiTable::Num(advice.crash_probability_per_fault),
                 AsciiTable::Num(advice.mean_time_between_crashes_s / 3600.0, 1),
                 AsciiTable::Num(advice.optimal_interval_s / 60.0, 1)});
  }
  ckpt.SetFootnote("Young's first-order optimum from the model-predicted crash rate — the "
                   "checkpointing use the paper's section VIII proposes");
  ckpt.Print(std::cout);
  return 0;
}
