// Figure 8: model-estimated crash rate vs. fault-injection crash rate.
//
// Paper result: the estimate sits within (or close to) the FI 95% confidence
// interval for eight of ten benchmarks, off for lavaMD and lulesh because the
// ACE graph covers only 70-80% of their DDGs.
#include <cmath>
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace epvf;
  AsciiTable table({"Benchmark", "model estimate", "FI crash rate", "|delta|", "within CI?"});
  table.SetTitle("Figure 8 — crash-rate estimate vs fault injection");
  for (const std::string& name : bench::TableIVApps()) {
    const bench::Prepared p = bench::Prepare(name);
    const fi::CampaignStats stats = bench::Campaign(p);
    const double estimate = p.analysis.CrashRateEstimate();
    const auto measured = stats.CrashCI();
    const double delta = std::fabs(estimate - measured.rate);
    table.AddRow({name, AsciiTable::Pct(estimate),
                  AsciiTable::PctCI(measured.rate, measured.half_width),
                  AsciiTable::Pct(delta),
                  delta <= measured.half_width        ? "yes"
                  : delta <= 2.0 * measured.half_width ? "close"
                                                       : "no"});
  }
  table.SetFootnote("paper: within/close to CI except lavaMD and lulesh (ACE-coverage gap)");
  table.Print(std::cout);
  return 0;
}
