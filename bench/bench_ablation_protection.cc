// Ablation: the section-V protection evaluation, modeled vs real.
//
// The planner models duplication on the golden DDG and evaluation.h
// reclassifies campaign records; ApplyDuplication instead rewrites the IR and
// the campaign injects into the *transformed* program. This bench runs both
// for the ePVF-informed plan and compares SDC rates, detection rates and the
// modeled-vs-measured overhead — validating that the cheap model tracks the
// ground truth.
#include <iostream>

#include "bench/bench_common.h"
#include "protect/evaluation.h"
#include "protect/transform.h"
#include "vm/interpreter.h"

int main() {
  using namespace epvf;
  const double budget = bench::EnvInt("EPVF_OVERHEAD_PCT", 24) / 100.0;
  AsciiTable table({"Benchmark", "SDC none", "SDC modeled", "SDC real", "detected real",
                    "overhead modeled", "overhead real"});
  table.SetTitle("Ablation — modeled protection vs real IR duplication (ePVF plan, budget " +
                 AsciiTable::Pct(budget, 0) + ")");
  for (const std::string& name : {std::string("nw"), std::string("lud"), std::string("pathfinder")}) {
    const bench::Prepared p = bench::Prepare(name);
    const auto metrics = p.analysis.PerInstructionMetrics();
    const fi::CampaignStats baseline = bench::Campaign(p);

    protect::PlanOptions options;
    options.overhead_budget = budget;
    const protect::ProtectionPlan plan =
        protect::BuildDuplicationPlan(p.analysis, protect::RankByEpvf(metrics), options);
    const protect::ProtectedRates modeled = protect::EvaluateProtection(baseline, plan);

    // Real transform: rewrite, re-analyze, re-inject.
    const protect::TransformResult transformed =
        protect::ApplyDuplication(p.app.module, plan.chosen);
    const core::Analysis real_analysis = core::Analysis::Run(transformed.module);
    fi::CampaignOptions campaign;
    campaign.num_runs = bench::FiRuns();
    campaign.seed = bench::Seed();
    campaign.injector.jitter_pages = static_cast<std::uint32_t>(bench::JitterPages());
    const fi::CampaignStats real = fi::RunCampaign(
        transformed.module, real_analysis.graph(), real_analysis.golden(), campaign);

    const double real_overhead =
        static_cast<double>(real_analysis.golden().instructions_executed) /
            static_cast<double>(p.analysis.golden().instructions_executed) -
        1.0;
    table.AddRow({name, AsciiTable::Pct(baseline.Rate(fi::Outcome::kSdc)),
                  AsciiTable::Pct(modeled.SdcRate()),
                  AsciiTable::Pct(real.Rate(fi::Outcome::kSdc)),
                  AsciiTable::Pct(real.Rate(fi::Outcome::kDetected)),
                  AsciiTable::Pct(plan.overhead), AsciiTable::Pct(real_overhead)});
  }
  table.SetFootnote(
      "the modeled column reproduces the paper's idealized evaluation (any fault in a "
      "duplicated slice is caught); the real campaign exposes duplication's classic "
      "window of vulnerability — a flip at a value's FINAL use (e.g. the store operand "
      "itself) escapes every earlier check — plus sampling over a larger site population "
      "that now includes the redundant stream (whose faults are detected or benign)");
  table.Print(std::cout);
  return 0;
}
