// Table IV: the benchmark suite — domain, the original C LOC the paper
// reports, and our kernels' measured dynamic footprint at the current scale.
#include <iostream>

#include "bench/bench_common.h"
#include "vm/interpreter.h"

int main() {
  using namespace epvf;
  AsciiTable table({"Benchmark", "Domain", "paper LOC", "dyn IR instructions", "outputs"});
  table.SetTitle("Table IV — benchmarks (paper metadata + our kernel footprint)");
  for (const std::string& name : bench::TableIVApps()) {
    apps::App app = apps::BuildApp(name, apps::AppConfig{.scale = bench::Scale()});
    vm::Interpreter interp(app.module, {});
    const vm::RunResult r = interp.Run();
    table.AddRow({app.name, app.domain, std::to_string(app.paper_loc),
                  std::to_string(r.instructions_executed), std::to_string(r.output.size())});
  }
  table.SetFootnote("kernels are builder-authored IR reproductions of the Rodinia/LULESH "
                    "access patterns (see DESIGN.md substitutions)");
  table.Print(std::cout);
  return 0;
}
