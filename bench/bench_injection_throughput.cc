// Campaign throughput with the checkpoint/replay fast path.
//
// Every injected run is bit-identical to the golden run up to its injection
// site, so a campaign that snapshots the golden run and executes only the
// suffix of each injection skips (on average) half the trace per run. This
// bench measures that: runs/sec and speedup vs. from-scratch injection at
// 0/4/16/64 checkpoints on the longer-trace apps, with the outcome counts
// cross-checked for bit-identity at every setting.
#include <iostream>

#include "bench/bench_common.h"
#include "support/stopwatch.h"

int main() {
  using namespace epvf;

  const bench::ScopedObservability observability;
  bench::BenchJson json("injection_throughput");
  const int runs = bench::FiRuns();
  const int checkpoint_counts[] = {0, 4, 16, 64};

  AsciiTable table({"Benchmark", "trace", "ckpts", "runs/s", "speedup", "prefix skipped",
                    "identical"});
  table.SetTitle("Injection throughput: suffix replay vs. from-scratch (" +
                 std::to_string(runs) + " runs/campaign)");

  bool all_identical = true;
  for (const std::string& name :
       {std::string("lulesh"), std::string("lavaMD"), std::string("srad")}) {
    const bench::Prepared p = bench::Prepare(name);
    double scratch_runs_per_sec = 0;
    fi::CampaignStats baseline;
    for (const int n : checkpoint_counts) {
      fi::CampaignOptions options;
      options.num_runs = runs;
      options.seed = bench::Seed();
      // The fast path only serves jitter-free runs; keep the comparison pure.
      options.injector.jitter_pages = 0;
      options.num_threads = bench::Jobs();
      options.checkpoint_interval = bench::CheckpointIntervalFor(p.analysis, n);
      Stopwatch watch;
      const fi::CampaignStats stats =
          fi::RunCampaign(p.app.module, p.analysis.graph(), p.analysis.golden(), options);
      const double seconds = watch.ElapsedSeconds();
      const double runs_per_sec = seconds > 0 ? runs / seconds : 0;
      if (n == 0) {
        scratch_runs_per_sec = runs_per_sec;
        baseline = stats;
      }
      bool identical = stats.records.size() == baseline.records.size() &&
                       stats.counts == baseline.counts;
      for (std::size_t i = 0; identical && i < stats.records.size(); ++i) {
        identical = stats.records[i].outcome == baseline.records[i].outcome &&
                    stats.records[i].site.dyn_index == baseline.records[i].site.dyn_index &&
                    stats.records[i].bit == baseline.records[i].bit;
      }
      all_identical = all_identical && identical;
      const double speedup = scratch_runs_per_sec > 0 ? runs_per_sec / scratch_runs_per_sec : 0;
      const double total_prefix = static_cast<double>(p.analysis.TraceLength()) *
                                  static_cast<double>(runs);
      const double skipped_share =
          total_prefix > 0 ? static_cast<double>(stats.perf.skipped_instructions) / total_prefix
                           : 0;

      table.AddRow({name, std::to_string(p.analysis.TraceLength()), std::to_string(n),
                    AsciiTable::Num(runs_per_sec, 1), AsciiTable::Num(speedup, 2) + "x",
                    AsciiTable::Num(skipped_share * 100, 1) + "%",
                    identical ? "yes" : "NO"});

      const std::string row = name + "/ckpt" + std::to_string(n);
      json.Add(row, "runs_per_sec", runs_per_sec);
      json.Add(row, "speedup_vs_scratch", speedup);
      json.Add(row, "checkpoints", static_cast<double>(stats.perf.checkpoints));
      json.Add(row, "checkpointed_runs", static_cast<double>(stats.perf.checkpointed_runs));
      json.Add(row, "skipped_instructions",
               static_cast<double>(stats.perf.skipped_instructions));
      json.Add(row, "outcomes_identical", identical ? 1.0 : 0.0);
    }
  }
  table.SetFootnote("speedup vs. the 0-checkpoint campaign of the same app; 'identical' "
                    "checks the outcome distribution matches from-scratch injection exactly");
  table.Print(std::cout);
  return all_identical ? 0 : 1;
}
