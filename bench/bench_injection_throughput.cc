// Campaign throughput across the execution tiers and the checkpoint/replay
// fast path.
//
// Two orthogonal speedups compose here. (1) Every injected run is
// bit-identical to the golden run up to its injection site, so a campaign
// that snapshots the golden run and executes only the suffix of each
// injection skips (on average) half the trace per run. (2) Injected runs are
// uninstrumented, so they execute on the flat-bytecode tier
// (src/vm/exec_bytecode.cc) instead of the tree interpreter. This bench
// measures both: runs/sec, speedup vs. from-scratch, and speedup vs. the
// tree tier at 0/4/64/auto checkpoints — with every engine x checkpoint
// setting cross-checked for per-record bit-identity against the tree
// from-scratch campaign. Its JSON lands at the repo root
// (BENCH_injection_throughput.json) so the trajectory is tracked in-repo.
#include <iostream>

#include "bench/bench_common.h"
#include "support/stopwatch.h"

namespace {

using namespace epvf;

/// Per-record identity: same sites, same bits, same outcomes, in order.
bool RecordsIdentical(const fi::CampaignStats& a, const fi::CampaignStats& b) {
  if (a.records.size() != b.records.size() || a.counts != b.counts) return false;
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    if (a.records[i].outcome != b.records[i].outcome ||
        a.records[i].site.dyn_index != b.records[i].site.dyn_index ||
        a.records[i].bit != b.records[i].bit) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const bench::ScopedObservability observability;
  bench::BenchJson json("injection_throughput", /*default_to_repo_root=*/true);
  const int runs = bench::FiRuns();
  // -1 = the campaign's auto checkpoint policy (spacing derived from the
  // golden trace length) — the setting the CLI uses by default.
  const int checkpoint_counts[] = {0, 4, 64, -1};
  const vm::Engine engines[] = {vm::Engine::kTree, vm::Engine::kBytecode};

  AsciiTable table({"Benchmark", "trace", "engine", "ckpts", "runs/s", "vs scratch",
                    "vs tree", "identical"});
  table.SetTitle("Injection throughput: bytecode tier + suffix replay (" +
                 std::to_string(runs) + " runs/campaign)");

  bool all_identical = true;
  for (const std::string& name :
       {std::string("lulesh"), std::string("lavaMD"), std::string("srad")}) {
    const bench::Prepared p = bench::Prepare(name);
    // Reference for identity and for the cross-tier speedup columns: the
    // tree-tier campaigns, keyed by checkpoint setting.
    fi::CampaignStats baseline;
    double tree_runs_per_sec[std::size(checkpoint_counts)] = {};
    for (const vm::Engine engine : engines) {
      double scratch_runs_per_sec = 0;
      for (std::size_t c = 0; c < std::size(checkpoint_counts); ++c) {
        const int n = checkpoint_counts[c];
        fi::CampaignOptions options;
        options.num_runs = runs;
        options.seed = bench::Seed();
        // The fast path only serves jitter-free runs; keep the comparison pure.
        options.injector.jitter_pages = 0;
        options.injector.engine = engine;
        options.num_threads = bench::Jobs();
        options.checkpoint_interval = bench::CheckpointIntervalFor(p.analysis, n);
        Stopwatch watch;
        const fi::CampaignStats stats =
            fi::RunCampaign(p.app.module, p.analysis.graph(), p.analysis.golden(), options);
        const double seconds = watch.ElapsedSeconds();
        const double runs_per_sec = seconds > 0 ? runs / seconds : 0;
        if (engine == vm::Engine::kTree) {
          tree_runs_per_sec[c] = runs_per_sec;
          if (n == 0) baseline = stats;
        }
        if (n == 0) scratch_runs_per_sec = runs_per_sec;
        const bool identical = RecordsIdentical(stats, baseline);
        all_identical = all_identical && identical;
        const double vs_scratch =
            scratch_runs_per_sec > 0 ? runs_per_sec / scratch_runs_per_sec : 0;
        const double vs_tree =
            tree_runs_per_sec[c] > 0 ? runs_per_sec / tree_runs_per_sec[c] : 0;

        const std::string engine_name{vm::EngineName(engine)};
        const std::string ckpt_name = n < 0 ? std::string("auto") : std::to_string(n);
        table.AddRow({name, std::to_string(p.analysis.TraceLength()), engine_name, ckpt_name,
                      AsciiTable::Num(runs_per_sec, 1), AsciiTable::Num(vs_scratch, 2) + "x",
                      AsciiTable::Num(vs_tree, 2) + "x", identical ? "yes" : "NO"});

        const std::string row = name + "/" + engine_name + "/ckpt" + ckpt_name;
        json.Add(row, "runs_per_sec", runs_per_sec);
        json.Add(row, "speedup_vs_scratch", vs_scratch);
        json.Add(row, "speedup_vs_tree", vs_tree);
        json.Add(row, "checkpoints", static_cast<double>(stats.perf.checkpoints));
        json.Add(row, "checkpointed_runs", static_cast<double>(stats.perf.checkpointed_runs));
        json.Add(row, "skipped_instructions",
                 static_cast<double>(stats.perf.skipped_instructions));
        json.Add(row, "outcomes_identical", identical ? 1.0 : 0.0);
      }
    }
  }
  table.SetFootnote("'vs scratch' compares to the same engine at 0 checkpoints, 'vs tree' to "
                    "the tree tier at the same checkpoint setting; 'identical' checks every "
                    "record (site, bit, outcome) against the tree from-scratch campaign");
  table.Print(std::cout);

  // Planner economy: injections the stratified planner spends to hit its CI
  // target, vs the uniform-sampling equivalent at the same per-stratum
  // precision. Tracked in the committed JSON so planner regressions (more
  // rounds, worse allocation) show up in the perf trajectory.
  const double ci_target = bench::EnvDouble("EPVF_CI_TARGET", 0.05);
  AsciiTable econ({"Benchmark", "runs to CI", "rounds", "runs/s", "uniform-equiv", "savings"});
  econ.SetTitle("Stratified planner: injections to CI half-width " +
                AsciiTable::Num(ci_target));
  for (const std::string& name : {std::string("mm"), std::string("lud")}) {
    const bench::Prepared p = bench::Prepare(name);
    fi::Injector injector(p.app.module, p.analysis.golden(), fi::InjectorOptions{});
    fi::StratifiedOptions plan;
    plan.ci_target = ci_target;
    fi::CampaignPlanner planner(p.analysis.graph(), p.analysis.ace(), p.analysis.crash_bits(),
                                injector, bench::Seed(), plan);
    Stopwatch watch;
    bench::RunPlanToCompletion(planner, injector);
    const double seconds = watch.ElapsedSeconds();
    const double total = static_cast<double>(planner.TotalRuns());
    const double runs_per_sec = seconds > 0 ? total / seconds : 0;
    const std::uint64_t uniform = bench::UniformEquivalentRuns(planner);
    const double ratio = total > 0 ? static_cast<double>(uniform) / total : 0;

    econ.AddRow({name, std::to_string(planner.TotalRuns()),
                 std::to_string(planner.RoundsCommitted()), AsciiTable::Num(runs_per_sec, 1),
                 std::to_string(uniform), AsciiTable::Num(ratio, 1) + "x"});
    const std::string row = name + "/plan-stratified";
    json.Add(row, "injections_to_ci", total);
    json.Add(row, "rounds", static_cast<double>(planner.RoundsCommitted()));
    json.Add(row, "runs_per_sec", runs_per_sec);
    json.Add(row, "uniform_equivalent_runs", static_cast<double>(uniform));
    json.Add(row, "injections_saved_ratio", ratio);
  }
  econ.SetFootnote("uniform-equiv = injections a uniform sampler needs to close every "
                   "stratum's Wilson CI to the same target (max_h ceil(t_h / W_h))");
  econ.Print(std::cout);
  return all_identical ? 0 : 1;
}
