// Figure 9: PVF vs ePVF vs measured SDC rate.
//
// Paper result: ePVF is a much tighter upper bound on the SDC rate than PVF —
// it lowers the bound by 45-67% (61% on average) while staying above the
// measured SDC rate (modulo crash-model false positives, section VI-C).
// The bound comparison is made in the fault-injection site space (register
// uses weighted by bit width), the space campaign rates live in; the Eq. 1/2
// def-based values are printed alongside.
#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace epvf;
  AsciiTable table({"Benchmark", "PVF(use)", "ePVF(use)", "SDC rate", "bound ok?",
                    "PVF(Eq1)", "ePVF(Eq2)", "reduction"});
  table.SetTitle("Figure 9 — PVF vs ePVF vs measured SDC rate");
  double reduction_sum = 0;
  int n = 0;
  for (const std::string& name : bench::TableIVApps()) {
    const bench::Prepared p = bench::Prepare(name);
    const fi::CampaignStats stats = bench::Campaign(p);
    const auto sdc = stats.CI(fi::Outcome::kSdc);
    const double pvf_use = p.analysis.PvfUseWeighted();
    const double epvf_use = p.analysis.EpvfUseWeighted();
    const double pvf = p.analysis.Pvf();
    const double epvf = p.analysis.Epvf();
    const double reduction = pvf > 0 ? (pvf - epvf) / pvf : 0.0;
    reduction_sum += reduction;
    ++n;
    table.AddRow({name, AsciiTable::Num(pvf_use), AsciiTable::Num(epvf_use),
                  AsciiTable::PctCI(sdc.rate, sdc.half_width),
                  sdc.rate <= epvf_use + sdc.half_width ? "yes" : "no",
                  AsciiTable::Num(pvf), AsciiTable::Num(epvf), AsciiTable::Pct(reduction)});
  }
  table.SetFootnote("paper: ePVF lowers the PVF bound by 45-67% (61% avg); ours avg: " +
                    AsciiTable::Pct(reduction_sum / n) +
                    "; 'bound ok?' allows the FI confidence interval");
  table.Print(std::cout);
  return 0;
}
