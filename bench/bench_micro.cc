// Microbenchmarks (google-benchmark): throughput of the pipeline stages —
// the "tuned C/C++ implementation" speedup the paper's section VI-A asks for.
#include <benchmark/benchmark.h>

#include "apps/app.h"
#include "crash/crash_model.h"
#include "crash/propagation.h"
#include "ddg/ace.h"
#include "ddg/builder.h"
#include "epvf/analysis.h"
#include "vm/interpreter.h"

namespace {

using namespace epvf;

const apps::App& MmApp() {
  static const apps::App app = apps::BuildApp("mm", apps::AppConfig{.scale = 1});
  return app;
}

const core::Analysis& MmAnalysis() {
  static const core::Analysis analysis = core::Analysis::Run(MmApp().module);
  return analysis;
}

void BM_InterpreterThroughput(benchmark::State& state) {
  const apps::App& app = MmApp();
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    vm::Interpreter interp(app.module, {});
    const vm::RunResult r = interp.Run();
    instructions += r.instructions_executed;
    benchmark::DoNotOptimize(r.output.data());
  }
  state.counters["instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterThroughput)->Unit(benchmark::kMillisecond);

void BM_InterpreterWithDdgConstruction(benchmark::State& state) {
  const apps::App& app = MmApp();
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    vm::ExecOptions opts;
    opts.record_map_history = true;
    vm::Interpreter interp(app.module, opts);
    ddg::GraphBuilder builder(app.module);
    const vm::RunResult r = interp.Run("main", &builder);
    instructions += r.instructions_executed;
    benchmark::DoNotOptimize(builder.graph().NumNodes());
  }
  state.counters["instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterWithDdgConstruction)->Unit(benchmark::kMillisecond);

void BM_AceAnalysis(benchmark::State& state) {
  const core::Analysis& a = MmAnalysis();
  for (auto _ : state) {
    const ddg::AceResult ace = ddg::ComputeAce(a.graph());
    benchmark::DoNotOptimize(ace.ace_bits);
  }
  state.counters["nodes/s"] = benchmark::Counter(
      static_cast<double>(a.graph().NumNodes() * state.iterations()) /
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AceAnalysis)->Unit(benchmark::kMillisecond);

void BM_CrashPropagation(benchmark::State& state) {
  const core::Analysis& a = MmAnalysis();
  const crash::CrashModel model(a.memory());
  for (auto _ : state) {
    const crash::CrashBits bits = crash::PropagateCrashRanges(a.graph(), a.ace(), model);
    benchmark::DoNotOptimize(bits.total_crash_bits);
  }
}
BENCHMARK(BM_CrashPropagation)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  const apps::App& app = MmApp();
  for (auto _ : state) {
    const core::Analysis a = core::Analysis::Run(app.module);
    benchmark::DoNotOptimize(a.Epvf());
  }
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond);

void BM_SingleInjection(benchmark::State& state) {
  const apps::App& app = MmApp();
  const core::Analysis& a = MmAnalysis();
  vm::ExecOptions exec;
  exec.fault = vm::FaultPlan{a.graph().NumDynInstrs() / 2, 0, 7};
  for (auto _ : state) {
    vm::Interpreter interp(app.module, exec);
    const vm::RunResult r = interp.Run();
    benchmark::DoNotOptimize(r.trap);
  }
}
BENCHMARK(BM_SingleInjection)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
