// Microbenchmarks (google-benchmark): throughput of the pipeline stages —
// the "tuned C/C++ implementation" speedup the paper's section VI-A asks for.
//
// The interpreter benchmarks are split by execution tier (tree vs. flat
// bytecode) so the bytecode speedup is measured in isolation, and a custom
// main() follows the google-benchmark run with two extra sections dumped to
// BENCH_micro.json at the repo root:
//   - interpreter ops/sec per app and engine (wall-clock, compile excluded);
//   - the dynamic opcode mix and superinstruction coverage: how often each
//     bytecode opcode actually retires and what share of the trace the five
//     fused pairs (cmp+br, gep+load, gep+store, mul+add, fmul+fadd) cover —
//     the data that justifies the superinstruction set in src/vm/compile.cc.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "apps/app.h"
#include "bench/bench_common.h"
#include "crash/crash_model.h"
#include "crash/propagation.h"
#include "ddg/ace.h"
#include "ddg/builder.h"
#include "epvf/analysis.h"
#include "support/stopwatch.h"
#include "support/table.h"
#include "vm/bytecode.h"
#include "vm/compile.h"
#include "vm/interpreter.h"
#include "vm/trace.h"

namespace {

using namespace epvf;

const apps::App& MmApp() {
  static const apps::App app = apps::BuildApp("mm", apps::AppConfig{.scale = 1});
  return app;
}

const core::Analysis& MmAnalysis() {
  static const core::Analysis analysis = core::Analysis::Run(MmApp().module);
  return analysis;
}

void BM_InterpreterThroughput(benchmark::State& state, vm::Engine engine) {
  const apps::App& app = MmApp();
  vm::ExecOptions opts;
  opts.engine = engine;
  // Compile once outside the loop: the steady-state campaign cost is what
  // matters, and fi::Injector shares one compile across all runs the same way.
  if (engine == vm::Engine::kBytecode) opts.bytecode = vm::bc::Compile(app.module);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    vm::Interpreter interp(app.module, opts);
    const vm::RunResult r = interp.Run();
    instructions += r.instructions_executed;
    benchmark::DoNotOptimize(r.output.data());
  }
  state.counters["instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_InterpreterThroughput, tree, vm::Engine::kTree)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_InterpreterThroughput, bytecode, vm::Engine::kBytecode)
    ->Unit(benchmark::kMillisecond);

void BM_BytecodeCompile(benchmark::State& state) {
  const apps::App& app = MmApp();
  for (auto _ : state) {
    const auto program = vm::bc::Compile(app.module);
    benchmark::DoNotOptimize(program->supported);
  }
}
BENCHMARK(BM_BytecodeCompile)->Unit(benchmark::kMillisecond);

void BM_InterpreterWithDdgConstruction(benchmark::State& state) {
  const apps::App& app = MmApp();
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    vm::ExecOptions opts;
    opts.record_map_history = true;
    vm::Interpreter interp(app.module, opts);
    ddg::GraphBuilder builder(app.module);
    const vm::RunResult r = interp.Run("main", &builder);
    instructions += r.instructions_executed;
    benchmark::DoNotOptimize(builder.graph().NumNodes());
  }
  state.counters["instr/s"] =
      benchmark::Counter(static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterWithDdgConstruction)->Unit(benchmark::kMillisecond);

void BM_AceAnalysis(benchmark::State& state) {
  const core::Analysis& a = MmAnalysis();
  for (auto _ : state) {
    const ddg::AceResult ace = ddg::ComputeAce(a.graph());
    benchmark::DoNotOptimize(ace.ace_bits);
  }
  state.counters["nodes/s"] = benchmark::Counter(
      static_cast<double>(a.graph().NumNodes() * state.iterations()) /
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AceAnalysis)->Unit(benchmark::kMillisecond);

void BM_CrashPropagation(benchmark::State& state) {
  const core::Analysis& a = MmAnalysis();
  const crash::CrashModel model(a.memory());
  for (auto _ : state) {
    const crash::CrashBits bits = crash::PropagateCrashRanges(a.graph(), a.ace(), model);
    benchmark::DoNotOptimize(bits.total_crash_bits);
  }
}
BENCHMARK(BM_CrashPropagation)->Unit(benchmark::kMillisecond);

void BM_FullPipeline(benchmark::State& state) {
  const apps::App& app = MmApp();
  for (auto _ : state) {
    const core::Analysis a = core::Analysis::Run(app.module);
    benchmark::DoNotOptimize(a.Epvf());
  }
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond);

void BM_SingleInjection(benchmark::State& state, vm::Engine engine) {
  const apps::App& app = MmApp();
  const core::Analysis& a = MmAnalysis();
  vm::ExecOptions exec;
  exec.fault = vm::FaultPlan{a.graph().NumDynInstrs() / 2, 0, 7};
  exec.engine = engine;
  if (engine == vm::Engine::kBytecode) exec.bytecode = vm::bc::Compile(app.module);
  for (auto _ : state) {
    vm::Interpreter interp(app.module, exec);
    const vm::RunResult r = interp.Run();
    benchmark::DoNotOptimize(r.trap);
  }
}
BENCHMARK_CAPTURE(BM_SingleInjection, tree, vm::Engine::kTree)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SingleInjection, bytecode, vm::Engine::kBytecode)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Dynamic opcode mix: what the bytecode tier actually retires.
//
// A tree-tier run with a trace sink maps every dynamic instruction back to
// its bytecode pc. When the opcode at that pc is a superinstruction the
// following instruction belongs to the same fused handler, so it is counted
// under the fused opcode rather than on its own — the histogram matches what
// the threaded dispatch loop dispatches, not the raw IR stream.
class OpcodeMixSink final : public vm::TraceSink {
 public:
  explicit OpcodeMixSink(const vm::bc::Program& program) : program_(program) {}

  void OnInstruction(const vm::DynContext& ctx) override {
    ++total_;
    const vm::bc::FuncCode& fc = program_.functions[ctx.sid.function];
    const std::uint32_t pc = fc.PcOf(ctx.sid.block, ctx.sid.instr);
    if (skip_valid_ && skip_fn_ == ctx.sid.function && skip_pc_ == pc) {
      skip_valid_ = false;  // second half of a fused pair, already counted
      return;
    }
    const vm::bc::BOpcode op = fc.code[pc].op;
    ++counts_[static_cast<int>(op)];
    skip_valid_ = vm::bc::IsFused(op);
    skip_fn_ = ctx.sid.function;
    skip_pc_ = pc + 1;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t Count(vm::bc::BOpcode op) const {
    return counts_[static_cast<int>(op)];
  }
  [[nodiscard]] std::vector<std::pair<vm::bc::BOpcode, std::uint64_t>> Sorted() const {
    std::vector<std::pair<vm::bc::BOpcode, std::uint64_t>> out;
    for (int i = 0; i < vm::bc::kNumBOpcodes; ++i) {
      if (counts_[i] > 0) out.emplace_back(static_cast<vm::bc::BOpcode>(i), counts_[i]);
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    return out;
  }

 private:
  const vm::bc::Program& program_;
  std::uint64_t counts_[vm::bc::kNumBOpcodes] = {};
  std::uint64_t total_ = 0;
  bool skip_valid_ = false;
  std::uint32_t skip_fn_ = 0;
  std::uint32_t skip_pc_ = 0;
};

/// Wall-clock instr/s of one engine on one app; the bytecode compile happens
/// once up front so steady-state dispatch is what gets timed.
double MeasureInstrPerSec(const apps::App& app, vm::Engine engine) {
  vm::ExecOptions opts;
  opts.engine = engine;
  if (engine == vm::Engine::kBytecode) opts.bytecode = vm::bc::Compile(app.module);
  {
    vm::Interpreter warmup(app.module, opts);
    (void)warmup.Run();
  }
  std::uint64_t instructions = 0;
  int reps = 0;
  Stopwatch watch;
  while (reps < 3 || watch.ElapsedSeconds() < 0.5) {
    vm::Interpreter interp(app.module, opts);
    instructions += interp.Run().instructions_executed;
    ++reps;
  }
  const double seconds = watch.ElapsedSeconds();
  return seconds > 0 ? static_cast<double>(instructions) / seconds : 0;
}

void ReportOpcodeMix(bench::BenchJson& json) {
  AsciiTable speed({"Benchmark", "engine", "instr/s", "vs tree"});
  speed.SetTitle("Interpreter throughput by execution tier");
  AsciiTable mix({"Benchmark", "opcode", "dispatches", "share"});
  mix.SetTitle("Dynamic opcode mix as dispatched by the bytecode tier (top 12)");
  AsciiTable fused({"Benchmark", "superinstruction", "pairs", "trace covered"});
  fused.SetTitle("Superinstruction coverage (two IR instructions per dispatch)");

  for (const std::string& name : {std::string("mm"), std::string("lulesh")}) {
    const apps::App app = apps::BuildApp(name, apps::AppConfig{.scale = bench::Scale()});
    const double tree = MeasureInstrPerSec(app, vm::Engine::kTree);
    const double byte = MeasureInstrPerSec(app, vm::Engine::kBytecode);
    speed.AddRow({name, "tree", AsciiTable::Num(tree / 1e6, 1) + "M", "1.00x"});
    speed.AddRow({name, "bytecode", AsciiTable::Num(byte / 1e6, 1) + "M",
                  AsciiTable::Num(tree > 0 ? byte / tree : 0, 2) + "x"});
    json.Add("interp/" + name + "/tree", "instr_per_sec", tree);
    json.Add("interp/" + name + "/bytecode", "instr_per_sec", byte);
    json.Add("interp/" + name + "/bytecode", "speedup_vs_tree", tree > 0 ? byte / tree : 0);

    const auto program = vm::bc::Compile(app.module);
    if (program == nullptr || !program->supported) continue;
    OpcodeMixSink sink(*program);
    vm::ExecOptions opts;  // a sink forces the tree tier, which feeds the sink
    vm::Interpreter interp(app.module, opts);
    (void)interp.Run("main", &sink);

    const double total = static_cast<double>(sink.total());
    int shown = 0;
    for (const auto& [op, count] : sink.Sorted()) {
      const std::string op_name{vm::bc::BOpcodeName(op)};
      json.Add("mix/" + name + "/" + op_name, "dispatches", static_cast<double>(count));
      if (shown++ < 12) {
        mix.AddRow({name, op_name, std::to_string(count),
                    AsciiTable::Num(100.0 * static_cast<double>(count) / total, 1) + "%"});
      }
      if (vm::bc::IsFused(op)) {
        const double covered = 2.0 * static_cast<double>(count) / total;
        fused.AddRow({name, op_name, std::to_string(count),
                      AsciiTable::Num(100.0 * covered, 1) + "%"});
        json.Add("fused/" + name + "/" + op_name, "dyn_pairs", static_cast<double>(count));
        json.Add("fused/" + name + "/" + op_name, "trace_share", covered);
      }
    }
    json.Add("mix/" + name + "/total", "instructions", total);
  }

  speed.Print(std::cout);
  mix.SetFootnote("fused opcodes retire two IR instructions per dispatch; their second "
                  "halves are not double-counted");
  mix.Print(std::cout);
  fused.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bench::BenchJson json("micro", /*default_to_repo_root=*/true);
  ReportOpcodeMix(json);
  return 0;
}
