// Figure 6: recall of the crash model — the fraction of actually-crashing
// injections whose (register, bit) appears in the model's crash-bit list.
//
// Paper result: 89% average (85-92% range); misses come almost entirely from
// environment nondeterminism between the profiling and injected runs, which
// EPVF_JITTER_PAGES reproduces.
#include <iostream>

#include "bench/bench_common.h"
#include "fi/targeted.h"

int main() {
  using namespace epvf;
  AsciiTable table({"Benchmark", "recall", "crash runs", "predicted"});
  table.SetTitle("Figure 6 — crash-model recall (jitter pages: " +
                 std::to_string(bench::JitterPages()) + ")");
  double sum = 0;
  int n = 0;
  for (const std::string& name : bench::TableIVApps()) {
    const bench::Prepared p = bench::Prepare(name);
    const fi::CampaignStats stats = bench::Campaign(p);
    const fi::RecallStats recall = fi::MeasureRecall(stats, p.analysis.crash_bits());
    sum += recall.Recall();
    ++n;
    const auto ci = recall.CI();
    table.AddRow({name, AsciiTable::PctCI(ci.rate, ci.half_width),
                  std::to_string(recall.crash_runs), std::to_string(recall.predicted)});
  }
  table.SetFootnote("paper: 89% average recall (85-92%); ours: " + AsciiTable::Pct(sum / n));
  table.Print(std::cout);
  return 0;
}
