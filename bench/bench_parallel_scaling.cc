// Parallel scaling of the analysis engine: Analysis::Run plus the crash-rate
// estimate (and a fault-injection campaign) at 1/2/4/8 jobs on the largest
// bundled app, verifying that every metric is bit-identical across thread
// counts and reporting the per-stage breakdown + end-to-end speedup — the
// engineering headroom the paper's section VI-A asks for, now across cores.
//
// Knobs: EPVF_APP (default lulesh — the largest Table IV app), EPVF_SCALE,
// EPVF_FI_RUNS, EPVF_BENCH_JSON. A single-core machine still validates the
// determinism contract; the speedup column only becomes meaningful with
// real cores.
#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_common.h"
#include "support/stopwatch.h"
#include "support/thread_pool.h"

int main() {
  using namespace epvf;
  const char* app_env = std::getenv("EPVF_APP");
  const std::string name = app_env != nullptr && app_env[0] != '\0' ? app_env : "lulesh";
  const apps::App app = apps::BuildApp(name, apps::AppConfig{.scale = bench::Scale()});

  AsciiTable table({"jobs", "trace+graph (ms)", "ACE (ms)", "crash+prop (ms)",
                    "rate est (ms)", "campaign (ms)", "total (ms)", "speedup"});
  table.SetTitle("parallel scaling — " + name + " (hardware threads: " +
                 std::to_string(ThreadPool::HardwareJobs()) + ")");
  bench::BenchJson json("parallel_scaling");

  double baseline_total = 0;
  double baseline_epvf = 0;
  double baseline_rate = 0;
  std::uint64_t baseline_crashes = 0;
  for (const int jobs : {1, 2, 4, 8}) {
    core::AnalysisOptions options = bench::DefaultAnalysisOptions();
    options.jobs = jobs;
    Stopwatch watch;
    const core::Analysis a = core::Analysis::Run(app.module, options);
    const double rate = a.CrashRateEstimate();
    const double epvf = a.Epvf();

    fi::CampaignOptions campaign;
    campaign.num_runs = bench::FiRuns();
    campaign.seed = bench::Seed();
    campaign.injector.jitter_pages = static_cast<std::uint32_t>(bench::JitterPages());
    campaign.num_threads = jobs;
    Stopwatch campaign_watch;
    const fi::CampaignStats stats =
        fi::RunCampaign(app.module, a.graph(), a.golden(), campaign);
    const double campaign_seconds = campaign_watch.ElapsedSeconds();
    const double total = watch.ElapsedSeconds();

    if (jobs == 1) {
      baseline_total = total;
      baseline_epvf = epvf;
      baseline_rate = rate;
      baseline_crashes = stats.CrashCount();
    } else if (epvf != baseline_epvf || rate != baseline_rate ||
               stats.CrashCount() != baseline_crashes) {
      std::fprintf(stderr,
                   "determinism violation at jobs=%d: ePVF %.17g vs %.17g, rate %.17g vs "
                   "%.17g, crashes %llu vs %llu\n",
                   jobs, epvf, baseline_epvf, rate, baseline_rate,
                   static_cast<unsigned long long>(stats.CrashCount()),
                   static_cast<unsigned long long>(baseline_crashes));
      return 1;
    }

    const double speedup = total > 0 ? baseline_total / total : 0.0;
    const core::AnalysisTimings& t = a.timings();
    table.AddRow({std::to_string(jobs), AsciiTable::Num(t.trace_and_graph_seconds * 1e3, 1),
                  AsciiTable::Num(t.ace_seconds * 1e3, 1),
                  AsciiTable::Num(t.crash_model_seconds * 1e3, 1),
                  AsciiTable::Num(t.rate_estimate_seconds * 1e3, 1),
                  AsciiTable::Num(campaign_seconds * 1e3, 1), AsciiTable::Num(total * 1e3, 1),
                  AsciiTable::Num(speedup, 2) + "x"});
    const std::string row = "jobs=" + std::to_string(jobs);
    json.Add(row, "trace_graph_ms", t.trace_and_graph_seconds * 1e3);
    json.Add(row, "ace_ms", t.ace_seconds * 1e3);
    json.Add(row, "crash_prop_ms", t.crash_model_seconds * 1e3);
    json.Add(row, "rate_estimate_ms", t.rate_estimate_seconds * 1e3);
    json.Add(row, "campaign_ms", campaign_seconds * 1e3);
    json.Add(row, "total_ms", total * 1e3);
    json.Add(row, "speedup", speedup);
  }
  table.SetFootnote(
      "identical ePVF, crash-rate estimate and campaign outcomes at every jobs "
      "setting (verified per row); the golden run + DDG construction is the "
      "sequential fraction bounding the end-to-end speedup");
  table.Print(std::cout);
  return 0;
}
