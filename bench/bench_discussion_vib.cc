// Section VI-B reproduced: the three sources of ePVF's remaining SDC
// overestimate, measured directly.
//
//   1. Lucky loads — an address flip that stays inside allocated memory loads
//      a wrong-but-often-harmless value (frequently zero).
//   2. Y-branches — flipping a branch condition often does not change the
//      output; the paper cites ~20% of branch flips causing SDCs.
//   3. (Application-specific correctness checks are the %.6g output
//      comparison already built into the platform.)
#include <iostream>

#include "bench/bench_common.h"
#include "fi/injector.h"

int main() {
  using namespace epvf;

  // --- 1. lucky loads -------------------------------------------------------
  {
    AsciiTable table({"Benchmark", "in-bounds addr flips", "SDC", "benign (lucky)", "crash"});
    table.SetTitle("Section VI-B #1 — in-bounds address flips (lucky loads)");
    for (const std::string& name : {std::string("mm"), std::string("nw"), std::string("lud")}) {
      const bench::Prepared p = bench::Prepare(name);
      const ddg::Graph& g = p.analysis.graph();
      fi::Injector injector(p.app.module, p.analysis.golden(), fi::InjectorOptions{});
      Rng rng(bench::Seed());

      int injections = 0, sdc = 0, benign = 0, crash = 0;
      const auto& accesses = g.accesses();
      while (injections < bench::FiRuns() / 2 && !accesses.empty()) {
        const ddg::AccessRecord& access = accesses[rng.Below(accesses.size())];
        if (access.is_store || access.addr_node == ddg::kNoNode) continue;
        const ddg::Node& node = g.GetNode(access.addr_node);
        if (node.kind != ddg::NodeKind::kRegister) continue;
        // Pick a bit the model says stays in bounds (a NON-crash bit).
        const std::uint64_t mask = p.analysis.crash_bits().crash_mask[access.addr_node];
        std::uint8_t bit = 0;
        bool found = false;
        for (int attempt = 0; attempt < 8 && !found; ++attempt) {
          bit = static_cast<std::uint8_t>(rng.Below(node.width));
          found = ((mask >> bit) & 1u) == 0;
        }
        if (!found) continue;
        fi::FaultSite site;
        site.dyn_index = access.dyn_index;
        site.slot = 0;  // load address operand
        site.width = node.width;
        site.node = access.addr_node;
        const auto result = injector.Inject(site, bit);
        ++injections;
        sdc += result.outcome == fi::Outcome::kSdc;
        benign += result.outcome == fi::Outcome::kBenign;
        crash += fi::IsCrash(result.outcome);
      }
      table.AddRow({name, std::to_string(injections),
                    AsciiTable::Pct(injections ? double(sdc) / injections : 0),
                    AsciiTable::Pct(injections ? double(benign) / injections : 0),
                    AsciiTable::Pct(injections ? double(crash) / injections : 0)});
    }
    table.SetFootnote("ePVF counts every non-crash address bit as SDC-prone; the benign "
                      "column is the 'lucky load' overestimate the paper describes");
    table.Print(std::cout);
    std::cout << '\n';
  }

  // --- 2. Y-branches ---------------------------------------------------------
  {
    AsciiTable table({"Benchmark", "branch-condition flips", "SDC", "benign (Y-branch)",
                      "crash", "hang"});
    table.SetTitle("Section VI-B #2 — branch-condition flips (Y-branches)");
    for (const std::string& name : {std::string("hotspot"), std::string("pathfinder"),
                                    std::string("bfs")}) {
      const bench::Prepared p = bench::Prepare(name);
      const ddg::Graph& g = p.analysis.graph();
      fi::Injector injector(p.app.module, p.analysis.golden(), fi::InjectorOptions{});
      Rng rng(bench::Seed());

      // Collect condbr condition sites.
      std::vector<fi::FaultSite> cond_sites;
      for (std::uint32_t dyn = 0; dyn < g.NumDynInstrs(); ++dyn) {
        const ir::Instruction& inst = g.InstructionAt(dyn);
        if (inst.op != ir::Opcode::kCondBr || !inst.operands[0].IsRegister()) continue;
        const ddg::NodeId node = g.OperandNodes(dyn)[0];
        if (node == ddg::kNoNode) continue;
        fi::FaultSite site;
        site.dyn_index = dyn;
        site.slot = 0;
        site.width = 1;
        site.node = node;
        cond_sites.push_back(site);
      }
      int injections = 0, sdc = 0, benign = 0, crash = 0, hang = 0;
      for (int i = 0; i < bench::FiRuns() / 2 && !cond_sites.empty(); ++i) {
        const fi::FaultSite& site = cond_sites[rng.Below(cond_sites.size())];
        const auto result = injector.Inject(site, 0);  // the i1 has one bit
        ++injections;
        sdc += result.outcome == fi::Outcome::kSdc;
        benign += result.outcome == fi::Outcome::kBenign;
        crash += fi::IsCrash(result.outcome);
        hang += result.outcome == fi::Outcome::kHang;
      }
      table.AddRow({name, std::to_string(injections),
                    AsciiTable::Pct(injections ? double(sdc) / injections : 0),
                    AsciiTable::Pct(injections ? double(benign) / injections : 0),
                    AsciiTable::Pct(injections ? double(crash) / injections : 0),
                    AsciiTable::Pct(injections ? double(hang) / injections : 0)});
    }
    table.SetFootnote(
        "paper (citing prior work): only ~20% of branch flips cause SDCs, yet ePVF marks "
        "every branch as sensitive. Our kernels are loop-dominated — nearly every branch "
        "is trip-count-critical — so the benign (Y-branch) fraction is smaller than in "
        "the mixed-branch programs the prior work measured; bfs, whose redundant "
        "frontier-update branches tolerate flips, shows the effect most clearly");
    table.Print(std::cout);
  }
  return 0;
}
