// Per-segment vulnerability (paper section II-C): "programmers are able to
// pinpoint the vulnerability of different segments of the program" — here,
// per-function and per-basic-block PVF/ePVF breakdowns for one benchmark.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench/bench_common.h"

int main() {
  using namespace epvf;
  const char* target = std::getenv("EPVF_APP");
  const std::string name = target == nullptr ? "nw" : target;
  const bench::Prepared p = bench::Prepare(name);

  struct Bucket {
    std::uint64_t exec = 0;
    std::uint64_t total = 0;
    std::uint64_t ace = 0;
    std::uint64_t crash = 0;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, Bucket> by_block;
  for (const core::InstrMetrics& m : p.analysis.PerInstructionMetrics()) {
    Bucket& bucket = by_block[{m.sid.function, m.sid.block}];
    bucket.exec += m.exec_count;
    bucket.total += m.total_bits;
    bucket.ace += m.ace_bits;
    bucket.crash += m.crash_bits;
  }

  AsciiTable table({"function", "block", "executions", "PVF", "ePVF", "crash fraction"});
  table.SetTitle("Per-segment vulnerability for '" + name +
                 "' (section II-C: pinpointing vulnerable program segments)");
  for (const auto& [key, bucket] : by_block) {
    if (bucket.total == 0) continue;
    const auto& fn = p.app.module.functions[key.first];
    table.AddRow({fn.name, fn.blocks[key.second].name, std::to_string(bucket.exec),
                  AsciiTable::Num(static_cast<double>(bucket.ace) / bucket.total),
                  AsciiTable::Num(static_cast<double>(bucket.ace - bucket.crash) / bucket.total),
                  AsciiTable::Num(static_cast<double>(bucket.crash) / bucket.total)});
  }
  table.SetFootnote("blocks whose ePVF stays high are where selective protection pays; "
                    "address-heavy blocks show high crash fractions instead. "
                    "Pick the app with EPVF_APP=<name>");
  table.Print(std::cout);
  return 0;
}
