// Memory-resident fault scenario: dwell-weighted site population and outcome
// breakdown versus the classic register scenario (Figure 10 style).
//
// Three measurements per app:
//   - site-enumeration throughput (sites/sec over the golden access shadow)
//     and the population shape (consumed vs overwritten-before-load bytes),
//   - the dwell-time histogram: what fraction of the dwell-weight mass sits
//     in each log-spaced write-to-load interval bucket (the planner's
//     stratification axis),
//   - a same-seed campaign under each scenario: the dwell-weighted memory
//     campaign masks flips whose byte dies before any load (delayed error
//     reporting), so its masked rate separates measurably from the register
//     campaign's.
// Both campaigns run with zero layout jitter so the comparison isolates the
// scenario, not the environment nondeterminism.
#include <array>
#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "fi/memory_scenario.h"
#include "fi/scenario.h"

namespace {

using namespace epvf;

/// The dwell buckets the stratified planner uses (log-spaced, in dynamic
/// instructions), plus one slot for overwritten-before-load weight.
constexpr std::array<const char*, 5> kBucketNames = {"<4", "<64", "<4096", ">=4096",
                                                     "overwritten"};

std::size_t BucketOf(const fi::MemorySite& site) {
  if (!site.consumed) return 4;
  const std::uint64_t dwell = site.Dwell();
  if (dwell < 4) return 0;
  if (dwell < 64) return 1;
  if (dwell < 4096) return 2;
  return 3;
}

fi::CampaignStats ScenarioCampaign(const bench::Prepared& p, fi::Scenario scenario) {
  fi::CampaignOptions options;
  options.num_runs = bench::FiRuns();
  options.seed = bench::Seed();
  options.injector.scenario = scenario;
  options.injector.jitter_pages = 0;
  options.num_threads = bench::Jobs();
  options.checkpoint_interval = bench::CheckpointIntervalFor(p.analysis, bench::Checkpoints());
  return fi::RunCampaign(p.app.module, p.analysis.graph(), p.analysis.golden(), options);
}

}  // namespace

int main() {
  bench::ScopedObservability observability;
  bench::BenchJson json("memory_scenario", /*default_to_repo_root=*/true);

  AsciiTable sites_table({"Benchmark", "sites", "consumed", "enum ms", "sites/sec"});
  sites_table.SetTitle("memory-scenario site enumeration (dwell-weighted bytes)");
  AsciiTable dwell_table({"Benchmark", "<4", "<64", "<4096", ">=4096", "overwritten"});
  dwell_table.SetTitle("dwell-weight mass by write-to-load interval (dynamic instructions)");
  AsciiTable outcome_table(
      {"Benchmark", "scenario", "masked", "sdc", "crash", "hang", "static-masked"});
  outcome_table.SetTitle("outcome breakdown: memory vs register scenario (same seed, no jitter)");

  for (const std::string& name : bench::CaseStudyApps()) {
    const bench::Prepared p = bench::Prepare(name);

    const auto t0 = std::chrono::steady_clock::now();
    const fi::MemoryScenario scenario(p.analysis.graph());
    const double enum_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const auto num_sites = static_cast<double>(scenario.sites().size());
    const double sites_per_sec = enum_seconds > 0 ? num_sites / enum_seconds : 0.0;

    std::array<double, 5> bucket_weight{};
    std::size_t consumed = 0;
    for (const fi::MemorySite& site : scenario.sites()) {
      bucket_weight[BucketOf(site)] += static_cast<double>(site.WeightBits());
      consumed += site.consumed ? 1 : 0;
    }
    const double total_weight = static_cast<double>(scenario.TotalWeightBits());

    sites_table.AddRow({name, std::to_string(scenario.sites().size()),
                        AsciiTable::Pct(consumed / num_sites),
                        AsciiTable::Num(enum_seconds * 1e3), AsciiTable::Num(sites_per_sec)});
    std::vector<std::string> dwell_row = {name};
    for (std::size_t b = 0; b < bucket_weight.size(); ++b) {
      dwell_row.push_back(AsciiTable::Pct(bucket_weight[b] / total_weight));
      json.Add(name, std::string("dwell_weight_") + kBucketNames[b],
               bucket_weight[b] / total_weight);
    }
    dwell_table.AddRow(dwell_row);
    json.Add(name, "sites", num_sites);
    json.Add(name, "sites_per_sec", sites_per_sec);
    json.Add(name, "consumed_fraction", consumed / num_sites);

    for (const fi::Scenario s : {fi::Scenario::kMemory, fi::Scenario::kRegister}) {
      const fi::CampaignStats stats = ScenarioCampaign(p, s);
      const double masked = stats.Rate(fi::Outcome::kBenign);
      const double sdc = stats.Rate(fi::Outcome::kSdc);
      const double crash = stats.CrashRate();
      const double hang = stats.Rate(fi::Outcome::kHang);
      outcome_table.AddRow({name, std::string(fi::ScenarioName(s)), AsciiTable::Pct(masked),
                            AsciiTable::Pct(sdc), AsciiTable::Pct(crash),
                            AsciiTable::Pct(hang),
                            std::to_string(stats.perf.statically_masked_runs)});
      const std::string prefix = std::string(fi::ScenarioName(s)) + "_";
      json.Add(name, prefix + "masked_rate", masked);
      json.Add(name, prefix + "sdc_rate", sdc);
      json.Add(name, prefix + "crash_rate", crash);
      if (s == fi::Scenario::kMemory) {
        json.Add(name, "statically_masked_runs",
                 static_cast<double>(stats.perf.statically_masked_runs));
      }
    }
  }

  sites_table.Print(std::cout);
  dwell_table.Print(std::cout);
  outcome_table.SetFootnote(
      "memory flips land in stored data bytes, never in address-forming registers, so "
      "crashes vanish and masking rises; overwritten-before-load bytes (static-masked "
      "column) are benign without execution");
  outcome_table.Print(std::cout);
  return 0;
}
