// Artifact-cache throughput: cold (compute + serialize + store) vs. warm
// (mmap + verify + deserialize) analysis, per app.
//
// The cache's value proposition is that re-running `epvf analyze` against an
// unchanged program costs a deserialization, not a pipeline execution. This
// bench measures that directly — cold wall time, warm wall time, speedup,
// artifact size — and cross-checks that the warm analysis reproduces the cold
// metrics exactly (a cache that changes results is worse than no cache).
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "store/cache.h"
#include "support/stopwatch.h"

int main() {
  using namespace epvf;
  namespace fs = std::filesystem;

  bench::BenchJson json("cache_throughput");

  std::string tmpl = (fs::temp_directory_path() / "epvf_cache_bench_XXXXXX").string();
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* made = mkdtemp(buf.data());
  if (made == nullptr) {
    std::fprintf(stderr, "bench_cache_throughput: cannot create temp cache dir\n");
    return 1;
  }
  const std::string cache_dir = made;

  AsciiTable table({"Benchmark", "cold (ms)", "warm (ms)", "speedup", "artifact (KB)",
                    "identical"});
  table.SetTitle("Artifact cache: cold compute+store vs. warm load");

  bool all_identical = true;
  for (const std::string& name :
       {std::string("mm"), std::string("hotspot"), std::string("lulesh")}) {
    const apps::App app = apps::BuildApp(name, apps::AppConfig{.scale = bench::Scale()});
    const core::AnalysisOptions options = bench::DefaultAnalysisOptions();
    store::AnalysisKey key;
    key.app = name;
    key.config = "scale=" + std::to_string(bench::Scale());
    key.module_fingerprint = store::ModuleFingerprint(app.module);
    key.options = options;

    store::ArtifactCache cache(cache_dir);
    Stopwatch cold_watch;
    const core::Analysis cold = store::RunAnalysisCached(app.module, options, key, cache);
    const double cold_ms = cold_watch.ElapsedMillis();

    Stopwatch warm_watch;
    const core::Analysis warm = store::RunAnalysisCached(app.module, options, key, cache);
    const double warm_ms = warm_watch.ElapsedMillis();

    const bool identical = warm.timings().cache_hit && warm.Pvf() == cold.Pvf() &&
                           warm.Epvf() == cold.Epvf() &&
                           warm.CrashRateEstimate() == cold.CrashRateEstimate() &&
                           warm.MemoryEpvf() == cold.MemoryEpvf() &&
                           warm.golden().output == cold.golden().output &&
                           warm.graph().NumNodes() == cold.graph().NumNodes();
    all_identical = all_identical && identical;

    const double artifact_bytes = static_cast<double>(cache.session_counters().bytes_written);
    const double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0;
    table.AddRow({name, AsciiTable::Num(cold_ms, 1), AsciiTable::Num(warm_ms, 2),
                  AsciiTable::Num(speedup, 1) + "x", AsciiTable::Num(artifact_bytes / 1024, 1),
                  identical ? "yes" : "NO"});
    json.Add(name, "cold_ms", cold_ms);
    json.Add(name, "warm_ms", warm_ms);
    json.Add(name, "speedup", speedup);
    json.Add(name, "artifact_bytes", artifact_bytes);
    json.Add(name, "identical", identical ? 1.0 : 0.0);
  }

  table.SetFootnote("cold = full pipeline + serialize + atomic store; warm = mmap + CRC verify + "
                    "deserialize; 'identical' cross-checks every headline metric");
  table.Print(std::cout);

  std::error_code ec;
  fs::remove_all(cache_dir, ec);
  return all_identical ? 0 : 1;
}
