file(REMOVE_RECURSE
  "CMakeFiles/epvf.dir/epvf_cli.cc.o"
  "CMakeFiles/epvf.dir/epvf_cli.cc.o.d"
  "epvf"
  "epvf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epvf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
