# Empty dependencies file for epvf.
# This may be replaced when dependencies are built.
