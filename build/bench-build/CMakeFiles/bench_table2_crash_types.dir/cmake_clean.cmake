file(REMOVE_RECURSE
  "../bench/bench_table2_crash_types"
  "../bench/bench_table2_crash_types.pdb"
  "CMakeFiles/bench_table2_crash_types.dir/bench_table2_crash_types.cc.o"
  "CMakeFiles/bench_table2_crash_types.dir/bench_table2_crash_types.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_crash_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
