file(REMOVE_RECURSE
  "../bench/bench_ablation_protection"
  "../bench/bench_ablation_protection.pdb"
  "CMakeFiles/bench_ablation_protection.dir/bench_ablation_protection.cc.o"
  "CMakeFiles/bench_ablation_protection.dir/bench_ablation_protection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
