# Empty compiler generated dependencies file for bench_fig8_crash_rate.
# This may be replaced when dependencies are built.
