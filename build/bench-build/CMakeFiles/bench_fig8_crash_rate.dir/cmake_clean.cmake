file(REMOVE_RECURSE
  "../bench/bench_fig8_crash_rate"
  "../bench/bench_fig8_crash_rate.pdb"
  "CMakeFiles/bench_fig8_crash_rate.dir/bench_fig8_crash_rate.cc.o"
  "CMakeFiles/bench_fig8_crash_rate.dir/bench_fig8_crash_rate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_crash_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
