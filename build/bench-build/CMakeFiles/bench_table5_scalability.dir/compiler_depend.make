# Empty compiler generated dependencies file for bench_table5_scalability.
# This may be replaced when dependencies are built.
