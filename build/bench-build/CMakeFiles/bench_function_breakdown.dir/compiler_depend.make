# Empty compiler generated dependencies file for bench_function_breakdown.
# This may be replaced when dependencies are built.
