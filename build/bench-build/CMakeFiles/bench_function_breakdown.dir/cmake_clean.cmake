file(REMOVE_RECURSE
  "../bench/bench_function_breakdown"
  "../bench/bench_function_breakdown.pdb"
  "CMakeFiles/bench_function_breakdown.dir/bench_function_breakdown.cc.o"
  "CMakeFiles/bench_function_breakdown.dir/bench_function_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_function_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
