file(REMOVE_RECURSE
  "../bench/bench_fig13_protection"
  "../bench/bench_fig13_protection.pdb"
  "CMakeFiles/bench_fig13_protection.dir/bench_fig13_protection.cc.o"
  "CMakeFiles/bench_fig13_protection.dir/bench_fig13_protection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
