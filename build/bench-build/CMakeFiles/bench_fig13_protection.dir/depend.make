# Empty dependencies file for bench_fig13_protection.
# This may be replaced when dependencies are built.
