file(REMOVE_RECURSE
  "../bench/bench_fig9_pvf_epvf_sdc"
  "../bench/bench_fig9_pvf_epvf_sdc.pdb"
  "CMakeFiles/bench_fig9_pvf_epvf_sdc.dir/bench_fig9_pvf_epvf_sdc.cc.o"
  "CMakeFiles/bench_fig9_pvf_epvf_sdc.dir/bench_fig9_pvf_epvf_sdc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_pvf_epvf_sdc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
