# Empty compiler generated dependencies file for bench_fig9_pvf_epvf_sdc.
# This may be replaced when dependencies are built.
