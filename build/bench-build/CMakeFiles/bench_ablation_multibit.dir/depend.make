# Empty dependencies file for bench_ablation_multibit.
# This may be replaced when dependencies are built.
