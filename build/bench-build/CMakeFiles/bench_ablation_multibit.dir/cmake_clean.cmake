file(REMOVE_RECURSE
  "../bench/bench_ablation_multibit"
  "../bench/bench_ablation_multibit.pdb"
  "CMakeFiles/bench_ablation_multibit.dir/bench_ablation_multibit.cc.o"
  "CMakeFiles/bench_ablation_multibit.dir/bench_ablation_multibit.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multibit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
