
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_discussion_vib.cc" "bench-build/CMakeFiles/bench_discussion_vib.dir/bench_discussion_vib.cc.o" "gcc" "bench-build/CMakeFiles/bench_discussion_vib.dir/bench_discussion_vib.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/epvf_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/protect/CMakeFiles/epvf_protect.dir/DependInfo.cmake"
  "/root/repo/build/src/fi/CMakeFiles/epvf_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/epvf/CMakeFiles/epvf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crash/CMakeFiles/epvf_crash.dir/DependInfo.cmake"
  "/root/repo/build/src/ddg/CMakeFiles/epvf_ddg.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/epvf_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/epvf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/epvf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/epvf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
