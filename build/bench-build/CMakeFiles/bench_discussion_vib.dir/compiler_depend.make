# Empty compiler generated dependencies file for bench_discussion_vib.
# This may be replaced when dependencies are built.
