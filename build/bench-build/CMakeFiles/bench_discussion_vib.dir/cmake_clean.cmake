file(REMOVE_RECURSE
  "../bench/bench_discussion_vib"
  "../bench/bench_discussion_vib.pdb"
  "CMakeFiles/bench_discussion_vib.dir/bench_discussion_vib.cc.o"
  "CMakeFiles/bench_discussion_vib.dir/bench_discussion_vib.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_discussion_vib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
