file(REMOVE_RECURSE
  "../bench/bench_table4_apps"
  "../bench/bench_table4_apps.pdb"
  "CMakeFiles/bench_table4_apps.dir/bench_table4_apps.cc.o"
  "CMakeFiles/bench_table4_apps.dir/bench_table4_apps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
