# Empty compiler generated dependencies file for bench_structure_report.
# This may be replaced when dependencies are built.
