file(REMOVE_RECURSE
  "../bench/bench_structure_report"
  "../bench/bench_structure_report.pdb"
  "CMakeFiles/bench_structure_report.dir/bench_structure_report.cc.o"
  "CMakeFiles/bench_structure_report.dir/bench_structure_report.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_structure_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
