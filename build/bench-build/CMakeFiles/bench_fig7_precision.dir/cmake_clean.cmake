file(REMOVE_RECURSE
  "../bench/bench_fig7_precision"
  "../bench/bench_fig7_precision.pdb"
  "CMakeFiles/bench_fig7_precision.dir/bench_fig7_precision.cc.o"
  "CMakeFiles/bench_fig7_precision.dir/bench_fig7_precision.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
