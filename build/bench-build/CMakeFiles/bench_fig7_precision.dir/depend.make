# Empty dependencies file for bench_fig7_precision.
# This may be replaced when dependencies are built.
