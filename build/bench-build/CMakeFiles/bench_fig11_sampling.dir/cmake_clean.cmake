file(REMOVE_RECURSE
  "../bench/bench_fig11_sampling"
  "../bench/bench_fig11_sampling.pdb"
  "CMakeFiles/bench_fig11_sampling.dir/bench_fig11_sampling.cc.o"
  "CMakeFiles/bench_fig11_sampling.dir/bench_fig11_sampling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
