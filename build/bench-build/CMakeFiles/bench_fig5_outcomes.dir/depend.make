# Empty dependencies file for bench_fig5_outcomes.
# This may be replaced when dependencies are built.
