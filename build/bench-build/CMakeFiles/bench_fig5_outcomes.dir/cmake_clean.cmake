file(REMOVE_RECURSE
  "../bench/bench_fig5_outcomes"
  "../bench/bench_fig5_outcomes.pdb"
  "CMakeFiles/bench_fig5_outcomes.dir/bench_fig5_outcomes.cc.o"
  "CMakeFiles/bench_fig5_outcomes.dir/bench_fig5_outcomes.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_outcomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
