# Empty dependencies file for bench_fig6_recall.
# This may be replaced when dependencies are built.
