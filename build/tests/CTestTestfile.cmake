# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/interval_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/crash_semantics_test[1]_include.cmake")
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/ddg_test[1]_include.cmake")
include("/root/repo/build/tests/propagation_test[1]_include.cmake")
include("/root/repo/build/tests/epvf_test[1]_include.cmake")
include("/root/repo/build/tests/fi_test[1]_include.cmake")
include("/root/repo/build/tests/protect_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/transform_property_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_util_test[1]_include.cmake")
include("/root/repo/build/tests/lookup_table_test[1]_include.cmake")
include("/root/repo/build/tests/semantics_fuzz_test[1]_include.cmake")
