file(REMOVE_RECURSE
  "CMakeFiles/fi_test.dir/fi_test.cc.o"
  "CMakeFiles/fi_test.dir/fi_test.cc.o.d"
  "fi_test"
  "fi_test.pdb"
  "fi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
