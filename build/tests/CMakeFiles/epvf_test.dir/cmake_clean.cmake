file(REMOVE_RECURSE
  "CMakeFiles/epvf_test.dir/epvf_test.cc.o"
  "CMakeFiles/epvf_test.dir/epvf_test.cc.o.d"
  "epvf_test"
  "epvf_test.pdb"
  "epvf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epvf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
