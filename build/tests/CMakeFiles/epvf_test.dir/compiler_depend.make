# Empty compiler generated dependencies file for epvf_test.
# This may be replaced when dependencies are built.
