file(REMOVE_RECURSE
  "CMakeFiles/transform_property_test.dir/transform_property_test.cc.o"
  "CMakeFiles/transform_property_test.dir/transform_property_test.cc.o.d"
  "transform_property_test"
  "transform_property_test.pdb"
  "transform_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
