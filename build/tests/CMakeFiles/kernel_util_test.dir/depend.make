# Empty dependencies file for kernel_util_test.
# This may be replaced when dependencies are built.
