file(REMOVE_RECURSE
  "CMakeFiles/kernel_util_test.dir/kernel_util_test.cc.o"
  "CMakeFiles/kernel_util_test.dir/kernel_util_test.cc.o.d"
  "kernel_util_test"
  "kernel_util_test.pdb"
  "kernel_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
