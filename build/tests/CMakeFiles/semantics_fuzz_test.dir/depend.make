# Empty dependencies file for semantics_fuzz_test.
# This may be replaced when dependencies are built.
