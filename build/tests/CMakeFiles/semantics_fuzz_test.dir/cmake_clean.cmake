file(REMOVE_RECURSE
  "CMakeFiles/semantics_fuzz_test.dir/semantics_fuzz_test.cc.o"
  "CMakeFiles/semantics_fuzz_test.dir/semantics_fuzz_test.cc.o.d"
  "semantics_fuzz_test"
  "semantics_fuzz_test.pdb"
  "semantics_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantics_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
