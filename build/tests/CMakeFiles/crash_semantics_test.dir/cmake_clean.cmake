file(REMOVE_RECURSE
  "CMakeFiles/crash_semantics_test.dir/crash_semantics_test.cc.o"
  "CMakeFiles/crash_semantics_test.dir/crash_semantics_test.cc.o.d"
  "crash_semantics_test"
  "crash_semantics_test.pdb"
  "crash_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
