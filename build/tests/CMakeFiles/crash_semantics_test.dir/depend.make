# Empty dependencies file for crash_semantics_test.
# This may be replaced when dependencies are built.
