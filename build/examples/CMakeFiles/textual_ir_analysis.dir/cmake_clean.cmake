file(REMOVE_RECURSE
  "CMakeFiles/textual_ir_analysis.dir/textual_ir_analysis.cpp.o"
  "CMakeFiles/textual_ir_analysis.dir/textual_ir_analysis.cpp.o.d"
  "textual_ir_analysis"
  "textual_ir_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textual_ir_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
