# Empty dependencies file for textual_ir_analysis.
# This may be replaced when dependencies are built.
