file(REMOVE_RECURSE
  "CMakeFiles/selective_protection.dir/selective_protection.cpp.o"
  "CMakeFiles/selective_protection.dir/selective_protection.cpp.o.d"
  "selective_protection"
  "selective_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selective_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
