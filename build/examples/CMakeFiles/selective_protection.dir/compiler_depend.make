# Empty compiler generated dependencies file for selective_protection.
# This may be replaced when dependencies are built.
