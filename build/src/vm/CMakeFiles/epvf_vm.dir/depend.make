# Empty dependencies file for epvf_vm.
# This may be replaced when dependencies are built.
