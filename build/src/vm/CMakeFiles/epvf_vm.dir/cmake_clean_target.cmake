file(REMOVE_RECURSE
  "libepvf_vm.a"
)
