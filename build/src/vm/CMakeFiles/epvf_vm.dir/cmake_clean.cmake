file(REMOVE_RECURSE
  "CMakeFiles/epvf_vm.dir/interpreter.cc.o"
  "CMakeFiles/epvf_vm.dir/interpreter.cc.o.d"
  "libepvf_vm.a"
  "libepvf_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epvf_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
