file(REMOVE_RECURSE
  "libepvf_crash.a"
)
