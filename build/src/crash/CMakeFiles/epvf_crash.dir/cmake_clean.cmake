file(REMOVE_RECURSE
  "CMakeFiles/epvf_crash.dir/lookup_table.cc.o"
  "CMakeFiles/epvf_crash.dir/lookup_table.cc.o.d"
  "CMakeFiles/epvf_crash.dir/propagation.cc.o"
  "CMakeFiles/epvf_crash.dir/propagation.cc.o.d"
  "libepvf_crash.a"
  "libepvf_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epvf_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
