# Empty dependencies file for epvf_crash.
# This may be replaced when dependencies are built.
