# Empty compiler generated dependencies file for epvf_mem.
# This may be replaced when dependencies are built.
