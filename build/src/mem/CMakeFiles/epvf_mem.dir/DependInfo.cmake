
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/crash_semantics.cc" "src/mem/CMakeFiles/epvf_mem.dir/crash_semantics.cc.o" "gcc" "src/mem/CMakeFiles/epvf_mem.dir/crash_semantics.cc.o.d"
  "/root/repo/src/mem/sim_memory.cc" "src/mem/CMakeFiles/epvf_mem.dir/sim_memory.cc.o" "gcc" "src/mem/CMakeFiles/epvf_mem.dir/sim_memory.cc.o.d"
  "/root/repo/src/mem/vma.cc" "src/mem/CMakeFiles/epvf_mem.dir/vma.cc.o" "gcc" "src/mem/CMakeFiles/epvf_mem.dir/vma.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/epvf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
