file(REMOVE_RECURSE
  "libepvf_mem.a"
)
