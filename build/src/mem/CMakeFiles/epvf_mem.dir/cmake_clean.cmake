file(REMOVE_RECURSE
  "CMakeFiles/epvf_mem.dir/crash_semantics.cc.o"
  "CMakeFiles/epvf_mem.dir/crash_semantics.cc.o.d"
  "CMakeFiles/epvf_mem.dir/sim_memory.cc.o"
  "CMakeFiles/epvf_mem.dir/sim_memory.cc.o.d"
  "CMakeFiles/epvf_mem.dir/vma.cc.o"
  "CMakeFiles/epvf_mem.dir/vma.cc.o.d"
  "libepvf_mem.a"
  "libepvf_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epvf_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
