# Empty dependencies file for epvf_ir.
# This may be replaced when dependencies are built.
