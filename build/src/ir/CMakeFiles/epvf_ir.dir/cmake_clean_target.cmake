file(REMOVE_RECURSE
  "libepvf_ir.a"
)
