file(REMOVE_RECURSE
  "CMakeFiles/epvf_ir.dir/builder.cc.o"
  "CMakeFiles/epvf_ir.dir/builder.cc.o.d"
  "CMakeFiles/epvf_ir.dir/intrinsics.cc.o"
  "CMakeFiles/epvf_ir.dir/intrinsics.cc.o.d"
  "CMakeFiles/epvf_ir.dir/module.cc.o"
  "CMakeFiles/epvf_ir.dir/module.cc.o.d"
  "CMakeFiles/epvf_ir.dir/opcode.cc.o"
  "CMakeFiles/epvf_ir.dir/opcode.cc.o.d"
  "CMakeFiles/epvf_ir.dir/parser.cc.o"
  "CMakeFiles/epvf_ir.dir/parser.cc.o.d"
  "CMakeFiles/epvf_ir.dir/printer.cc.o"
  "CMakeFiles/epvf_ir.dir/printer.cc.o.d"
  "CMakeFiles/epvf_ir.dir/type.cc.o"
  "CMakeFiles/epvf_ir.dir/type.cc.o.d"
  "CMakeFiles/epvf_ir.dir/value.cc.o"
  "CMakeFiles/epvf_ir.dir/value.cc.o.d"
  "CMakeFiles/epvf_ir.dir/verifier.cc.o"
  "CMakeFiles/epvf_ir.dir/verifier.cc.o.d"
  "libepvf_ir.a"
  "libepvf_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epvf_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
