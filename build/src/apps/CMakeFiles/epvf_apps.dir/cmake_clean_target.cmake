file(REMOVE_RECURSE
  "libepvf_apps.a"
)
