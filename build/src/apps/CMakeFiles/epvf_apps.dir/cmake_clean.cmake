file(REMOVE_RECURSE
  "CMakeFiles/epvf_apps.dir/app.cc.o"
  "CMakeFiles/epvf_apps.dir/app.cc.o.d"
  "CMakeFiles/epvf_apps.dir/bfs.cc.o"
  "CMakeFiles/epvf_apps.dir/bfs.cc.o.d"
  "CMakeFiles/epvf_apps.dir/hotspot.cc.o"
  "CMakeFiles/epvf_apps.dir/hotspot.cc.o.d"
  "CMakeFiles/epvf_apps.dir/kmeans.cc.o"
  "CMakeFiles/epvf_apps.dir/kmeans.cc.o.d"
  "CMakeFiles/epvf_apps.dir/lavamd.cc.o"
  "CMakeFiles/epvf_apps.dir/lavamd.cc.o.d"
  "CMakeFiles/epvf_apps.dir/lud.cc.o"
  "CMakeFiles/epvf_apps.dir/lud.cc.o.d"
  "CMakeFiles/epvf_apps.dir/lulesh.cc.o"
  "CMakeFiles/epvf_apps.dir/lulesh.cc.o.d"
  "CMakeFiles/epvf_apps.dir/mm.cc.o"
  "CMakeFiles/epvf_apps.dir/mm.cc.o.d"
  "CMakeFiles/epvf_apps.dir/nw.cc.o"
  "CMakeFiles/epvf_apps.dir/nw.cc.o.d"
  "CMakeFiles/epvf_apps.dir/particlefilter.cc.o"
  "CMakeFiles/epvf_apps.dir/particlefilter.cc.o.d"
  "CMakeFiles/epvf_apps.dir/pathfinder.cc.o"
  "CMakeFiles/epvf_apps.dir/pathfinder.cc.o.d"
  "CMakeFiles/epvf_apps.dir/srad.cc.o"
  "CMakeFiles/epvf_apps.dir/srad.cc.o.d"
  "libepvf_apps.a"
  "libepvf_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epvf_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
