# Empty compiler generated dependencies file for epvf_apps.
# This may be replaced when dependencies are built.
