
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app.cc" "src/apps/CMakeFiles/epvf_apps.dir/app.cc.o" "gcc" "src/apps/CMakeFiles/epvf_apps.dir/app.cc.o.d"
  "/root/repo/src/apps/bfs.cc" "src/apps/CMakeFiles/epvf_apps.dir/bfs.cc.o" "gcc" "src/apps/CMakeFiles/epvf_apps.dir/bfs.cc.o.d"
  "/root/repo/src/apps/hotspot.cc" "src/apps/CMakeFiles/epvf_apps.dir/hotspot.cc.o" "gcc" "src/apps/CMakeFiles/epvf_apps.dir/hotspot.cc.o.d"
  "/root/repo/src/apps/kmeans.cc" "src/apps/CMakeFiles/epvf_apps.dir/kmeans.cc.o" "gcc" "src/apps/CMakeFiles/epvf_apps.dir/kmeans.cc.o.d"
  "/root/repo/src/apps/lavamd.cc" "src/apps/CMakeFiles/epvf_apps.dir/lavamd.cc.o" "gcc" "src/apps/CMakeFiles/epvf_apps.dir/lavamd.cc.o.d"
  "/root/repo/src/apps/lud.cc" "src/apps/CMakeFiles/epvf_apps.dir/lud.cc.o" "gcc" "src/apps/CMakeFiles/epvf_apps.dir/lud.cc.o.d"
  "/root/repo/src/apps/lulesh.cc" "src/apps/CMakeFiles/epvf_apps.dir/lulesh.cc.o" "gcc" "src/apps/CMakeFiles/epvf_apps.dir/lulesh.cc.o.d"
  "/root/repo/src/apps/mm.cc" "src/apps/CMakeFiles/epvf_apps.dir/mm.cc.o" "gcc" "src/apps/CMakeFiles/epvf_apps.dir/mm.cc.o.d"
  "/root/repo/src/apps/nw.cc" "src/apps/CMakeFiles/epvf_apps.dir/nw.cc.o" "gcc" "src/apps/CMakeFiles/epvf_apps.dir/nw.cc.o.d"
  "/root/repo/src/apps/particlefilter.cc" "src/apps/CMakeFiles/epvf_apps.dir/particlefilter.cc.o" "gcc" "src/apps/CMakeFiles/epvf_apps.dir/particlefilter.cc.o.d"
  "/root/repo/src/apps/pathfinder.cc" "src/apps/CMakeFiles/epvf_apps.dir/pathfinder.cc.o" "gcc" "src/apps/CMakeFiles/epvf_apps.dir/pathfinder.cc.o.d"
  "/root/repo/src/apps/srad.cc" "src/apps/CMakeFiles/epvf_apps.dir/srad.cc.o" "gcc" "src/apps/CMakeFiles/epvf_apps.dir/srad.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/epvf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/epvf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
