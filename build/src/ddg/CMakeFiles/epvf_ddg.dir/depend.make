# Empty dependencies file for epvf_ddg.
# This may be replaced when dependencies are built.
