
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ddg/ace.cc" "src/ddg/CMakeFiles/epvf_ddg.dir/ace.cc.o" "gcc" "src/ddg/CMakeFiles/epvf_ddg.dir/ace.cc.o.d"
  "/root/repo/src/ddg/builder.cc" "src/ddg/CMakeFiles/epvf_ddg.dir/builder.cc.o" "gcc" "src/ddg/CMakeFiles/epvf_ddg.dir/builder.cc.o.d"
  "/root/repo/src/ddg/graph.cc" "src/ddg/CMakeFiles/epvf_ddg.dir/graph.cc.o" "gcc" "src/ddg/CMakeFiles/epvf_ddg.dir/graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/epvf_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/epvf_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/epvf_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/epvf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
