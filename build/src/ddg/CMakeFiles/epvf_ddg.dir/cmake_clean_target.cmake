file(REMOVE_RECURSE
  "libepvf_ddg.a"
)
