file(REMOVE_RECURSE
  "CMakeFiles/epvf_ddg.dir/ace.cc.o"
  "CMakeFiles/epvf_ddg.dir/ace.cc.o.d"
  "CMakeFiles/epvf_ddg.dir/builder.cc.o"
  "CMakeFiles/epvf_ddg.dir/builder.cc.o.d"
  "CMakeFiles/epvf_ddg.dir/graph.cc.o"
  "CMakeFiles/epvf_ddg.dir/graph.cc.o.d"
  "libepvf_ddg.a"
  "libepvf_ddg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epvf_ddg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
