file(REMOVE_RECURSE
  "libepvf_core.a"
)
