# Empty dependencies file for epvf_core.
# This may be replaced when dependencies are built.
