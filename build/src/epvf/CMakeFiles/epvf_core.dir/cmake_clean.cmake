file(REMOVE_RECURSE
  "CMakeFiles/epvf_core.dir/analysis.cc.o"
  "CMakeFiles/epvf_core.dir/analysis.cc.o.d"
  "CMakeFiles/epvf_core.dir/report.cc.o"
  "CMakeFiles/epvf_core.dir/report.cc.o.d"
  "CMakeFiles/epvf_core.dir/sampling.cc.o"
  "CMakeFiles/epvf_core.dir/sampling.cc.o.d"
  "libepvf_core.a"
  "libepvf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epvf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
