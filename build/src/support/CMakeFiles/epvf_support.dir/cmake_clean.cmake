file(REMOVE_RECURSE
  "CMakeFiles/epvf_support.dir/interval.cc.o"
  "CMakeFiles/epvf_support.dir/interval.cc.o.d"
  "CMakeFiles/epvf_support.dir/logging.cc.o"
  "CMakeFiles/epvf_support.dir/logging.cc.o.d"
  "CMakeFiles/epvf_support.dir/statistics.cc.o"
  "CMakeFiles/epvf_support.dir/statistics.cc.o.d"
  "CMakeFiles/epvf_support.dir/table.cc.o"
  "CMakeFiles/epvf_support.dir/table.cc.o.d"
  "libepvf_support.a"
  "libepvf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epvf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
