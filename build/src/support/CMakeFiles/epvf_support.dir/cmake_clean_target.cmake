file(REMOVE_RECURSE
  "libepvf_support.a"
)
