# Empty dependencies file for epvf_support.
# This may be replaced when dependencies are built.
