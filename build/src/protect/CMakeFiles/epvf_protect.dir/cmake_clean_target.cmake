file(REMOVE_RECURSE
  "libepvf_protect.a"
)
