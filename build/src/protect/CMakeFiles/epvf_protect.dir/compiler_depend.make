# Empty compiler generated dependencies file for epvf_protect.
# This may be replaced when dependencies are built.
