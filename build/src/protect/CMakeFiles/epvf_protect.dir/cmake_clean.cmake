file(REMOVE_RECURSE
  "CMakeFiles/epvf_protect.dir/duplication.cc.o"
  "CMakeFiles/epvf_protect.dir/duplication.cc.o.d"
  "CMakeFiles/epvf_protect.dir/evaluation.cc.o"
  "CMakeFiles/epvf_protect.dir/evaluation.cc.o.d"
  "CMakeFiles/epvf_protect.dir/ranking.cc.o"
  "CMakeFiles/epvf_protect.dir/ranking.cc.o.d"
  "CMakeFiles/epvf_protect.dir/transform.cc.o"
  "CMakeFiles/epvf_protect.dir/transform.cc.o.d"
  "libepvf_protect.a"
  "libepvf_protect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epvf_protect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
