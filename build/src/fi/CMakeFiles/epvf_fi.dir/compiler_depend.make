# Empty compiler generated dependencies file for epvf_fi.
# This may be replaced when dependencies are built.
