file(REMOVE_RECURSE
  "CMakeFiles/epvf_fi.dir/campaign.cc.o"
  "CMakeFiles/epvf_fi.dir/campaign.cc.o.d"
  "CMakeFiles/epvf_fi.dir/injector.cc.o"
  "CMakeFiles/epvf_fi.dir/injector.cc.o.d"
  "CMakeFiles/epvf_fi.dir/outcome.cc.o"
  "CMakeFiles/epvf_fi.dir/outcome.cc.o.d"
  "CMakeFiles/epvf_fi.dir/targeted.cc.o"
  "CMakeFiles/epvf_fi.dir/targeted.cc.o.d"
  "libepvf_fi.a"
  "libepvf_fi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epvf_fi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
