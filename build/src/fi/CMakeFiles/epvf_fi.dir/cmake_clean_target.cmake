file(REMOVE_RECURSE
  "libepvf_fi.a"
)
